//! The enclave container: trust boundary, measurement, ECall dispatch.

use std::time::Duration;

use dcert_primitives::hash::{hash_concat, Hash};
use dcert_primitives::keys::{Keypair, PublicKey};
use parking_lot::Mutex;
// dcert-lint: allow(r3-determinism, reason = "platform-key provisioning entropy; every replayable path launches via launch_with_platform_seed instead")
use rand::rngs::OsRng;
use rand::RngCore;

use crate::attestation::Quote;
use crate::cost::{spin, timed, CostModel};
use crate::error::SgxError;
use crate::sealing::{self, SealedBlob};

/// Domain tag for enclave measurements.
const MEASUREMENT_DOMAIN: u8 = 0x30;

/// A program loadable into an [`Enclave`].
///
/// The interface is deliberately byte-level: real ECalls marshal opaque
/// buffers across the boundary, and the cost model charges by byte, so
/// trusted programs must serialize their arguments (DCert's certificate
/// program uses the workspace codec).
///
/// Implementations hold the enclave's secrets (e.g. `sk_enc`); because the
/// only access path is [`Enclave::ecall`], those secrets never leave the
/// boundary.
pub trait TrustedApp: Send {
    /// The bytes measured as this program's code identity (in real SGX:
    /// the enclave image; here: a stable code/version string).
    fn code_identity(&self) -> &[u8];

    /// Handles one ECall. Input and output cross the enclave boundary and
    /// are charged by the cost model.
    fn call(&mut self, input: &[u8]) -> Vec<u8>;
}

/// A trusted program whose secret state can be sealed to disk and
/// restored on the same platform (the SGX sealing workflow; see
/// [`crate::sealing`]). Export/import never cross the enclave boundary in
/// the clear — [`Enclave::seal_state`] encrypts inside the boundary.
pub trait Sealable {
    /// Serializes the secret state to seal.
    fn export_state(&self) -> Vec<u8>;

    /// Restores previously exported state.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::BadSeal`] if the bytes are malformed.
    fn import_state(&mut self, state: &[u8]) -> Result<(), SgxError>;
}

/// Counters describing everything the enclave boundary has done —
/// the data behind the inside/outside breakdowns of Figures 8–10.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnclaveStats {
    /// Number of ECalls dispatched.
    pub ecalls: u64,
    /// Total bytes marshalled into the enclave.
    pub bytes_in: u64,
    /// Total bytes marshalled out of the enclave.
    pub bytes_out: u64,
    /// Simulated transition/marshalling overhead.
    pub overhead: Duration,
    /// Wall-clock time spent running trusted code.
    pub trusted_time: Duration,
}

/// Everything behind the trust boundary: the trusted program plus the
/// boundary counters its ECalls update. One lock guards both so a
/// concurrent caller can never observe a call without its accounting.
struct Boundary<A> {
    app: A,
    stats: EnclaveStats,
}

/// A simulated SGX enclave hosting a [`TrustedApp`].
///
/// On launch the "CPU" measures the program
/// (`measurement = H(code_identity)`) and provisions a per-platform
/// attestation key; [`Enclave::quote`] signs
/// (measurement ‖ report-data) with it, to be validated by the
/// [`AttestationService`](crate::AttestationService).
///
/// The handle is shareable: [`Enclave::ecall`] takes `&self` and
/// serializes callers through an internal lock, mirroring a real
/// single-TCS enclave where hardware admits one logical ECall at a time.
/// Wrap the enclave in an `Arc` to drive it from several threads (the
/// certification pipeline does exactly this).
pub struct Enclave<A: TrustedApp> {
    boundary: Mutex<Boundary<A>>,
    measurement: Hash,
    platform: Keypair,
    /// Raw platform secret (the simulated fuse key) for sealing-key
    /// derivation; never exposed.
    platform_secret: [u8; 32],
    cost: CostModel,
}

impl<A: TrustedApp> std::fmt::Debug for Enclave<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Enclave")
            .field("measurement", &self.measurement)
            .field("platform", &self.platform.public())
            .field("stats", &self.boundary.lock().stats)
            .finish()
    }
}

impl<A: TrustedApp> Enclave<A> {
    /// Loads `app` into a fresh enclave with a random platform key.
    pub fn launch(app: A, cost: CostModel) -> Self {
        let mut seed = [0u8; 32];
        // dcert-lint: allow(r3-determinism, reason = "platform-key provisioning entropy; every replayable path launches via launch_with_platform_seed instead")
        OsRng.fill_bytes(&mut seed);
        Self::launch_with_platform_seed(app, cost, seed)
    }

    /// Loads `app` with a deterministic platform key (tests, reproducible
    /// benches).
    pub fn launch_with_platform_seed(app: A, cost: CostModel, seed: [u8; 32]) -> Self {
        let measurement = measure(app.code_identity());
        Enclave {
            boundary: Mutex::new(Boundary {
                app,
                stats: EnclaveStats::default(),
            }),
            measurement,
            platform: Keypair::from_seed(seed),
            platform_secret: seed,
            cost,
        }
    }

    /// The enclave's measurement (`MRENCLAVE` analogue).
    pub fn measurement(&self) -> Hash {
        self.measurement
    }

    /// The platform attestation public key (registered with the IAS during
    /// provisioning).
    pub fn platform_key(&self) -> PublicKey {
        self.platform.public()
    }

    /// Boundary counters so far.
    pub fn stats(&self) -> EnclaveStats {
        self.boundary.lock().stats
    }

    /// Resets the boundary counters (between benchmark phases).
    pub fn reset_stats(&self) {
        self.boundary.lock().stats = EnclaveStats::default();
    }

    /// The active cost model.
    pub fn cost_model(&self) -> CostModel {
        self.cost
    }

    /// Dispatches one ECall: charges the inbound crossing, runs the trusted
    /// program, charges the outbound crossing, and returns the output.
    ///
    /// Concurrent callers serialize on the boundary lock — the simulated
    /// crossing/slowdown costs are paid inside it, so throughput under
    /// contention degrades exactly like a single-TCS enclave.
    pub fn ecall(&self, input: &[u8]) -> Vec<u8> {
        let mut boundary = self.boundary.lock();
        let in_cost = self.cost.crossing_cost(input.len());
        spin(in_cost);
        let (output, trusted) = timed(|| boundary.app.call(input));
        // In-EPC execution slowdown (MEE on every cache-line fill).
        let slowdown = self.cost.slowdown_cost(trusted);
        spin(slowdown);
        let out_cost = self.cost.crossing_cost(output.len());
        spin(out_cost);

        boundary.stats.ecalls += 1;
        boundary.stats.bytes_in += input.len() as u64;
        boundary.stats.bytes_out += output.len() as u64;
        boundary.stats.overhead += in_cost + slowdown + out_cost;
        boundary.stats.trusted_time += trusted;
        output
    }

    /// Produces a quote binding `report_data` (e.g. `H(pk_enc)`) to this
    /// enclave's measurement, signed by the platform key.
    pub fn quote(&self, report_data: Hash) -> Quote {
        Quote::sign(&self.platform, self.measurement, report_data)
    }
}

impl<A: TrustedApp + Sealable> Enclave<A> {
    /// Seals the trusted program's secret state to this platform and
    /// measurement. The plaintext never leaves the boundary; the returned
    /// blob can be persisted by untrusted code.
    pub fn seal_state(&self) -> SealedBlob {
        sealing::seal(
            &self.platform_secret,
            &self.measurement,
            &self.boundary.lock().app.export_state(),
        )
    }

    /// Relaunches an enclave on the same platform (`platform_seed` must
    /// match the sealing enclave's) and restores the sealed state into a
    /// fresh `app`.
    ///
    /// # Errors
    ///
    /// [`SgxError::BadSeal`] if the blob was sealed by a different
    /// platform or measurement, or was tampered with.
    pub fn restore(
        mut app: A,
        cost: CostModel,
        platform_seed: [u8; 32],
        blob: &SealedBlob,
    ) -> Result<Self, SgxError> {
        let measurement = measure(app.code_identity());
        let state = sealing::unseal(&platform_seed, &measurement, blob)?;
        app.import_state(&state)?;
        Ok(Self::launch_with_platform_seed(app, cost, platform_seed))
    }
}

/// The measurement function: `H(domain || code_identity)`.
pub fn measure(code_identity: &[u8]) -> Hash {
    hash_concat([std::slice::from_ref(&MEASUREMENT_DOMAIN), code_identity])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Instant;

    struct Secret {
        key: u8,
        calls: u32,
    }

    impl TrustedApp for Secret {
        fn code_identity(&self) -> &[u8] {
            b"secret-app-v1"
        }
        fn call(&mut self, input: &[u8]) -> Vec<u8> {
            self.calls += 1;
            // "Sign" by xoring with the secret — stands in for sk_enc use.
            input.iter().map(|b| b ^ self.key).collect()
        }
    }

    #[test]
    fn measurement_depends_on_code_only() {
        let a = Enclave::launch(Secret { key: 1, calls: 0 }, CostModel::zero());
        let b = Enclave::launch(Secret { key: 9, calls: 0 }, CostModel::zero());
        // Same code identity → same measurement, regardless of data.
        assert_eq!(a.measurement(), b.measurement());
        assert_eq!(a.measurement(), measure(b"secret-app-v1"));
    }

    #[test]
    fn ecall_round_trip_and_stats() {
        let enclave = Enclave::launch(
            Secret {
                key: 0xff,
                calls: 0,
            },
            CostModel::zero(),
        );
        let out = enclave.ecall(&[0x0f, 0xf0]);
        assert_eq!(out, vec![0xf0, 0x0f]);
        let stats = enclave.stats();
        assert_eq!(stats.ecalls, 1);
        assert_eq!(stats.bytes_in, 2);
        assert_eq!(stats.bytes_out, 2);
    }

    #[test]
    fn cost_model_charges_overhead() {
        let cost = CostModel {
            transition_ns: 200_000, // 0.2 ms, clearly measurable
            per_byte_ns: 0,
            epc_budget_bytes: usize::MAX,
            paging_per_byte_ns: 0,
            in_enclave_slowdown_pct: 0,
        };
        let enclave = Enclave::launch(Secret { key: 0, calls: 0 }, cost);
        let started = Instant::now();
        enclave.ecall(b"x");
        let elapsed = started.elapsed();
        // Two crossings at 0.2 ms each.
        assert!(
            elapsed >= Duration::from_micros(400),
            "elapsed = {elapsed:?}"
        );
        assert!(enclave.stats().overhead >= Duration::from_micros(400));
    }

    #[test]
    fn distinct_enclaves_have_distinct_platform_keys() {
        let a = Enclave::launch_with_platform_seed(
            Secret { key: 0, calls: 0 },
            CostModel::zero(),
            [1; 32],
        );
        let b = Enclave::launch_with_platform_seed(
            Secret { key: 0, calls: 0 },
            CostModel::zero(),
            [2; 32],
        );
        assert_ne!(a.platform_key(), b.platform_key());
    }

    #[test]
    fn reset_stats_zeroes_counters() {
        let enclave = Enclave::launch(Secret { key: 1, calls: 0 }, CostModel::zero());
        enclave.ecall(b"abc");
        enclave.reset_stats();
        assert_eq!(enclave.stats(), EnclaveStats::default());
    }

    #[test]
    fn concurrent_ecalls_serialize_and_account_exactly() {
        const THREADS: u64 = 8;
        const CALLS_PER_THREAD: u64 = 32;
        let enclave = Arc::new(Enclave::launch(
            Secret {
                key: 0x55,
                calls: 0,
            },
            CostModel::zero(),
        ));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let enclave = Arc::clone(&enclave);
                thread::spawn(move || {
                    for _ in 0..CALLS_PER_THREAD {
                        let out = enclave.ecall(&[0x00, 0xff]);
                        // Each call sees a consistent trusted program.
                        assert_eq!(out, vec![0x55, 0xaa]);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let stats = enclave.stats();
        // No lost updates: every crossing is counted under the lock.
        assert_eq!(stats.ecalls, THREADS * CALLS_PER_THREAD);
        assert_eq!(stats.bytes_in, THREADS * CALLS_PER_THREAD * 2);
        assert_eq!(stats.bytes_out, THREADS * CALLS_PER_THREAD * 2);
    }
}
