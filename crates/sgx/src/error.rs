//! SGX simulation error types.

use std::fmt;

/// An error in the attestation flow or the enclave lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SgxError {
    /// The quote's platform key is not registered with the attestation
    /// service (an unprovisioned or spoofed "CPU").
    UntrustedPlatform,
    /// The quote's platform signature failed to verify.
    BadQuote,
    /// The attestation report's IAS signature failed to verify.
    BadReport,
    /// A sealed blob failed to unseal: wrong platform, wrong enclave
    /// measurement, or tampered ciphertext.
    BadSeal,
    /// A single ECall tried to marshal more data than the EPC budget; the
    /// paper's stateless design exists precisely to avoid this.
    EpcExceeded {
        /// Bytes the call needed resident.
        needed: usize,
        /// The configured EPC budget.
        budget: usize,
    },
}

impl fmt::Display for SgxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SgxError::UntrustedPlatform => write!(f, "platform key not registered with the IAS"),
            SgxError::BadQuote => write!(f, "quote signature invalid"),
            SgxError::BadReport => write!(f, "attestation report signature invalid"),
            SgxError::BadSeal => write!(f, "sealed blob cannot be recovered here"),
            SgxError::EpcExceeded { needed, budget } => {
                write!(
                    f,
                    "EPC budget exceeded: needed {needed} bytes, budget {budget}"
                )
            }
        }
    }
}

impl std::error::Error for SgxError {}
