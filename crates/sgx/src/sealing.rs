//! Sealed storage: persisting enclave secrets across restarts.
//!
//! Real SGX enclaves derive a *sealing key* via `EGETKEY`, bound to the
//! CPU's fuse key and the enclave measurement, so state encrypted with it
//! can only be recovered by the same enclave code on the same machine.
//! DCert relies on this operationally: a Certificate Issuer restart must
//! not discard `sk_enc` (clients have cached its attestation, and the
//! recursive certificate chain references it).
//!
//! The simulation derives the sealing key as
//! `H(platform_secret ‖ measurement)` and applies an authenticated
//! stream cipher built from SHA-256 (keystream blocks
//! `H(key ‖ nonce ‖ counter)`, MAC `H(key ‖ nonce ‖ ciphertext)`). This is
//! **simulation-grade** crypto — the point is the key-derivation *policy*
//! (same code + same platform), not resistance against real adversaries;
//! a production port would use the SGX SDK's sealing API.

use dcert_primitives::codec::{Decode, Encode, Reader};
use dcert_primitives::error::CodecError;
use dcert_primitives::hash::{hash_concat, Hash};

use crate::error::SgxError;

/// A sealed blob: recoverable only by the same measurement on the same
/// platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedBlob {
    /// The measurement the blob is bound to.
    pub measurement: Hash,
    /// Random-looking nonce (derived from content in this simulation).
    pub nonce: Hash,
    /// The encrypted state.
    pub ciphertext: Vec<u8>,
    /// Authentication tag.
    pub mac: Hash,
}

impl SealedBlob {
    /// Serialized size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.encoded_len()
    }
}

impl Encode for SealedBlob {
    fn encode(&self, out: &mut Vec<u8>) {
        self.measurement.encode(out);
        self.nonce.encode(out);
        self.ciphertext.encode(out);
        self.mac.encode(out);
    }
}

impl Decode for SealedBlob {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(SealedBlob {
            measurement: Hash::decode(r)?,
            nonce: Hash::decode(r)?,
            ciphertext: Vec::<u8>::decode(r)?,
            mac: Hash::decode(r)?,
        })
    }
}

/// Derives the sealing key for (platform, measurement).
fn sealing_key(platform_secret: &[u8; 32], measurement: &Hash) -> Hash {
    hash_concat([b"seal:".as_slice(), platform_secret, measurement.as_bytes()])
}

fn keystream_block(key: &Hash, nonce: &Hash, counter: u64) -> Hash {
    hash_concat([
        b"ks:".as_slice(),
        key.as_bytes(),
        nonce.as_bytes(),
        &counter.to_be_bytes(),
    ])
}

fn mac(key: &Hash, nonce: &Hash, ciphertext: &[u8]) -> Hash {
    hash_concat([
        b"mac:".as_slice(),
        key.as_bytes(),
        nonce.as_bytes(),
        ciphertext,
    ])
}

fn xor_stream(key: &Hash, nonce: &Hash, data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len());
    for (block_idx, chunk) in data.chunks(32).enumerate() {
        let ks = keystream_block(key, nonce, block_idx as u64);
        out.extend(chunk.iter().zip(ks.as_bytes()).map(|(d, k)| d ^ k));
    }
    out
}

/// Seals `plaintext` to (platform, measurement).
pub fn seal(platform_secret: &[u8; 32], measurement: &Hash, plaintext: &[u8]) -> SealedBlob {
    let key = sealing_key(platform_secret, measurement);
    // Deterministic nonce from content (fine for the simulation: a given
    // enclave state seals to a stable blob).
    let nonce = hash_concat([b"nonce:".as_slice(), key.as_bytes(), plaintext]);
    let ciphertext = xor_stream(&key, &nonce, plaintext);
    let tag = mac(&key, &nonce, &ciphertext);
    SealedBlob {
        measurement: *measurement,
        nonce,
        ciphertext,
        mac: tag,
    }
}

/// Unseals a blob; succeeds only with the sealing platform's secret and
/// the sealed measurement.
///
/// # Errors
///
/// Returns [`SgxError::BadSeal`] if the measurement does not match or the
/// MAC fails (wrong platform, tampering).
pub fn unseal(
    platform_secret: &[u8; 32],
    measurement: &Hash,
    blob: &SealedBlob,
) -> Result<Vec<u8>, SgxError> {
    if blob.measurement != *measurement {
        return Err(SgxError::BadSeal);
    }
    let key = sealing_key(platform_secret, measurement);
    if mac(&key, &blob.nonce, &blob.ciphertext) != blob.mac {
        return Err(SgxError::BadSeal);
    }
    Ok(xor_stream(&key, &blob.nonce, &blob.ciphertext))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcert_primitives::hash::hash_bytes;

    #[test]
    fn seal_unseal_round_trip() {
        let platform = [7u8; 32];
        let measurement = hash_bytes(b"program");
        let blob = seal(&platform, &measurement, b"secret key material");
        assert_eq!(
            unseal(&platform, &measurement, &blob).unwrap(),
            b"secret key material"
        );
    }

    #[test]
    fn other_platform_cannot_unseal() {
        let measurement = hash_bytes(b"program");
        let blob = seal(&[7u8; 32], &measurement, b"secret");
        assert_eq!(
            unseal(&[8u8; 32], &measurement, &blob),
            Err(SgxError::BadSeal)
        );
    }

    #[test]
    fn other_program_cannot_unseal() {
        let platform = [7u8; 32];
        let blob = seal(&platform, &hash_bytes(b"program-a"), b"secret");
        assert_eq!(
            unseal(&platform, &hash_bytes(b"program-b"), &blob),
            Err(SgxError::BadSeal)
        );
    }

    #[test]
    fn tampered_ciphertext_detected() {
        let platform = [7u8; 32];
        let measurement = hash_bytes(b"program");
        let mut blob = seal(&platform, &measurement, b"secret");
        blob.ciphertext[0] ^= 0xff;
        assert_eq!(
            unseal(&platform, &measurement, &blob),
            Err(SgxError::BadSeal)
        );
    }

    #[test]
    fn ciphertext_hides_plaintext() {
        let platform = [7u8; 32];
        let measurement = hash_bytes(b"program");
        let blob = seal(&platform, &measurement, b"secret key material!!");
        assert_ne!(blob.ciphertext.as_slice(), b"secret key material!!");
    }

    #[test]
    fn blob_codec_round_trip() {
        let blob = seal(&[1u8; 32], &hash_bytes(b"p"), b"state");
        let decoded = SealedBlob::decode_all(&blob.to_encoded_bytes()).unwrap();
        assert_eq!(decoded, blob);
    }

    #[test]
    fn long_plaintexts_round_trip() {
        let platform = [9u8; 32];
        let measurement = hash_bytes(b"program");
        let data: Vec<u8> = (0..10_000).map(|i| (i % 251) as u8).collect();
        let blob = seal(&platform, &measurement, &data);
        assert_eq!(unseal(&platform, &measurement, &blob).unwrap(), data);
    }
}
