//! The pipelined certification engine.
//!
//! The paper's Fig. 2 runtime loop — sync → enclave-certify → broadcast —
//! is inherently staged, and only one stage actually needs the enclave.
//! [`CertPipeline`] exploits that: it splits the sequential
//! [`CertificateIssuer`] into four concurrent stages connected by bounded
//! crossbeam channels (bounded = backpressure; a slow enclave throttles
//! submission instead of buffering unboundedly):
//!
//! 1. **Sequencer** (one thread): owns the chain view. Validates each
//!    job's linkage against the tip, executes its transactions *once*,
//!    snapshots the pre-state for proof generation, and advances. This is
//!    the stage that fixes chain order — everything downstream is
//!    order-preserving.
//! 2. **Preparers** (a pool of untrusted workers): the expensive
//!    outside-enclave work of Algorithm 1 — Merkle update proofs over the
//!    pre-state snapshot and request serialization — runs here, in
//!    parallel across in-flight blocks.
//! 3. **Issuer** (one thread): re-orders prepared requests back into
//!    chain order and drains them through the shared enclave. ECalls stay
//!    serialized, exactly as a real single-enclave signer requires, and
//!    the recursive `prev_cert` — which only exists once the previous
//!    certificate has been issued — is spliced into the pre-encoded
//!    request here.
//! 4. **Publisher** (one thread): broadcasts certificates on the
//!    [`Transport`] (a [`Gossip`](crate::network::Gossip) bus, or a
//!    fault-injecting [`SimNet`](crate::netsim::SimNet)) in issuance
//!    order, confirms delivery against the configured
//!    [`PublishPolicy`] — retrying with exponential backoff and
//!    dead-lettering what never confirms — and accumulates the
//!    [`PipelineReport`].
//!
//! Compared to the sequential path, each block is executed once (the
//! issuer adopts the sequencer-validated state the way
//! [`CertificateIssuer::certify_batch`] does, instead of re-executing in
//! `apply`), proofs for block *i+1* are built while block *i* is inside
//! the enclave, and the certificates that come out are **byte-identical**
//! to sequential issuance — `tests/pipeline_equivalence.rs` proves this
//! property over arbitrary mixed workloads.
//!
//! Shutdown is orderly: dropping the submission side (or the whole
//! pipeline) closes the channel cascade, every stage drains its in-flight
//! work, and [`CertPipeline::shutdown`] hands back the reassembled
//! [`CertificateIssuer`] positioned at the last successfully certified
//! block.

// SP-side orchestration: thread spawns, channel sends, and lock acquisitions
// here operate on SP-owned state, never on attacker-supplied bytes. A poisoned
// lock or failed spawn is a deployment fault, not a protocol input.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, Sender};

use dcert_chain::{Block, BlockHeader, ChainError, ChainState, FullNode};
use dcert_obs::{Buckets, Counter, Gauge, Histogram, Registry};
use dcert_primitives::codec::{encode_seq, Encode};
use dcert_primitives::hash::Hash;
use dcert_sgx::{AttestationReport, Enclave};
use dcert_vm::{Call, Executor, StateKey};

use crate::cert::Certificate;
use crate::ci::{issue_encoded, CertBreakdown, CertificateIssuer, CiParts};
use crate::error::CertError;
use crate::messages::{BatchLink, IndexInput, ReadSet, WriteSet};
use crate::netsim::SimRng;
use crate::network::{NetMessage, Transport};
use crate::program::CertProgram;

/// One unit of certification work, in submission order.
#[derive(Debug, Clone)]
pub enum CertJob {
    /// Algorithm 1: a plain block certificate.
    Block(Block),
    /// Algorithm 4: one augmented certificate per index (no standalone
    /// block certificate; `prev_block_cert` is left untouched, exactly as
    /// in the sequential scheme).
    Augmented {
        /// The block to certify.
        block: Block,
        /// Staged index updates (their `prev_cert` fields are filled by
        /// the issuer stage — see [`CertPipeline`] docs).
        indexes: Vec<IndexInput>,
    },
    /// Algorithm 5: a block certificate plus one light per-index
    /// certificate each.
    Hierarchical {
        /// The block to certify.
        block: Block,
        /// Staged index updates.
        indexes: Vec<IndexInput>,
    },
    /// Batch coalescing: consecutive blocks certified with **one** ECall,
    /// producing a single certificate for the last block
    /// (the [`CertificateIssuer::certify_batch`] amortization, preserved
    /// under the pipeline).
    Batch(Vec<Block>),
}

/// Tuning knobs for [`CertPipeline::spawn`].
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Number of preparer workers (proof generation + serialization).
    pub preparers: usize,
    /// Capacity of each inter-stage channel; bounds in-flight jobs and
    /// therefore memory (each in-flight job pins a state snapshot).
    pub queue_depth: usize,
    /// Delivery-confirmation policy for the publisher stage.
    pub publish: PublishPolicy,
    /// Intra-block parallelism knobs (see [`ParallelismConfig`]). All
    /// settings are byte-transparent: `tests/pipeline_equivalence.rs`
    /// pins that certificates are unchanged at every thread count.
    pub parallelism: ParallelismConfig,
    /// Metrics registry the stages record into (`pipeline.*`). Defaults
    /// to a disabled registry — recording is then a no-op and nothing is
    /// exported; `tests/pipeline_equivalence.rs` pins that instrumenting
    /// changes no certificate bytes either way.
    pub obs: Registry,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            preparers: 4,
            queue_depth: 8,
            publish: PublishPolicy::default(),
            parallelism: ParallelismConfig::default(),
            obs: Registry::disabled(),
        }
    }
}

/// Intra-block parallelism knobs, applied at [`CertPipeline::spawn`].
///
/// These tune *how fast* a single block's commitments are computed, never
/// *what* they are — every output byte is identical at every setting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParallelismConfig {
    /// Worker threads for Merkle-tree construction (tx roots, posting
    /// lists). Applied via [`dcert_merkle::set_build_threads`], which is
    /// process-global because tree builds also happen inside the enclave
    /// program, beyond any per-pipeline configuration path. `0` (the
    /// default) leaves the process-global setting untouched; values are
    /// otherwise clamped to `1..=64`.
    pub merkle_threads: usize,
}

/// How hard the publisher stage works to confirm a broadcast.
///
/// [`Transport::publish`] acks with the number of deliveries it
/// scheduled; a result below `min_acks` counts as a failed attempt and is
/// retried with truncated-exponential backoff: `backoff` doubled per
/// attempt, capped at `max_backoff`, then scaled by a deterministic
/// jitter factor in `[0.5, 1.0)` drawn from a [`SimRng`] stream seeded
/// with `jitter_seed`. The jitter is what keeps a fleet of CIs that share
/// a blackout from retrying in lockstep, and seeding it is what keeps a
/// chaos run replayable — the whole retry schedule is a pure function of
/// the policy. A message still unconfirmed after `max_retries` retries
/// goes to [`PipelineReport::dead_letters`] instead of wedging the
/// pipeline.
#[derive(Debug, Clone)]
pub struct PublishPolicy {
    /// Minimum deliveries for a publish to count as confirmed. The
    /// default `0` accepts any outcome — fire-and-forget, the behavior
    /// benches and single-process runs want (their bus may legitimately
    /// have no subscribers).
    pub min_acks: usize,
    /// Retries after the initial attempt before dead-lettering.
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub backoff: Duration,
    /// Ceiling on the doubled backoff (pre-jitter). Without one, a
    /// generous retry budget turns a persistent outage into multi-minute
    /// sleeps that outlive the outage itself.
    pub max_backoff: Duration,
    /// Seed of the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for PublishPolicy {
    fn default() -> Self {
        PublishPolicy {
            min_acks: 0,
            max_retries: 5,
            backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(64),
            jitter_seed: 0,
        }
    }
}

impl PublishPolicy {
    /// Requires at least `min_acks` confirmed deliveries per broadcast.
    pub fn require_acks(min_acks: usize) -> Self {
        PublishPolicy {
            min_acks,
            ..PublishPolicy::default()
        }
    }

    /// The delay before retry number `retry` (1-based): truncated
    /// exponential with deterministic full-range jitter. Pure given the
    /// policy and the RNG position, so tests can replay — and benches
    /// export — the exact schedule.
    pub(crate) fn backoff_for(&self, retry: u32, jitter: &mut SimRng) -> Duration {
        let doubled = self
            .backoff
            .saturating_mul(1u32 << retry.saturating_sub(1).min(16));
        let capped = doubled.min(self.max_backoff.max(self.backoff));
        capped.mul_f64(0.5 + jitter.next_f64() / 2.0)
    }
}

/// A certificate broadcast the publisher could not confirm within its
/// retry budget — reported, not lost: the operator (or a test harness)
/// can republish it once the network heals.
#[derive(Debug, Clone)]
pub struct DeadLetter {
    /// Sequence number of the job that produced the message.
    pub seq: u64,
    /// Publish attempts made (initial try + retries).
    pub attempts: u32,
    /// The unconfirmed message itself.
    pub message: NetMessage,
}

/// What the pipeline did, returned by [`CertPipeline::shutdown`].
#[derive(Debug, Default)]
pub struct PipelineReport {
    /// Jobs processed (success or failure).
    pub jobs: u64,
    /// Block certificates broadcast.
    pub block_certs: u64,
    /// Index certificates broadcast.
    pub index_certs: u64,
    /// Per-job construction breakdowns, in chain order (successes only).
    pub breakdowns: Vec<CertBreakdown>,
    /// Failed jobs as `(sequence number, error)`, in chain order.
    pub errors: Vec<(u64, CertError)>,
    /// Broadcasts that never reached [`PublishPolicy::min_acks`]
    /// deliveries, in issuance order.
    pub dead_letters: Vec<DeadLetter>,
}

impl PipelineReport {
    /// Sum of all successful jobs' construction times.
    pub fn total_construction(&self) -> Duration {
        self.breakdowns.iter().map(CertBreakdown::total).sum()
    }
}

/// Metric handles for the pipeline cost center (`pipeline.*`), registered
/// once at [`CertPipeline::spawn`] and cloned into each stage thread.
/// Recording through them is lock-free; against a disabled registry it is
/// a no-op.
#[derive(Clone)]
struct PipelineObs {
    /// Per-stage wall-clock latency (suffix `_ns`: stripped from replay
    /// comparisons).
    sequence_ns: Histogram,
    prepare_ns: Histogram,
    issue_ns: Histogram,
    publish_ns: Histogram,
    /// Blocks per sequenced job (1 except for `CertJob::Batch`).
    batch_blocks: Histogram,
    /// Peak occupancy of the submit queue and the issuer's reorder buffer
    /// (suffix `_depth`: scheduling-dependent, stripped from replay
    /// comparisons).
    submit_depth: Gauge,
    reorder_depth: Gauge,
    jobs: Counter,
    block_certs: Counter,
    index_certs: Counter,
    errors: Counter,
    publish_attempts: Counter,
    publish_retries: Counter,
    dead_letters: Counter,
    /// Computed retry backoffs in nanoseconds. Deliberately `_nanos`, not
    /// `_ns`: the values come from [`PublishPolicy::backoff_for`], a pure
    /// function of the policy, so they must replay bit-for-bit — the
    /// blackout test in `tests/chaos_network.rs` reads growth off this
    /// histogram.
    backoff_nanos: Histogram,
}

impl PipelineObs {
    fn register(registry: &Registry) -> Self {
        PipelineObs {
            sequence_ns: registry.timer("pipeline.stage.sequence_ns"),
            prepare_ns: registry.timer("pipeline.stage.prepare_ns"),
            issue_ns: registry.timer("pipeline.stage.issue_ns"),
            publish_ns: registry.timer("pipeline.stage.publish_ns"),
            batch_blocks: registry.histogram("pipeline.batch_blocks", Buckets::linear(1, 1, 16)),
            submit_depth: registry.gauge("pipeline.submit_depth"),
            reorder_depth: registry.gauge("pipeline.reorder_depth"),
            jobs: registry.counter("pipeline.jobs"),
            block_certs: registry.counter("pipeline.block_certs"),
            index_certs: registry.counter("pipeline.index_certs"),
            errors: registry.counter("pipeline.errors"),
            publish_attempts: registry.counter("pipeline.publish.attempts"),
            publish_retries: registry.counter("pipeline.publish.retries"),
            dead_letters: registry.counter("pipeline.publish.dead_letters"),
            backoff_nanos: registry.histogram("pipeline.publish.backoff_nanos", Buckets::latency()),
        }
    }
}

/// One executed block with everything a preparer needs to build its
/// proofs off-thread.
struct LinkPrep {
    block: Block,
    reads: ReadSet,
    touched: Vec<StateKey>,
    pre_state: ChainState,
}

/// The job-type-specific remainder of a sequenced job.
enum JobKind {
    Block,
    Augmented {
        indexes: Vec<IndexInput>,
    },
    Hierarchical {
        indexes: Vec<IndexInput>,
        writes: WriteSet,
    },
    Batch,
}

/// Sequencer → preparer: an executed, chain-ordered job.
struct PrepTask {
    seq: u64,
    /// The tip the job extends (the request's `prev_header` / batch anchor).
    prev_header: BlockHeader,
    links: Vec<LinkPrep>,
    kind: JobKind,
    /// The job's resulting tip, for CI adoption at shutdown.
    tip_header: BlockHeader,
    post_state: ChainState,
    rw_set_gen: Duration,
}

/// An index update with its request bytes pre-encoded around the
/// `prev_cert` splice point.
struct PreparedIndex {
    index_type: String,
    new_digest: Hash,
    /// `enc(index_type) ++ enc(prev_digest)`.
    head: Vec<u8>,
    /// `enc(new_digest) ++ enc(aux)`.
    tail: Vec<u8>,
}

/// Pre-encoded request parts. Each payload splits the canonical
/// [`crate::messages::EcallRequest`] encoding at the fields only the
/// issuer knows (`prev_cert`, `block_cert`): the issuer splices those in
/// and the resulting bytes are identical to a full sequential encode.
enum PreparedPayload {
    /// `SigGen = [1] ++ head ++ enc(prev_cert) ++ tail`.
    Block {
        header: BlockHeader,
        /// `enc(prev_header)`.
        head: Vec<u8>,
        /// `enc(block) ++ enc(reads) ++ enc(state_proof)`.
        tail: Vec<u8>,
    },
    /// `AugSigGen = [2] ++ head ++ enc(prev_cert) ++ tail ++ index` per index.
    Augmented {
        header: BlockHeader,
        head: Vec<u8>,
        tail: Vec<u8>,
        indexes: Vec<PreparedIndex>,
    },
    /// `SigGen` as above, then
    /// `IdxSigGen = [3] ++ idx_head ++ enc(block_cert) ++ idx_mid ++ index`
    /// per index.
    Hierarchical {
        header: BlockHeader,
        head: Vec<u8>,
        tail: Vec<u8>,
        /// `enc(prev_header) ++ enc(header) ++ enc(block)`.
        idx_head: Vec<u8>,
        /// `enc(writes) ++ enc(write_proof)`.
        idx_mid: Vec<u8>,
        indexes: Vec<PreparedIndex>,
    },
    /// `BatchSigGen = [4] ++ head ++ enc(prev_cert) ++ links_enc`.
    Batch {
        last_header: BlockHeader,
        head: Vec<u8>,
        links_enc: Vec<u8>,
    },
}

/// Preparer → issuer (or sequencer → issuer for jobs that failed before
/// preparation).
struct Prepared {
    seq: u64,
    payload: Result<PreparedPayload, CertError>,
    /// `(tip header, post state)` to adopt if issuance succeeds.
    tip: Option<(BlockHeader, ChainState)>,
    rw_set_gen: Duration,
    proof_gen: Duration,
}

impl Prepared {
    fn failed(seq: u64, error: CertError) -> Self {
        Prepared {
            seq,
            payload: Err(error),
            tip: None,
            rw_set_gen: Duration::default(),
            proof_gen: Duration::default(),
        }
    }
}

/// Issuer → publisher: one job's outcome, in chain order.
struct JobOutcome {
    seq: u64,
    result: Result<(Vec<NetMessage>, CertBreakdown), CertError>,
}

/// What the issuer thread hands back at shutdown.
struct IssuerFinal {
    enclave: Arc<Enclave<CertProgram>>,
    pk_enc: dcert_primitives::keys::PublicKey,
    report: AttestationReport,
    prev_block_cert: Option<Certificate>,
    adopted: Option<(BlockHeader, ChainState)>,
}

/// The staged, concurrent certification engine. See the module docs for
/// the stage layout.
///
/// Jobs submitted through [`CertPipeline::submit`] are certified in
/// submission order; certificates appear on the gossip bus in the same
/// order. A failed job is reported in the [`PipelineReport`] and does not
/// advance the certificate chain (subsequent jobs that depended on it
/// fail too — the enclave is the authority).
pub struct CertPipeline {
    submit_tx: Option<Sender<CertJob>>,
    sequencer: Option<JoinHandle<()>>,
    preparers: Vec<JoinHandle<()>>,
    issuer: Option<JoinHandle<IssuerFinal>>,
    publisher: Option<JoinHandle<PipelineReport>>,
    node: Option<FullNode>,
    /// Shared handle onto the enclave driving the issuer stage, so the
    /// host can seal its state while the pipeline runs (crash drills,
    /// periodic checkpointing).
    enclave: Arc<Enclave<CertProgram>>,
    /// Crash switch: when set, every stage abandons its in-flight work at
    /// the next loop iteration instead of draining.
    poison: Arc<AtomicBool>,
}

impl CertPipeline {
    /// Spawns the pipeline's stages around `ci`'s enclave and chain view.
    /// Certificates are broadcast on `transport` as they are issued.
    pub fn spawn(
        ci: CertificateIssuer,
        config: PipelineConfig,
        transport: Arc<dyn Transport>,
    ) -> Self {
        if config.parallelism.merkle_threads > 0 {
            dcert_merkle::set_build_threads(config.parallelism.merkle_threads);
        }
        let parts = ci.into_parts();
        let node = parts.node;
        let state = node.state().clone();
        let tip = node.tip().clone();
        let executor = node.executor().clone();
        let poison = Arc::new(AtomicBool::new(false));
        let obs = PipelineObs::register(&config.obs);

        let depth = config.queue_depth.max(1);
        let workers = config.preparers.max(1);
        let (submit_tx, submit_rx) = bounded::<CertJob>(depth);
        let (prep_tx, prep_rx) = bounded::<PrepTask>(depth);
        // Room for every preparer to have one result in flight on top of
        // the reorder window, so a fast preparer never blocks the slow
        // one holding the next sequence number.
        let (issue_tx, issue_rx) = bounded::<Prepared>(depth + workers);
        let (publish_tx, publish_rx) = bounded::<JobOutcome>(depth);

        let fail_tx = issue_tx.clone();
        let seq_poison = poison.clone();
        let seq_obs = obs.clone();
        let sequencer = thread::Builder::new()
            .name("dcert-sequencer".into())
            .spawn(move || {
                sequencer_loop(
                    submit_rx, prep_tx, fail_tx, state, tip, executor, seq_poison, seq_obs,
                )
            })
            .expect("spawn sequencer");

        let preparers = (0..workers)
            .map(|i| {
                let rx = prep_rx.clone();
                let tx = issue_tx.clone();
                let prep_poison = poison.clone();
                let prep_obs = obs.clone();
                thread::Builder::new()
                    .name(format!("dcert-preparer-{i}"))
                    .spawn(move || {
                        for task in rx {
                            if prep_poison.load(Ordering::SeqCst) {
                                break;
                            }
                            let started = Instant::now();
                            let prepared = prepare(task);
                            prep_obs.prepare_ns.record(started.elapsed());
                            if tx.send(prepared).is_err() {
                                break;
                            }
                        }
                    })
                    .expect("spawn preparer")
            })
            .collect();
        // The loops above hold the only remaining clones; dropping these
        // lets each channel close when its senders finish.
        drop(prep_rx);
        drop(issue_tx);

        let enclave = parts.enclave;
        let enclave_handle = enclave.clone();
        let pk_enc = parts.pk_enc;
        let report = parts.report;
        let prev_block_cert = parts.prev_block_cert;
        let issue_poison = poison.clone();
        let issue_obs = obs.clone();
        let issuer = thread::Builder::new()
            .name("dcert-issuer".into())
            .spawn(move || {
                issuer_loop(
                    issue_rx,
                    publish_tx,
                    enclave,
                    pk_enc,
                    report,
                    prev_block_cert,
                    issue_poison,
                    issue_obs,
                )
            })
            .expect("spawn issuer");

        let policy = config.publish.clone();
        let pub_poison = poison.clone();
        let publisher = thread::Builder::new()
            .name("dcert-publisher".into())
            .spawn(move || publisher_loop(publish_rx, transport, policy, pub_poison, obs))
            .expect("spawn publisher");

        CertPipeline {
            submit_tx: Some(submit_tx),
            sequencer: Some(sequencer),
            preparers,
            issuer: Some(issuer),
            publisher: Some(publisher),
            node: Some(node),
            enclave: enclave_handle,
            poison,
        }
    }

    /// Simulates a CI process crash: every stage abandons its in-flight
    /// work at the next iteration — queued jobs, prepared requests, and
    /// issued-but-unpublished certificates are lost, exactly as a real
    /// `kill -9` would lose them. Join the carcass with
    /// [`CertPipeline::shutdown`] (whose returned CI and report reflect
    /// only what survived) or just drop it.
    ///
    /// **Abort, not drain.** `kill` is the opposite of calling
    /// [`CertPipeline::shutdown`] directly: `shutdown` on a live pipeline
    /// *drains* — it closes the intake, lets every queued job flow through
    /// prepare → issue → publish, and returns only once the channels are
    /// empty — whereas `kill` *aborts*: stages check the poison flag
    /// between jobs and bail out with whatever is still in their channels
    /// unprocessed. Nothing in-enclave is rolled back (the signing
    /// watermark keeps any already-issued heights), so an aborted height
    /// may be signed-but-unpublished; recovery must resume from the last
    /// published certificate, never from the enclave watermark.
    ///
    /// Recovery is what `tests/crash_recovery.rs` drills: reboot from a
    /// sealed enclave key ([`CertPipeline::seal_enclave_key`]) plus the
    /// last *published* certificate via
    /// [`CertificateIssuer::resume_on_platform`].
    pub fn kill(&self) {
        self.poison.store(true, Ordering::SeqCst);
    }

    /// Seals the enclave's current state (signing key + monotonic height
    /// watermark) to its platform, while the pipeline runs. ECalls
    /// serialize inside the enclave, so the seal is a consistent point-in
    /// -time snapshot between signatures.
    pub fn seal_enclave_key(&self) -> dcert_sgx::SealedBlob {
        self.enclave.seal_state()
    }

    /// Submits a job for certification. Blocks when the pipeline is at
    /// capacity (`queue_depth`) — this is the backpressure that keeps a
    /// fast block producer from outrunning the enclave.
    ///
    /// # Errors
    ///
    /// [`CertError::PipelineClosed`] if the pipeline has stopped
    /// accepting work (a stage died).
    pub fn submit(&self, job: CertJob) -> Result<(), CertError> {
        let tx = self.submit_tx.as_ref().expect("pipeline already shut down");
        tx.send(job).map_err(|_| CertError::PipelineClosed)
    }

    /// Closes submission, drains every in-flight job through all stages,
    /// and returns the reassembled [`CertificateIssuer`] — positioned at
    /// the last successfully certified block — plus the run's report.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any stage thread (none are expected; a
    /// rejected block is an error, not a panic).
    pub fn shutdown(mut self) -> (CertificateIssuer, PipelineReport) {
        let (fin, pipeline_report) = self.drain();
        let fin = fin.expect("pipeline stages already joined");
        let mut node = self.node.take().expect("node present until shutdown");
        if let Some((header, state)) = fin.adopted {
            // Every adopted transition was validated by the sequencer
            // (and certified by the enclave); no re-execution needed.
            node.adopt_validated(header, state);
        }
        let ci = CertificateIssuer::from_parts(CiParts {
            node,
            enclave: fin.enclave,
            pk_enc: fin.pk_enc,
            report: fin.report,
            prev_block_cert: fin.prev_block_cert,
        });
        (ci, pipeline_report)
    }

    /// Closes submission and joins every stage in cascade order.
    fn drain(&mut self) -> (Option<IssuerFinal>, PipelineReport) {
        // Dropping the submission sender starts the cascade: sequencer
        // finishes → preparer queue closes → issuer queue closes →
        // publisher queue closes.
        drop(self.submit_tx.take());
        if let Some(h) = self.sequencer.take() {
            h.join().expect("sequencer panicked");
        }
        for h in self.preparers.drain(..) {
            h.join().expect("preparer panicked");
        }
        let fin = self
            .issuer
            .take()
            .map(|h| h.join().expect("issuer panicked"));
        let report = self
            .publisher
            .take()
            .map(|h| h.join().expect("publisher panicked"))
            .unwrap_or_default();
        (fin, report)
    }
}

impl Drop for CertPipeline {
    /// Dropping the pipeline without [`CertPipeline::shutdown`] still
    /// drains in-flight jobs (certificates reach the bus) — only the
    /// reassembled CI and the report are lost.
    fn drop(&mut self) {
        drop(self.submit_tx.take());
        if let Some(h) = self.sequencer.take() {
            let _ = h.join();
        }
        for h in self.preparers.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.issuer.take() {
            let _ = h.join();
        }
        if let Some(h) = self.publisher.take() {
            let _ = h.join();
        }
    }
}

// --- sequencer -------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn sequencer_loop(
    jobs: Receiver<CertJob>,
    prep_tx: Sender<PrepTask>,
    fail_tx: Sender<Prepared>,
    mut state: ChainState,
    mut tip: BlockHeader,
    executor: Executor,
    poison: Arc<AtomicBool>,
    obs: PipelineObs,
) {
    for (seq, job) in (0u64..).zip(jobs.iter()) {
        if poison.load(Ordering::SeqCst) {
            break;
        }
        // +1: the job just taken off the queue was part of the backlog.
        obs.submit_depth
            .record_max(i64::try_from(jobs.len() + 1).unwrap_or(i64::MAX));
        let started = Instant::now();
        let sequenced = sequence_job(job, &mut state, &mut tip, &executor, seq);
        obs.sequence_ns.record(started.elapsed());
        let sent = match sequenced {
            Ok(task) => {
                obs.batch_blocks.observe(task.links.len() as u64);
                prep_tx.send(task).is_ok()
            }
            // Route the failure straight to the issuer so the sequence
            // numbering stays contiguous for its reorder buffer.
            Err(error) => fail_tx.send(Prepared::failed(seq, error)).is_ok(),
        };
        if !sent {
            break;
        }
    }
}

fn sequence_job(
    job: CertJob,
    state: &mut ChainState,
    tip: &mut BlockHeader,
    executor: &Executor,
    seq: u64,
) -> Result<PrepTask, CertError> {
    let prev_header = tip.clone();
    match job {
        CertJob::Block(block) => {
            let (link, _writes, rw_set_gen) = advance(state, tip, executor, &block)?;
            Ok(PrepTask {
                seq,
                prev_header,
                links: vec![link],
                kind: JobKind::Block,
                tip_header: tip.clone(),
                post_state: state.clone(),
                rw_set_gen,
            })
        }
        CertJob::Augmented { block, indexes } => {
            let (link, _writes, rw_set_gen) = advance(state, tip, executor, &block)?;
            Ok(PrepTask {
                seq,
                prev_header,
                links: vec![link],
                kind: JobKind::Augmented { indexes },
                tip_header: tip.clone(),
                post_state: state.clone(),
                rw_set_gen,
            })
        }
        CertJob::Hierarchical { block, indexes } => {
            let (link, writes, rw_set_gen) = advance(state, tip, executor, &block)?;
            Ok(PrepTask {
                seq,
                prev_header,
                links: vec![link],
                kind: JobKind::Hierarchical { indexes, writes },
                tip_header: tip.clone(),
                post_state: state.clone(),
                rw_set_gen,
            })
        }
        CertJob::Batch(blocks) => {
            if blocks.is_empty() {
                return Err(CertError::EnclaveRejected("empty batch".into()));
            }
            // A batch certifies atomically: roll the chain view back if
            // any link fails.
            let saved_state = state.clone();
            let saved_tip = tip.clone();
            let mut links = Vec::with_capacity(blocks.len());
            let mut rw_set_gen = Duration::default();
            for block in &blocks {
                match advance(state, tip, executor, block) {
                    Ok((link, _writes, rw)) => {
                        links.push(link);
                        rw_set_gen += rw;
                    }
                    Err(error) => {
                        *state = saved_state;
                        *tip = saved_tip;
                        return Err(error);
                    }
                }
            }
            Ok(PrepTask {
                seq,
                prev_header,
                links,
                kind: JobKind::Batch,
                tip_header: tip.clone(),
                post_state: state.clone(),
                rw_set_gen,
            })
        }
    }
}

/// Validates `block` against the sequencer's tip, executes it once, and
/// advances the chain view. On error the view is untouched.
///
/// Linkage and the post-state root are checked here because the
/// sequencer *advances* on them; everything else (tx signatures, tx
/// root, consensus proof, read-set authenticity) is the enclave's call —
/// it re-validates the lot, so a bad block fails at issuance and the
/// certificate chain simply does not advance past it.
fn advance(
    state: &mut ChainState,
    tip: &mut BlockHeader,
    executor: &Executor,
    block: &Block,
) -> Result<(LinkPrep, WriteSet, Duration), CertError> {
    let parent = tip.hash();
    if block.header.prev_hash != parent {
        return Err(CertError::Chain(ChainError::BrokenLink {
            claimed: block.header.prev_hash,
            actual: parent,
        }));
    }
    if block.header.height != tip.height + 1 {
        return Err(CertError::Chain(ChainError::BadHeight {
            parent: tip.height,
            child: block.header.height,
        }));
    }
    let started = Instant::now();
    let calls: Vec<Call> = block.txs.iter().map(|tx| tx.call.clone()).collect();
    let execution = executor.execute_block(state, &calls);
    let rw_set_gen = started.elapsed();

    let reads: ReadSet = execution
        .reads
        .iter()
        .map(|(k, v)| (*k, v.clone()))
        .collect();
    let writes: WriteSet = execution
        .writes
        .iter()
        .map(|(k, v)| (*k, v.clone()))
        .collect();
    let touched = execution.touched_keys();

    let pre_state = state.clone();
    state.apply_writes(execution.writes.iter());
    if state.root() != block.header.state_root {
        *state = pre_state;
        return Err(CertError::Chain(ChainError::StateRootMismatch));
    }
    *tip = block.header.clone();
    Ok((
        LinkPrep {
            block: block.clone(),
            reads,
            touched,
            pre_state,
        },
        writes,
        rw_set_gen,
    ))
}

// --- preparers -------------------------------------------------------------

fn prepare(task: PrepTask) -> Prepared {
    let PrepTask {
        seq,
        prev_header,
        mut links,
        kind,
        tip_header,
        post_state,
        rw_set_gen,
    } = task;
    let mut proof_gen = Duration::default();
    let payload = match kind {
        JobKind::Block => {
            let link = links.pop().expect("block job has one link");
            let (head, tail) = encode_block_parts(&prev_header, &link, &mut proof_gen);
            PreparedPayload::Block {
                header: link.block.header,
                head,
                tail,
            }
        }
        JobKind::Augmented { indexes } => {
            let link = links.pop().expect("augmented job has one link");
            let (head, tail) = encode_block_parts(&prev_header, &link, &mut proof_gen);
            PreparedPayload::Augmented {
                header: link.block.header,
                head,
                tail,
                indexes: indexes.into_iter().map(encode_index_parts).collect(),
            }
        }
        JobKind::Hierarchical { indexes, writes } => {
            let link = links.pop().expect("hierarchical job has one link");
            let (head, tail) = encode_block_parts(&prev_header, &link, &mut proof_gen);

            let started = Instant::now();
            let write_keys: Vec<StateKey> = writes.iter().map(|(k, _)| *k).collect();
            let write_proof = link.pre_state.prove(&write_keys);
            proof_gen += started.elapsed();

            let mut idx_head = Vec::new();
            prev_header.encode(&mut idx_head);
            link.block.header.encode(&mut idx_head);
            link.block.encode(&mut idx_head);
            let mut idx_mid = Vec::new();
            encode_seq(&writes, &mut idx_mid);
            write_proof.encode(&mut idx_mid);

            PreparedPayload::Hierarchical {
                header: link.block.header,
                head,
                tail,
                idx_head,
                idx_mid,
                indexes: indexes.into_iter().map(encode_index_parts).collect(),
            }
        }
        JobKind::Batch => {
            let mut batch_links = Vec::with_capacity(links.len());
            for link in links {
                let started = Instant::now();
                let state_proof = link.pre_state.prove(&link.touched);
                proof_gen += started.elapsed();
                batch_links.push(BatchLink {
                    block: link.block,
                    reads: link.reads,
                    state_proof,
                });
            }
            let last_header = batch_links
                .last()
                .expect("batch job has links")
                .block
                .header
                .clone();
            let mut head = Vec::new();
            prev_header.encode(&mut head);
            let mut links_enc = Vec::new();
            encode_seq(&batch_links, &mut links_enc);
            PreparedPayload::Batch {
                last_header,
                head,
                links_enc,
            }
        }
    };
    Prepared {
        seq,
        payload: Ok(payload),
        tip: Some((tip_header, post_state)),
        rw_set_gen,
        proof_gen,
    }
}

/// Builds the `prev_cert` splice parts of a `SigGen`/`AugSigGen` body
/// (see [`crate::messages::BlockInput`]'s field order).
fn encode_block_parts(
    prev_header: &BlockHeader,
    link: &LinkPrep,
    proof_gen: &mut Duration,
) -> (Vec<u8>, Vec<u8>) {
    let started = Instant::now();
    let state_proof = link.pre_state.prove(&link.touched);
    *proof_gen += started.elapsed();

    let mut head = Vec::new();
    prev_header.encode(&mut head);
    let mut tail = Vec::new();
    link.block.encode(&mut tail);
    encode_seq(&link.reads, &mut tail);
    state_proof.encode(&mut tail);
    (head, tail)
}

/// Pre-encodes an [`IndexInput`] around its `prev_cert` splice point.
fn encode_index_parts(index: IndexInput) -> PreparedIndex {
    let mut head = Vec::new();
    index.index_type.encode(&mut head);
    index.prev_digest.encode(&mut head);
    let mut tail = Vec::new();
    index.new_digest.encode(&mut tail);
    index.aux.encode(&mut tail);
    PreparedIndex {
        index_type: index.index_type,
        new_digest: index.new_digest,
        head,
        tail,
    }
}

// --- issuer ----------------------------------------------------------------

struct Issuer {
    enclave: Arc<Enclave<CertProgram>>,
    pk_enc: dcert_primitives::keys::PublicKey,
    report: AttestationReport,
    prev_block_cert: Option<Certificate>,
    /// The last certificate issued per index name: the `cert_{i-1}^{idx}`
    /// each next [`IndexInput`] chains from. The issuer owns this (rather
    /// than trusting the staged input's `prev_cert` field) because the
    /// previous index certificate does not exist yet when a job is
    /// submitted — filling it here is what lets preparation run ahead of
    /// issuance.
    prev_index_certs: HashMap<String, Certificate>,
    adopted: Option<(BlockHeader, ChainState)>,
    /// Reused request-marshalling buffer: every spliced request is
    /// assembled here instead of a fresh `Vec` per ECall.
    scratch: Vec<u8>,
    /// Largest request encoding seen so far; bytes below this mark count
    /// as reused (see [`Enclave::note_marshal_reuse`]). The issuer
    /// processes jobs in strict sequence order, so the mark — and the
    /// derived counter — is a pure function of the request stream,
    /// identical to the sequential CI's.
    scratch_high_water: usize,
}

#[allow(clippy::too_many_arguments)]
fn issuer_loop(
    issue_rx: Receiver<Prepared>,
    publish_tx: Sender<JobOutcome>,
    enclave: Arc<Enclave<CertProgram>>,
    pk_enc: dcert_primitives::keys::PublicKey,
    report: AttestationReport,
    prev_block_cert: Option<Certificate>,
    poison: Arc<AtomicBool>,
    obs: PipelineObs,
) -> IssuerFinal {
    let mut issuer = Issuer {
        enclave,
        pk_enc,
        report,
        prev_block_cert,
        prev_index_certs: HashMap::new(),
        adopted: None,
        scratch: Vec::new(),
        scratch_high_water: 0,
    };
    // Preparers finish out of order; issue strictly by sequence number.
    let mut next = 0u64;
    let mut pending: BTreeMap<u64, Prepared> = BTreeMap::new();
    for prepared in issue_rx {
        if poison.load(Ordering::SeqCst) {
            break;
        }
        pending.insert(prepared.seq, prepared);
        obs.reorder_depth
            .record_max(i64::try_from(pending.len()).unwrap_or(i64::MAX));
        while let Some(ready) = pending.remove(&next) {
            let started = Instant::now();
            let outcome = issuer.process(ready);
            obs.issue_ns.record(started.elapsed());
            next += 1;
            if publish_tx.send(outcome).is_err() {
                break;
            }
        }
    }
    // A panicked preparer leaves a gap; surface anything stranded behind
    // it (out of chain order, so the enclave will reject) rather than
    // dropping it silently. A killed pipeline drops it instead — that is
    // the crash being simulated.
    if !poison.load(Ordering::SeqCst) {
        for (_, stranded) in std::mem::take(&mut pending) {
            let started = Instant::now();
            let outcome = issuer.process(stranded);
            obs.issue_ns.record(started.elapsed());
            if publish_tx.send(outcome).is_err() {
                break;
            }
        }
    }
    IssuerFinal {
        enclave: issuer.enclave,
        pk_enc: issuer.pk_enc,
        report: issuer.report,
        prev_block_cert: issuer.prev_block_cert,
        adopted: issuer.adopted,
    }
}

impl Issuer {
    fn process(&mut self, prepared: Prepared) -> JobOutcome {
        let Prepared {
            seq,
            payload,
            tip,
            rw_set_gen,
            proof_gen,
        } = prepared;
        let mut breakdown = CertBreakdown {
            rw_set_gen,
            proof_gen,
            ..CertBreakdown::default()
        };
        let result = payload.and_then(|payload| {
            let messages = self.issue_payload(payload, &mut breakdown)?;
            // Certified: the CI returned at shutdown stands at this tip.
            self.adopted = tip;
            Ok(messages)
        });
        JobOutcome {
            seq,
            result: result.map(|messages| (messages, breakdown)),
        }
    }

    /// Splices the previous certificates into the pre-encoded request(s),
    /// crosses the enclave boundary, and assembles the certificates. The
    /// certificate chain state (`prev_block_cert`, `prev_index_certs`)
    /// commits only if the whole job succeeds — matching the sequential
    /// methods, which bail before `apply` on any index failure.
    fn issue_payload(
        &mut self,
        payload: PreparedPayload,
        breakdown: &mut CertBreakdown,
    ) -> Result<Vec<NetMessage>, CertError> {
        match payload {
            PreparedPayload::Block { header, head, tail } => {
                let cert = self.issue_block_cert(1, &head, &tail, &header, breakdown)?;
                self.prev_block_cert = Some(cert.clone());
                Ok(vec![NetMessage::BlockCert { header, cert }])
            }
            PreparedPayload::Augmented {
                header,
                head,
                tail,
                indexes,
            } => {
                // Algorithm 4 issues no standalone block certificate and
                // leaves prev_block_cert untouched.
                let mut issued = Vec::with_capacity(indexes.len());
                for index in &indexes {
                    self.scratch.clear();
                    self.scratch
                        .reserve(2 + head.len() + tail.len() + index.head.len());
                    self.scratch.push(2u8);
                    self.scratch.extend_from_slice(&head);
                    self.prev_block_cert.encode(&mut self.scratch);
                    self.scratch.extend_from_slice(&tail);
                    splice_index(&self.prev_index_certs, index, &mut self.scratch);
                    let signature = self.dispatch_scratch(breakdown)?;
                    issued.push(Certificate {
                        pk_enc: self.pk_enc,
                        report: self.report.clone(),
                        digest: Certificate::index_digest(&header.hash(), &index.new_digest),
                        signature,
                    });
                }
                Ok(self.commit_index_certs(&header, indexes, issued))
            }
            PreparedPayload::Hierarchical {
                header,
                head,
                tail,
                idx_head,
                idx_mid,
                indexes,
            } => {
                let block_cert = self.issue_block_cert(1, &head, &tail, &header, breakdown)?;
                let mut issued = Vec::with_capacity(indexes.len());
                for index in &indexes {
                    self.scratch.clear();
                    self.scratch
                        .reserve(2 + idx_head.len() + idx_mid.len() + index.head.len());
                    self.scratch.push(3u8);
                    self.scratch.extend_from_slice(&idx_head);
                    block_cert.encode(&mut self.scratch);
                    self.scratch.extend_from_slice(&idx_mid);
                    splice_index(&self.prev_index_certs, index, &mut self.scratch);
                    let signature = self.dispatch_scratch(breakdown)?;
                    issued.push(Certificate {
                        pk_enc: self.pk_enc,
                        report: self.report.clone(),
                        digest: Certificate::index_digest(&header.hash(), &index.new_digest),
                        signature,
                    });
                }
                self.prev_block_cert = Some(block_cert.clone());
                let mut messages = vec![NetMessage::BlockCert {
                    header: header.clone(),
                    cert: block_cert,
                }];
                messages.extend(self.commit_index_certs(&header, indexes, issued));
                Ok(messages)
            }
            PreparedPayload::Batch {
                last_header,
                head,
                links_enc,
            } => {
                let cert = self.issue_block_cert(4, &head, &links_enc, &last_header, breakdown)?;
                self.prev_block_cert = Some(cert.clone());
                Ok(vec![NetMessage::BlockCert {
                    header: last_header,
                    cert,
                }])
            }
        }
    }

    /// One `prev_block_cert`-spliced ECall producing a certificate over
    /// `H(header)` (`SigGen` and `BatchSigGen` share this shape).
    fn issue_block_cert(
        &mut self,
        tag: u8,
        head: &[u8],
        tail: &[u8],
        header: &BlockHeader,
        breakdown: &mut CertBreakdown,
    ) -> Result<Certificate, CertError> {
        self.scratch.clear();
        self.scratch.reserve(1 + head.len() + tail.len() + 256);
        self.scratch.push(tag);
        self.scratch.extend_from_slice(head);
        self.prev_block_cert.encode(&mut self.scratch);
        self.scratch.extend_from_slice(tail);
        let signature = self.dispatch_scratch(breakdown)?;
        Ok(Certificate {
            pk_enc: self.pk_enc,
            report: self.report.clone(),
            digest: header.hash(),
            signature,
        })
    }

    /// Dispatches the request currently marshalled in `self.scratch`,
    /// crediting the bytes below the buffer's high-water mark to
    /// `enclave.marshal_reuse_bytes`.
    fn dispatch_scratch(
        &mut self,
        breakdown: &mut CertBreakdown,
    ) -> Result<dcert_primitives::keys::Signature, CertError> {
        let reused = self.scratch.len().min(self.scratch_high_water);
        if reused > 0 {
            self.enclave.note_marshal_reuse(reused as u64);
        }
        self.scratch_high_water = self.scratch_high_water.max(self.scratch.len());
        issue_encoded(&self.enclave, &self.scratch, breakdown)
    }

    /// Records the issued index certificates and turns them into gossip
    /// messages.
    fn commit_index_certs(
        &mut self,
        header: &BlockHeader,
        indexes: Vec<PreparedIndex>,
        issued: Vec<Certificate>,
    ) -> Vec<NetMessage> {
        indexes
            .into_iter()
            .zip(issued)
            .map(|(index, cert)| {
                self.prev_index_certs
                    .insert(index.index_type.clone(), cert.clone());
                NetMessage::IndexCert {
                    header: header.clone(),
                    index: index.index_type,
                    digest: index.new_digest,
                    cert,
                }
            })
            .collect()
    }
}

/// Appends `index` with its tracked `prev_cert` spliced in.
///
/// Free function (rather than an `Issuer` method) so the caller can borrow
/// `prev_index_certs` while holding `&mut` to the issuer's scratch buffer.
fn splice_index(
    prev_index_certs: &HashMap<String, Certificate>,
    index: &PreparedIndex,
    encoded: &mut Vec<u8>,
) {
    encoded.extend_from_slice(&index.head);
    let prev = prev_index_certs.get(&index.index_type).cloned();
    prev.encode(encoded);
    encoded.extend_from_slice(&index.tail);
}

// --- publisher -------------------------------------------------------------

fn publisher_loop(
    publish_rx: Receiver<JobOutcome>,
    transport: Arc<dyn Transport>,
    policy: PublishPolicy,
    poison: Arc<AtomicBool>,
    obs: PipelineObs,
) -> PipelineReport {
    let mut report = PipelineReport::default();
    let mut jitter = SimRng::new(policy.jitter_seed);
    for outcome in publish_rx {
        if poison.load(Ordering::SeqCst) {
            break;
        }
        report.jobs += 1;
        obs.jobs.inc();
        match outcome.result {
            Ok((messages, breakdown)) => {
                let started = Instant::now();
                for message in messages {
                    match &message {
                        NetMessage::BlockCert { .. } => {
                            report.block_certs += 1;
                            obs.block_certs.inc();
                        }
                        NetMessage::IndexCert { .. } => {
                            report.index_certs += 1;
                            obs.index_certs.inc();
                        }
                        _ => {}
                    }
                    publish_confirmed(
                        &*transport,
                        &policy,
                        outcome.seq,
                        message,
                        &mut report,
                        &obs,
                        &mut jitter,
                    );
                }
                obs.publish_ns.record(started.elapsed());
                report.breakdowns.push(breakdown);
            }
            Err(error) => {
                obs.errors.inc();
                report.errors.push((outcome.seq, error));
            }
        }
    }
    report
}

/// One acked publish: retries on the policy's capped, jittered
/// exponential schedule ([`PublishPolicy::backoff_for`]) until the
/// transport confirms at least `min_acks` deliveries, dead-lettering the
/// message when the budget runs out. With `min_acks == 0` this is a
/// plain fire-and-forget broadcast (no clone, no sleeping). Every
/// computed backoff is recorded into `pipeline.publish.backoff_nanos`
/// before sleeping, so the schedule is observable without timing the
/// sleeps themselves.
fn publish_confirmed(
    transport: &dyn Transport,
    policy: &PublishPolicy,
    seq: u64,
    message: NetMessage,
    report: &mut PipelineReport,
    obs: &PipelineObs,
    jitter: &mut SimRng,
) {
    if policy.min_acks == 0 {
        obs.publish_attempts.inc();
        transport.publish(message);
        return;
    }
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        obs.publish_attempts.inc();
        if transport.publish(message.clone()) >= policy.min_acks {
            return;
        }
        if attempts > policy.max_retries {
            obs.dead_letters.inc();
            report.dead_letters.push(DeadLetter {
                seq,
                attempts,
                message,
            });
            return;
        }
        obs.publish_retries.inc();
        let backoff = policy.backoff_for(attempts, jitter);
        obs.backoff_nanos
            .observe(u64::try_from(backoff.as_nanos()).unwrap_or(u64::MAX));
        thread::sleep(backoff);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_doubles_jitters_caps_and_replays() {
        let policy = PublishPolicy {
            min_acks: 1,
            max_retries: 10,
            backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(8),
            jitter_seed: 42,
        };
        let schedule = |seed: u64| -> Vec<Duration> {
            let mut jitter = SimRng::new(seed);
            (1..=10)
                .map(|retry| policy.backoff_for(retry, &mut jitter))
                .collect()
        };
        let a = schedule(policy.jitter_seed);
        assert_eq!(a, schedule(policy.jitter_seed), "same seed, same schedule");
        for (i, delay) in a.iter().enumerate() {
            // Pre-jitter base: 1 ms doubled per retry, capped at 8 ms.
            let base = Duration::from_millis(1u64 << i.min(3));
            assert!(
                *delay >= base / 2 && *delay < base,
                "retry {}: {delay:?} outside [{:?}, {:?})",
                i + 1,
                base / 2,
                base
            );
        }
        // The capped tail can never exceed max_backoff...
        assert!(a.iter().all(|d| *d < Duration::from_millis(8)));
        // ...and the early schedule genuinely grows: every pre-cap delay
        // exceeds the previous retry's jitter ceiling.
        assert!(a[1] >= Duration::from_millis(1));
        assert!(a[2] >= Duration::from_millis(2));
        assert!(a[3] >= Duration::from_millis(4));
    }

    #[test]
    fn zero_retry_shift_saturates() {
        let policy = PublishPolicy {
            backoff: Duration::from_millis(1),
            max_backoff: Duration::from_secs(1),
            ..PublishPolicy::default()
        };
        let mut jitter = SimRng::new(0);
        // A huge retry number must cap, not overflow the shift.
        let delay = policy.backoff_for(u32::MAX, &mut jitter);
        assert!(delay <= Duration::from_secs(1));
    }
}
