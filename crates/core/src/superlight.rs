//! The superlight client (Algorithm 3).
//!
//! Stores exactly one header and one certificate — constant storage — and
//! validates the whole chain in constant time: verify the attestation
//! report (once per enclave key), verify the certificate signature and
//! digest against the presented header, and enforce the chain-selection
//! rule. Optionally tracks per-index certificates so verifiable queries
//! can be checked against certified index digests.

use std::collections::{HashMap, HashSet};

use dcert_chain::BlockHeader;
use dcert_primitives::codec::{Decode, Encode};
use dcert_primitives::hash::Hash;
use dcert_primitives::keys::PublicKey;
use dcert_store::{Store, StoreError};

use crate::cert::Certificate;
use crate::error::CertError;
use crate::network::NetMessage;
use crate::persist::{
    RecoverError, SUPERLIGHT_INDEX_PREFIX, SUPERLIGHT_LATEST_KEY, SUPERLIGHT_SEEN_KEY,
};

/// What [`SuperlightClient::on_message`] did with a network message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyncOutcome {
    /// The certificate validated and the client advanced its chain view.
    Adopted,
    /// An index certificate validated against the current chain view.
    AdoptedIndex,
    /// The message was for a height at or below the adopted one —
    /// a duplicate or late delivery, harmlessly discarded.
    Stale,
    /// The certificate validated under one trust domain but the quorum
    /// threshold is not yet met; it is buffered until enough domains
    /// agree (quorum clients only).
    Pending,
    /// The message type is not consumed by this client.
    Ignored,
    /// The certificate failed validation (forged, corrupted in flight, or
    /// mismatched). The height it *claimed* still counts as seen, so the
    /// resync path re-fetches the authentic certificate.
    Rejected(CertError),
}

/// A DCert superlight client.
///
/// Trust anchors: the well-known IAS root key and the expected enclave
/// measurement (pinning *which program* may sign certificates).
#[derive(Debug, Clone)]
pub struct SuperlightClient {
    ias_key: PublicKey,
    measurement: Hash,
    latest: Option<(BlockHeader, Certificate)>,
    /// Enclave keys whose attestation already verified — the
    /// "check an attestation report only once" cache of Section 4.3.
    attested: HashSet<[u8; 32]>,
    /// Latest certified digest + certificate per tracked index.
    indexes: HashMap<String, (Hash, Certificate)>,
    /// Highest height any *certificate message* announced, adopted or
    /// not. When it runs ahead of the validated height the client knows
    /// a delivery was lost or rejected — the gap-detection signal.
    highest_seen: Option<u64>,
}

impl SuperlightClient {
    /// Creates a client trusting `ias_key` and `measurement`.
    pub fn new(ias_key: PublicKey, measurement: Hash) -> Self {
        SuperlightClient {
            ias_key,
            measurement,
            latest: None,
            attested: HashSet::new(),
            indexes: HashMap::new(),
            highest_seen: None,
        }
    }

    /// Consumes one network message: validates and adopts certificates,
    /// tracks announced heights for gap detection, and classifies
    /// everything else. This is the client's event loop body on a lossy
    /// network — it never wedges: a bad certificate is [`SyncOutcome::
    /// Rejected`] and a missed one is recovered via [`Self::needs_resync`].
    pub fn on_message(&mut self, message: &NetMessage) -> SyncOutcome {
        match message {
            NetMessage::BlockCert { header, cert } => {
                self.saw_height(header.height);
                if self.height().is_some_and(|h| header.height <= h) {
                    return SyncOutcome::Stale;
                }
                match self.validate_chain(header, cert) {
                    Ok(()) => SyncOutcome::Adopted,
                    Err(e) => SyncOutcome::Rejected(e),
                }
            }
            NetMessage::IndexCert {
                header,
                index,
                digest,
                cert,
            } => {
                self.saw_height(header.height);
                match self.height() {
                    // Hierarchical scheme: the index certificate rides on
                    // the already-adopted header.
                    Some(h) if header.height == h => {
                        match self.validate_index(index, *digest, cert) {
                            Ok(()) => SyncOutcome::AdoptedIndex,
                            Err(e) => SyncOutcome::Rejected(e),
                        }
                    }
                    Some(h) if header.height < h => SyncOutcome::Stale,
                    // Augmented scheme (or the index cert outran its block
                    // cert): the certificate vouches for chain + index at
                    // once, so adopt both.
                    _ => match self.validate_chain_with_index(header, index, *digest, cert) {
                        Ok(()) => SyncOutcome::Adopted,
                        Err(e) => SyncOutcome::Rejected(e),
                    },
                }
            }
            NetMessage::Block(_)
            | NetMessage::CertRequest { .. }
            | NetMessage::Shutdown
            | NetMessage::Serve { .. } => SyncOutcome::Ignored,
        }
    }

    /// The height gap to recover, as an inclusive `(from, to)` range of
    /// missing heights — `Some` when a certificate was announced beyond
    /// the validated view (lost, late, or rejected in flight).
    pub fn needs_resync(&self) -> Option<(u64, u64)> {
        let seen = self.highest_seen?;
        let have = self.height().unwrap_or(0);
        (seen > have).then_some((have + 1, seen))
    }

    /// The re-request to publish when a gap is detected: any CI or
    /// archive holding the range answers by republishing it. `None` when
    /// the client is caught up.
    pub fn resync_request(&self) -> Option<NetMessage> {
        self.needs_resync()
            .map(|(from, to)| NetMessage::CertRequest { from, to })
    }

    /// Highest height any certificate message announced, validated or not.
    pub fn highest_seen(&self) -> Option<u64> {
        self.highest_seen
    }

    fn saw_height(&mut self, height: u64) {
        self.highest_seen = Some(self.highest_seen.map_or(height, |h| h.max(height)));
    }

    /// Algorithm 3: `validate_chain`. On success the client adopts
    /// `(header, cert)` as its latest chain view.
    ///
    /// # Errors
    ///
    /// One [`CertError`] per failed line of the algorithm; notably
    /// [`CertError::ChainSelection`] when `header` does not extend the
    /// longest chain the client has seen.
    pub fn validate_chain(
        &mut self,
        header: &BlockHeader,
        cert: &Certificate,
    ) -> Result<(), CertError> {
        // Lines 3–5, cached per enclave key.
        let key_bytes = cert.pk_enc.to_array();
        if !self.attested.contains(&key_bytes) {
            cert.verify_trust(&self.ias_key, &self.measurement)?;
        }
        // Lines 6–7.
        cert.verify_digest(&header.hash())?;
        // Line 8: longest-chain selection.
        if let Some((current, _)) = &self.latest {
            if header.height <= current.height {
                return Err(CertError::ChainSelection {
                    current: current.height,
                    offered: header.height,
                });
            }
        }
        self.attested.insert(key_bytes);
        self.latest = Some((header.clone(), cert.clone()));
        Ok(())
    }

    /// Validates an **augmented** certificate, which vouches for the chain
    /// and one index at once (its digest is `H(H(hdr) ‖ H_idx)`), adopting
    /// both the chain view and the index digest. This is how a client
    /// tracks a CI that runs the augmented scheme of Algorithm 4, where no
    /// standalone block certificate exists.
    ///
    /// # Errors
    ///
    /// The usual certificate errors, plus
    /// [`CertError::ChainSelection`] when `header` does not extend the
    /// longest chain seen.
    pub fn validate_chain_with_index(
        &mut self,
        header: &BlockHeader,
        name: &str,
        idx_digest: Hash,
        cert: &Certificate,
    ) -> Result<(), CertError> {
        let key_bytes = cert.pk_enc.to_array();
        if !self.attested.contains(&key_bytes) {
            cert.verify_trust(&self.ias_key, &self.measurement)?;
        }
        let expected = Certificate::index_digest(&header.hash(), &idx_digest);
        cert.verify_digest(&expected)?;
        if let Some((current, _)) = &self.latest {
            if header.height <= current.height {
                return Err(CertError::ChainSelection {
                    current: current.height,
                    offered: header.height,
                });
            }
        }
        self.attested.insert(key_bytes);
        self.latest = Some((header.clone(), cert.clone()));
        self.indexes
            .insert(name.to_owned(), (idx_digest, cert.clone()));
        Ok(())
    }

    /// Adopts an index certificate for `name`, verifying it against the
    /// client's latest header.
    ///
    /// # Errors
    ///
    /// [`CertError::NotInitialized`] if no chain view exists yet, plus the
    /// usual certificate errors.
    pub fn validate_index(
        &mut self,
        name: &str,
        idx_digest: Hash,
        cert: &Certificate,
    ) -> Result<(), CertError> {
        let (header, _) = self.latest.as_ref().ok_or(CertError::NotInitialized)?;
        let expected = Certificate::index_digest(&header.hash(), &idx_digest);
        let key_bytes = cert.pk_enc.to_array();
        if !self.attested.contains(&key_bytes) {
            cert.verify_trust(&self.ias_key, &self.measurement)?;
        }
        cert.verify_digest(&expected)?;
        self.attested.insert(key_bytes);
        self.indexes
            .insert(name.to_owned(), (idx_digest, cert.clone()));
        Ok(())
    }

    /// The latest validated header, if any.
    pub fn latest_header(&self) -> Option<&BlockHeader> {
        self.latest.as_ref().map(|(h, _)| h)
    }

    /// The latest validated chain height.
    pub fn height(&self) -> Option<u64> {
        self.latest.as_ref().map(|(h, _)| h.height)
    }

    /// The certified digest of a tracked index (what query proofs verify
    /// against).
    pub fn index_digest(&self, name: &str) -> Option<Hash> {
        self.indexes.get(name).map(|(d, _)| *d)
    }

    /// Checkpoints the client's constant-size state into `store`'s head
    /// region and syncs it to durability: the latest `(header, cert)`,
    /// every tracked index certificate, and the gap-detection watermark.
    /// The trust anchors are *not* persisted — [`Self::resume`] takes them
    /// fresh, so a tampered checkpoint cannot smuggle in new anchors.
    ///
    /// # Errors
    ///
    /// Any [`StoreError`] from the backend; the checkpoint is all-or-
    /// nothing at the head-region level (a torn head write recovers to the
    /// previous checkpoint).
    pub fn checkpoint(&self, store: &mut dyn Store) -> Result<(), StoreError> {
        if let Some((header, cert)) = &self.latest {
            store.put_head(
                SUPERLIGHT_LATEST_KEY,
                (header.clone(), cert.clone()).to_encoded_bytes(),
            )?;
        }
        for (name, (digest, cert)) in &self.indexes {
            let key = format!("{SUPERLIGHT_INDEX_PREFIX}{name}");
            store.put_head(&key, (*digest, cert.clone()).to_encoded_bytes())?;
        }
        if let Some(seen) = self.highest_seen {
            store.put_head(SUPERLIGHT_SEEN_KEY, seen.to_encoded_bytes())?;
        }
        store.sync()
    }

    /// Reconstructs a client from a checkpoint written by
    /// [`Self::checkpoint`], **re-validating everything** under the given
    /// trust anchors: the recovered header/certificate run through
    /// [`Self::validate_chain`] and every index certificate through
    /// [`Self::validate_index`]. Recovered bytes that fail verification
    /// are refused with a typed error — a resumed client never serves
    /// state it could not prove.
    ///
    /// # Errors
    ///
    /// [`RecoverError::Codec`] when a checkpoint entry fails to decode,
    /// [`RecoverError::Cert`] when a recovered certificate no longer
    /// verifies.
    pub fn resume(
        ias_key: PublicKey,
        measurement: Hash,
        store: &dyn Store,
    ) -> Result<Self, RecoverError> {
        let mut client = SuperlightClient::new(ias_key, measurement);
        if let Some(bytes) = store.head(SUPERLIGHT_LATEST_KEY) {
            let (header, cert) = <(BlockHeader, Certificate)>::decode_all(&bytes)?;
            client.validate_chain(&header, &cert)?;
        }
        for (key, bytes) in store.head_entries() {
            if let Some(name) = key.strip_prefix(SUPERLIGHT_INDEX_PREFIX) {
                let (digest, cert) = <(Hash, Certificate)>::decode_all(&bytes)?;
                client.validate_index(name, digest, &cert)?;
            }
        }
        if let Some(bytes) = store.head(SUPERLIGHT_SEEN_KEY) {
            client.saw_height(u64::decode_all(&bytes)?);
        }
        Ok(client)
    }

    /// Bytes this client persists: the latest header + certificate and any
    /// tracked index certificates. Constant in the chain length — the
    /// Fig. 7a claim.
    pub fn storage_bytes(&self) -> usize {
        let chain = self
            .latest
            .as_ref()
            .map(|(h, c)| h.encoded_len() + c.encoded_len())
            .unwrap_or(0);
        let idx: usize = self
            .indexes
            .values()
            .map(|(d, c)| d.as_bytes().len() + c.encoded_len())
            .sum();
        chain + idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcert_chain::consensus::ConsensusProof;
    use dcert_primitives::hash::{hash_bytes, Address};
    use dcert_primitives::keys::Keypair;
    use dcert_sgx::{AttestationService, Quote};

    /// A miniature certificate authority: hand-rolled certs without the
    /// enclave machinery, for isolated client tests.
    struct MiniCa {
        ias: AttestationService,
        enclave_key: Keypair,
        measurement: Hash,
    }

    impl MiniCa {
        fn new() -> Self {
            let mut ias = AttestationService::with_seed([1; 32]);
            let platform = Keypair::from_seed([2; 32]);
            ias.register_platform(platform.public());
            MiniCa {
                ias,
                enclave_key: Keypair::from_seed([3; 32]),
                measurement: hash_bytes(b"mini-program"),
            }
        }

        fn certify(&self, digest: Hash) -> Certificate {
            let platform = Keypair::from_seed([2; 32]);
            let quote = Quote::sign(
                &platform,
                self.measurement,
                Certificate::key_binding(&self.enclave_key.public()),
            );
            Certificate {
                pk_enc: self.enclave_key.public(),
                report: self.ias.attest(&quote).unwrap(),
                digest,
                signature: self.enclave_key.sign(digest.as_bytes()),
            }
        }

        fn client(&self) -> SuperlightClient {
            SuperlightClient::new(self.ias.public_key(), self.measurement)
        }
    }

    fn header(height: u64) -> BlockHeader {
        BlockHeader {
            height,
            prev_hash: hash_bytes(height.to_be_bytes()),
            state_root: Hash::ZERO,
            tx_root: Hash::ZERO,
            timestamp: height,
            miner: Address::default(),
            consensus: ConsensusProof::Pow {
                difficulty_bits: 0,
                nonce: 0,
            },
        }
    }

    #[test]
    fn fresh_client_has_no_view() {
        let ca = MiniCa::new();
        let client = ca.client();
        assert_eq!(client.height(), None);
        assert_eq!(client.latest_header(), None);
        assert_eq!(client.storage_bytes(), 0);
        assert_eq!(client.index_digest("any"), None);
    }

    #[test]
    fn adopts_and_advances() {
        let ca = MiniCa::new();
        let mut client = ca.client();
        let h1 = header(1);
        client.validate_chain(&h1, &ca.certify(h1.hash())).unwrap();
        assert_eq!(client.height(), Some(1));
        let h5 = header(5);
        client.validate_chain(&h5, &ca.certify(h5.hash())).unwrap();
        assert_eq!(client.height(), Some(5));
        assert_eq!(client.latest_header(), Some(&h5));
    }

    #[test]
    fn index_tracking_requires_a_chain_view() {
        let ca = MiniCa::new();
        let mut client = ca.client();
        let cert = ca.certify(Hash::ZERO);
        assert_eq!(
            client.validate_index("history", Hash::ZERO, &cert),
            Err(CertError::NotInitialized)
        );
    }

    #[test]
    fn index_cert_binds_to_latest_header() {
        let ca = MiniCa::new();
        let mut client = ca.client();
        let h1 = header(1);
        client.validate_chain(&h1, &ca.certify(h1.hash())).unwrap();

        let idx_digest = hash_bytes(b"index-root");
        let good = ca.certify(Certificate::index_digest(&h1.hash(), &idx_digest));
        client.validate_index("history", idx_digest, &good).unwrap();
        assert_eq!(client.index_digest("history"), Some(idx_digest));

        // An index cert bound to a *different* header is rejected.
        let other = header(9);
        let stale = ca.certify(Certificate::index_digest(&other.hash(), &idx_digest));
        assert_eq!(
            client.validate_index("history", idx_digest, &stale),
            Err(CertError::DigestMismatch)
        );
    }

    #[test]
    fn augmented_flow_adopts_chain_and_index_together() {
        let ca = MiniCa::new();
        let mut client = ca.client();
        let h1 = header(1);
        let idx_digest = hash_bytes(b"index-root");
        let aug = ca.certify(Certificate::index_digest(&h1.hash(), &idx_digest));
        client
            .validate_chain_with_index(&h1, "inverted", idx_digest, &aug)
            .unwrap();
        assert_eq!(client.height(), Some(1));
        assert_eq!(client.index_digest("inverted"), Some(idx_digest));
        // And chain selection still applies.
        assert!(matches!(
            client.validate_chain_with_index(&h1, "inverted", idx_digest, &aug),
            Err(CertError::ChainSelection { .. })
        ));
    }

    #[test]
    fn storage_is_independent_of_adopted_height() {
        let ca = MiniCa::new();
        let mut client = ca.client();
        let h1 = header(1);
        client.validate_chain(&h1, &ca.certify(h1.hash())).unwrap();
        let at_1 = client.storage_bytes();
        let h1000 = header(1_000_000);
        client
            .validate_chain(&h1000, &ca.certify(h1000.hash()))
            .unwrap();
        assert_eq!(client.storage_bytes(), at_1);
    }

    #[test]
    fn on_message_adopts_rejects_and_detects_gaps() {
        let ca = MiniCa::new();
        let mut client = ca.client();
        let h1 = header(1);
        assert_eq!(
            client.on_message(&NetMessage::BlockCert {
                header: h1.clone(),
                cert: ca.certify(h1.hash()),
            }),
            SyncOutcome::Adopted
        );
        assert_eq!(client.needs_resync(), None);

        // A forged certificate for height 3 is rejected, but its height
        // is remembered: the client knows it is now behind.
        let h3 = header(3);
        let mut forged = ca.certify(h3.hash());
        forged.signature = ca.certify(Hash::ZERO).signature;
        assert!(matches!(
            client.on_message(&NetMessage::BlockCert {
                header: h3.clone(),
                cert: forged,
            }),
            SyncOutcome::Rejected(CertError::BadSignature)
        ));
        assert_eq!(client.height(), Some(1));
        assert_eq!(client.needs_resync(), Some((2, 3)));
        assert_eq!(
            client.resync_request(),
            Some(NetMessage::CertRequest { from: 2, to: 3 })
        );

        // The authentic certificate arrives (e.g. republished by an
        // archive) and the gap closes.
        assert_eq!(
            client.on_message(&NetMessage::BlockCert {
                header: h3.clone(),
                cert: ca.certify(h3.hash()),
            }),
            SyncOutcome::Adopted
        );
        assert_eq!(client.needs_resync(), None);
        // A late duplicate is stale, not an error.
        assert_eq!(
            client.on_message(&NetMessage::BlockCert {
                header: h1,
                cert: ca.certify(header(1).hash()),
            }),
            SyncOutcome::Stale
        );
    }

    #[test]
    fn checkpoint_resume_round_trip() {
        use dcert_store::MemStore;
        let ca = MiniCa::new();
        let mut client = ca.client();
        let h3 = header(3);
        client.validate_chain(&h3, &ca.certify(h3.hash())).unwrap();
        let idx_digest = hash_bytes(b"index-root");
        let idx_cert = ca.certify(Certificate::index_digest(&h3.hash(), &idx_digest));
        client
            .validate_index("history", idx_digest, &idx_cert)
            .unwrap();
        client.on_message(&NetMessage::BlockCert {
            header: header(7),
            cert: ca.certify(Hash::ZERO), // wrong digest: rejected but seen
        });

        let mut store = MemStore::new();
        client.checkpoint(&mut store).unwrap();

        let resumed =
            SuperlightClient::resume(ca.ias.public_key(), ca.measurement, &store).unwrap();
        assert_eq!(resumed.height(), Some(3));
        assert_eq!(resumed.latest_header(), client.latest_header());
        assert_eq!(resumed.index_digest("history"), Some(idx_digest));
        assert_eq!(resumed.highest_seen(), Some(7));
        assert_eq!(resumed.needs_resync(), Some((4, 7)));
    }

    #[test]
    fn resume_refuses_forged_checkpoint() {
        use dcert_primitives::codec::Encode;
        use dcert_store::{MemStore, Store};
        let ca = MiniCa::new();
        let mut client = ca.client();
        let h1 = header(1);
        client.validate_chain(&h1, &ca.certify(h1.hash())).unwrap();
        let mut store = MemStore::new();
        client.checkpoint(&mut store).unwrap();

        // Swap in a certificate whose signature does not match the header:
        // decoding succeeds, re-verification must refuse.
        let forged = ca.certify(hash_bytes(b"somewhere else"));
        store
            .put_head(
                crate::persist::SUPERLIGHT_LATEST_KEY,
                (h1, forged).to_encoded_bytes(),
            )
            .unwrap();
        store.sync().unwrap();
        let err =
            SuperlightClient::resume(ca.ias.public_key(), ca.measurement, &store).unwrap_err();
        assert!(matches!(err, crate::persist::RecoverError::Cert(_)));
    }

    #[test]
    fn resume_refuses_undecodable_checkpoint() {
        use dcert_store::{MemStore, Store};
        let ca = MiniCa::new();
        let mut store = MemStore::new();
        store
            .put_head(crate::persist::SUPERLIGHT_LATEST_KEY, vec![1, 2, 3])
            .unwrap();
        store.sync().unwrap();
        let err =
            SuperlightClient::resume(ca.ias.public_key(), ca.measurement, &store).unwrap_err();
        assert!(matches!(err, crate::persist::RecoverError::Codec(_)));
    }

    #[test]
    fn resume_of_empty_store_is_a_fresh_client() {
        use dcert_store::MemStore;
        let ca = MiniCa::new();
        let resumed =
            SuperlightClient::resume(ca.ias.public_key(), ca.measurement, &MemStore::new())
                .unwrap();
        assert_eq!(resumed.height(), None);
        assert_eq!(resumed.highest_seen(), None);
    }

    #[test]
    fn attestation_cache_skips_repeat_trust_checks() {
        // Validating with the wrong IAS key fails the first time, but a
        // key that was attested once is cached thereafter.
        let ca = MiniCa::new();
        let mut client = ca.client();
        let h1 = header(1);
        client.validate_chain(&h1, &ca.certify(h1.hash())).unwrap();
        // Tamper with the report of a *later* cert: because pk_enc is
        // cached as attested, only digest/signature checks run — this is
        // exactly the paper's "check the report only once" behavior.
        let h2 = header(2);
        let mut cert2 = ca.certify(h2.hash());
        cert2.report.report_data = hash_bytes(b"garbled after first attestation");
        client.validate_chain(&h2, &cert2).unwrap();
    }
}
