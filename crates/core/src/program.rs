//! The trusted certificate program (runs *inside* the enclave).
//!
//! This module is the in-enclave half of DCert: Algorithm 2
//! (`ecall_sig_gen` with `blk_verify_t` and `cert_verify_t`), the trusted
//! part of Algorithm 4 (augmented certificates), and the per-index loop
//! body of Algorithm 5 (hierarchical certificates). It is loaded into a
//! [`dcert_sgx::Enclave`], which measures it and confines the enclave key
//! `sk_enc` — generated here on the `Init` ECall — behind the boundary.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use dcert_chain::{BlockHeader, ConsensusEngine};
use dcert_primitives::codec::{Decode, Encode};
use dcert_primitives::hash::Hash;
use dcert_primitives::keys::{Keypair, PublicKey, Signature};
use dcert_sgx::enclave::{measure, Sealable};
use dcert_sgx::{SgxError, TrustedApp};
use dcert_vm::{CallStatus, Executor, ReadSetState, StateKey, VmError};
// dcert-lint: allow(r3-determinism, reason = "sk_enc generation entropy on the Init ECall; replayable runs pre-seed via with_signing_seed")
use rand::rngs::OsRng;

use crate::cert::Certificate;
use crate::error::CertError;
use crate::messages::{
    BatchLink, BlockInput, EcallRequest, EcallResponse, IdxRequest, IndexInput, WriteSet,
};
use crate::range::RangeCert;
use crate::verifier::IndexVerifier;

/// The measured code identity of the certificate program.
///
/// In real SGX the measurement covers the enclave image — program logic,
/// the consensus rules, the contract semantics, and the registered index
/// verifiers. Bump the version when any of those change.
pub const CODE_IDENTITY: &[u8] = b"dcert-certificate-program-v1";

/// Returns the expected measurement of [`CertProgram`] — what superlight
/// clients pin as their trust anchor.
pub fn expected_measurement() -> Hash {
    measure(CODE_IDENTITY)
}

/// The trusted certificate program.
///
/// Holds, inside the enclave: the hard-coded genesis digest, the IAS root
/// key (to validate previous certificates recursively), the deterministic
/// executor and consensus engine (shared chain semantics), the index
/// verifiers, and — after `Init` — the signing key `sk_enc`.
pub struct CertProgram {
    genesis_digest: Hash,
    ias_key: PublicKey,
    executor: Executor,
    engine: Arc<dyn ConsensusEngine>,
    verifiers: HashMap<String, Box<dyn IndexVerifier>>,
    keypair: Option<Keypair>,
    /// Highest block height this enclave has signed. Sealed together with
    /// the key, so a restarted enclave cannot be replayed into signing a
    /// conflicting certificate at or below a height it already vouched
    /// for — the trust-boundary half of crash recovery.
    last_signed_height: u64,
}

impl CertProgram {
    /// Builds the program (pre-launch; nothing is trusted yet).
    pub fn new(
        genesis_digest: Hash,
        ias_key: PublicKey,
        executor: Executor,
        engine: Arc<dyn ConsensusEngine>,
        verifiers: Vec<Box<dyn IndexVerifier>>,
    ) -> Self {
        let verifiers = verifiers
            .into_iter()
            .map(|v| (v.type_name().to_owned(), v))
            .collect();
        CertProgram {
            genesis_digest,
            ias_key,
            executor,
            engine,
            verifiers,
            keypair: None,
            last_signed_height: 0,
        }
    }

    /// Pre-seeds the signing key so the `Init` ECall becomes
    /// deterministic: ed25519 signatures are deterministic, so two
    /// programs seeded alike produce byte-identical certificates. This is
    /// what the pipeline-equivalence tests and reproducible benches boot
    /// with; a production enclave generates `sk_enc` internally.
    #[must_use]
    pub fn with_signing_seed(mut self, seed: [u8; 32]) -> Self {
        self.keypair = Some(Keypair::from_seed(seed));
        self
    }

    fn own_measurement(&self) -> Hash {
        expected_measurement()
    }

    fn keypair(&self) -> Result<&Keypair, CertError> {
        self.keypair.as_ref().ok_or(CertError::NotInitialized)
    }

    /// Dispatches a decoded request — the logic behind the byte-level
    /// [`TrustedApp::call`]. Public so tests can assert on typed
    /// [`CertError`]s rather than boundary-rendered strings.
    pub fn handle(&mut self, request: EcallRequest) -> Result<EcallResponse, CertError> {
        match request {
            EcallRequest::Init => {
                let kp = self.keypair.get_or_insert_with(|| {
                    // dcert-lint: allow(r3-determinism, reason = "sk_enc generation entropy on the Init ECall; replayable runs pre-seed via with_signing_seed")
                    Keypair::generate(&mut OsRng)
                });
                Ok(EcallResponse::Initialized(kp.public()))
            }
            EcallRequest::SigGen(input) => {
                self.guard_height(input.block.header.height, true)?;
                let sig = self.sig_gen(&input)?;
                self.mark_signed(input.block.header.height);
                Ok(EcallResponse::Signature(sig))
            }
            EcallRequest::AugSigGen(block_input, index_input) => {
                // Non-strict: one augmented certificate *per index* is
                // legitimately signed at the same height.
                self.guard_height(block_input.block.header.height, false)?;
                let sig = self.aug_sig_gen(&block_input, &index_input)?;
                self.mark_signed(block_input.block.header.height);
                Ok(EcallResponse::Signature(sig))
            }
            EcallRequest::IdxSigGen(req) => {
                // Non-strict: index certificates follow the block
                // certificate at the same height (Algorithm 5).
                self.guard_height(req.header.height, false)?;
                let sig = self.idx_sig_gen(&req)?;
                self.mark_signed(req.header.height);
                Ok(EcallResponse::Signature(sig))
            }
            EcallRequest::BatchSigGen {
                prev_header,
                prev_cert,
                links,
            } => {
                if let Some(last) = links.last() {
                    self.guard_height(last.block.header.height, true)?;
                }
                let sig = self.batch_sig_gen(&prev_header, prev_cert.as_ref(), &links)?;
                if let Some(last) = links.last() {
                    self.mark_signed(last.block.header.height);
                }
                Ok(EcallResponse::Signature(sig))
            }
            EcallRequest::RangeSigGen { anchor, links } => {
                let first = anchor
                    .height
                    .checked_add(1)
                    .ok_or(CertError::HeightOverflow)?;
                // Strict: a shard enclave never re-signs a range it already
                // vouched for — restart recovery resumes *above* the sealed
                // watermark; re-certifying after a reorg requires a fresh
                // shard enclave (a new key, a new attestation).
                self.guard_height(first, true)?;
                let sig = self.range_sig_gen(&anchor, &links)?;
                if let Some(last) = links.last() {
                    self.mark_signed(last.block.header.height);
                }
                Ok(EcallResponse::Signature(sig))
            }
            EcallRequest::FoldRanges {
                anchor,
                anchor_cert,
                ranges,
            } => {
                let first = ranges.first().ok_or(CertError::EmptyRange)?.first;
                // Strict: the aggregator refuses to fold ranges at or below
                // heights it already signed — the stale-range watermark.
                // After a reorg the fleet must boot a fresh aggregator to
                // re-issue the affected suffix.
                self.guard_height(first, true)?;
                let sigs = self.fold_ranges(&anchor, anchor_cert.as_ref(), &ranges)?;
                if let Some(last) = ranges.last() {
                    self.mark_signed(last.last);
                }
                Ok(EcallResponse::Signatures(sigs))
            }
        }
    }

    /// The monotonicity guard: refuse to sign below the sealed watermark
    /// (`strict` additionally refuses *at* it — block certificates must
    /// advance the chain; index certificates may share a height).
    fn guard_height(&self, offered: u64, strict: bool) -> Result<(), CertError> {
        let regressed = if strict {
            offered <= self.last_signed_height && self.last_signed_height > 0
        } else {
            offered < self.last_signed_height
        };
        if regressed {
            return Err(CertError::HeightRegression {
                last_signed: self.last_signed_height,
                offered,
            });
        }
        Ok(())
    }

    fn mark_signed(&mut self, height: u64) {
        self.last_signed_height = self.last_signed_height.max(height);
    }

    /// The sealed signing watermark (test observability).
    pub fn last_signed_height(&self) -> u64 {
        self.last_signed_height
    }

    /// Batch extension of Algorithm 2: one anchor check, then sequential
    /// `blk_verify_t` per link, one signature over the final header. The
    /// returned certificate vouches for the whole prefix exactly as a
    /// per-block certificate would (recursion is unchanged; intermediate
    /// certificates are simply never materialized).
    fn batch_sig_gen(
        &self,
        prev_header: &BlockHeader,
        prev_cert: Option<&Certificate>,
        links: &[BatchLink],
    ) -> Result<Signature, CertError> {
        if links.is_empty() {
            return Err(CertError::EnclaveRejected("empty batch".into()));
        }
        self.verify_prev_block(prev_header, prev_cert)?;
        let mut anchor = prev_header.clone();
        for link in links {
            let input = BlockInput {
                prev_header: anchor,
                prev_cert: None, // the anchor chain is verified in-batch
                block: link.block.clone(),
                reads: link.reads.clone(),
                state_proof: link.state_proof.clone(),
            };
            self.blk_verify(&input)?;
            anchor = link.block.header.clone();
        }
        let kp = self.keypair()?;
        Ok(kp.sign(anchor.hash().as_bytes()))
    }

    /// Shard-fleet range step: sequential `blk_verify_t` from an
    /// *uncertified* anchor, then one signature over the range binding
    /// digest. No recursive anchor check happens here — the shard cannot
    /// have the anchor's certificate (producing it in parallel is the whole
    /// point) — so the binding signature instead *commits* to the anchor
    /// digest, and the aggregator authenticates it when chaining ranges.
    fn range_sig_gen(
        &self,
        anchor: &BlockHeader,
        links: &[BatchLink],
    ) -> Result<Signature, CertError> {
        if links.is_empty() {
            return Err(CertError::EmptyRange);
        }
        let first = anchor
            .height
            .checked_add(1)
            .ok_or(CertError::HeightOverflow)?;
        let anchor_digest = anchor.hash();
        let mut prev = anchor.clone();
        let mut digests = Vec::with_capacity(links.len());
        for link in links {
            let input = BlockInput {
                prev_header: prev,
                prev_cert: None, // anchor is uncertified by design
                block: link.block.clone(),
                reads: link.reads.clone(),
                state_proof: link.state_proof.clone(),
            };
            self.blk_verify(&input)?;
            prev = link.block.header.clone();
            digests.push(prev.hash());
        }
        let binding = RangeCert::binding_digest(&anchor_digest, first, prev.height, &digests);
        let kp = self.keypair()?;
        Ok(kp.sign(binding.as_bytes()))
    }

    /// Aggregator step: authenticate the fold anchor recursively (genesis
    /// digest or a previous certificate of this very program), verify each
    /// shard range certificate's attestation and binding signature, enforce
    /// digest-to-digest chaining and height contiguity across ranges, then
    /// sign every folded header digest. Each produced signature is
    /// byte-identical to what sequential recursion would sign: ed25519 is
    /// deterministic and block certificates sign raw header digests.
    fn fold_ranges(
        &self,
        anchor: &BlockHeader,
        anchor_cert: Option<&Certificate>,
        ranges: &[RangeCert],
    ) -> Result<Vec<Signature>, CertError> {
        if ranges.is_empty() {
            return Err(CertError::EmptyRange);
        }
        self.verify_prev_block(anchor, anchor_cert)?;
        let measurement = self.own_measurement();
        let mut prev_digest = anchor.hash();
        let mut next_height = anchor
            .height
            .checked_add(1)
            .ok_or(CertError::HeightOverflow)?;
        let kp = self.keypair()?;
        let mut sigs = Vec::new();
        for range in ranges {
            range.verify(&self.ias_key, &measurement)?;
            if range.anchor_digest != prev_digest {
                return Err(CertError::RangeAnchorMismatch);
            }
            if range.first != next_height {
                return Err(CertError::RangeDiscontinuity {
                    expected: next_height,
                    found: range.first,
                });
            }
            for digest in &range.header_digests {
                sigs.push(kp.sign(digest.as_bytes()));
            }
            prev_digest = *range.header_digests.last().ok_or(CertError::EmptyRange)?;
            next_height = range.last.checked_add(1).ok_or(CertError::HeightOverflow)?;
        }
        Ok(sigs)
    }

    /// Algorithm 2: `ecall_sig_gen`.
    fn sig_gen(&self, input: &BlockInput) -> Result<Signature, CertError> {
        self.verify_prev_block(&input.prev_header, input.prev_cert.as_ref())?;
        self.blk_verify(input)?;
        let kp = self.keypair()?;
        Ok(kp.sign(input.block.header.hash().as_bytes()))
    }

    /// Algorithm 4: augmented certificate (block + one index, one ECall).
    fn aug_sig_gen(
        &self,
        block_input: &BlockInput,
        index_input: &IndexInput,
    ) -> Result<Signature, CertError> {
        let verifier = self.verifier(&index_input.index_type)?;
        // Lines 3–6: validate the previous augmented certificate, or the
        // genesis anchors for both the chain and the index.
        if block_input.prev_header.height == 0 {
            if block_input.prev_header.hash() != self.genesis_digest {
                return Err(CertError::GenesisMismatch);
            }
            if index_input.prev_digest != verifier.genesis_digest() {
                return Err(CertError::GenesisMismatch);
            }
        } else {
            let cert = index_input
                .prev_cert
                .as_ref()
                .ok_or(CertError::MissingPrevCert)?;
            let expected = Certificate::index_digest(
                &block_input.prev_header.hash(),
                &index_input.prev_digest,
            );
            cert.verify(&self.ias_key, &self.own_measurement(), &expected)?;
        }
        // Line 7: full block validation (replay), yielding the write set.
        let writes = self.blk_verify(block_input)?;
        // Lines 8–10: recompute the index digest from the update proof.
        let new_digest = verifier.verify_update(
            &index_input.prev_digest,
            &block_input.block,
            &writes,
            &index_input.aux,
        )?;
        if new_digest != index_input.new_digest {
            return Err(CertError::IndexDigestMismatch);
        }
        // Line 12: sign H(H(hdr_i) ‖ H_i^idx).
        let digest = Certificate::index_digest(&block_input.block.header.hash(), &new_digest);
        let kp = self.keypair()?;
        Ok(kp.sign(digest.as_bytes()))
    }

    /// Algorithm 5, loop body: hierarchical index certificate. The block is
    /// validated through its *certificate* (line 10) instead of re-replay.
    fn idx_sig_gen(&self, req: &IdxRequest) -> Result<Signature, CertError> {
        let verifier = self.verifier(&req.index.index_type)?;
        let header_digest = req.header.hash();
        // Line 10: the block certificate vouches for hdr_i.
        req.block_cert
            .verify(&self.ias_key, &self.own_measurement(), &header_digest)?;
        // Linkage: hdr_i commits to hdr_{i-1}, so the parent header (and
        // its state root) is authentic once cert_i checks out.
        if req.header.prev_hash != req.prev_header.hash() {
            return Err(CertError::Chain(dcert_chain::ChainError::BrokenLink {
                claimed: req.header.prev_hash,
                actual: req.prev_header.hash(),
            }));
        }
        if req.header.height != req.prev_header.height + 1 {
            return Err(CertError::Chain(dcert_chain::ChainError::BadHeight {
                parent: req.prev_header.height,
                child: req.header.height,
            }));
        }
        // The block body must be the certified one (verifiers may read tx
        // payloads, e.g. for keyword indexes).
        if req.block.header.hash() != header_digest {
            return Err(CertError::DigestMismatch);
        }
        req.block.verify_tx_root()?;
        // Lines 5–9: previous index certificate or genesis anchors.
        if req.prev_header.height == 0 {
            if req.prev_header.hash() != self.genesis_digest {
                return Err(CertError::GenesisMismatch);
            }
            if req.index.prev_digest != verifier.genesis_digest() {
                return Err(CertError::GenesisMismatch);
            }
        } else {
            let cert = req
                .index
                .prev_cert
                .as_ref()
                .ok_or(CertError::MissingPrevCert)?;
            let expected =
                Certificate::index_digest(&req.prev_header.hash(), &req.index.prev_digest);
            cert.verify(&self.ias_key, &self.own_measurement(), &expected)?;
        }
        // Authenticate the claimed write set without replaying: it must
        // transform the certified parent state root into the certified new
        // state root.
        req.write_proof
            .verify(&req.prev_header.state_root)
            .map_err(CertError::Proof)?;
        let write_hashes = hash_writes(&req.writes);
        let reached = req
            .write_proof
            .updated_root(&write_hashes)
            .map_err(CertError::Proof)?;
        if reached != req.header.state_root {
            return Err(CertError::WriteSetMismatch);
        }
        // Lines 11–13: recompute the index digest.
        let new_digest = verifier.verify_update(
            &req.index.prev_digest,
            &req.block,
            &req.writes,
            &req.index.aux,
        )?;
        if new_digest != req.index.new_digest {
            return Err(CertError::IndexDigestMismatch);
        }
        // Line 15: sign H(H(hdr_i) ‖ H_i^idx).
        let digest = Certificate::index_digest(&header_digest, &new_digest);
        let kp = self.keypair()?;
        Ok(kp.sign(digest.as_bytes()))
    }

    fn verifier(&self, name: &str) -> Result<&dyn IndexVerifier, CertError> {
        self.verifiers
            .get(name)
            .map(|v| v.as_ref())
            .ok_or_else(|| CertError::UnknownIndexType(name.to_owned()))
    }

    /// `cert_verify_t` on the previous block, or the genesis anchor
    /// (Algorithm 2, lines 3–6).
    fn verify_prev_block(
        &self,
        prev_header: &BlockHeader,
        prev_cert: Option<&Certificate>,
    ) -> Result<(), CertError> {
        if prev_header.height == 0 {
            if prev_header.hash() != self.genesis_digest {
                return Err(CertError::GenesisMismatch);
            }
            return Ok(());
        }
        let cert = prev_cert.ok_or(CertError::MissingPrevCert)?;
        cert.verify(&self.ias_key, &self.own_measurement(), &prev_header.hash())
    }

    /// `blk_verify_t` (Algorithm 2, lines 10–24). Returns the replayed
    /// write set for index verifiers.
    fn blk_verify(&self, input: &BlockInput) -> Result<WriteSet, CertError> {
        let prev = &input.prev_header;
        let header = &input.block.header;
        // Line 14: linkage and height.
        if header.prev_hash != prev.hash() {
            return Err(CertError::Chain(dcert_chain::ChainError::BrokenLink {
                claimed: header.prev_hash,
                actual: prev.hash(),
            }));
        }
        if header.height != prev.height + 1 {
            return Err(CertError::Chain(dcert_chain::ChainError::BadHeight {
                parent: prev.height,
                child: header.height,
            }));
        }
        // Line 15: consensus proof.
        self.engine.verify(header)?;
        // Line 16: transaction commitment and signatures (line 19).
        input.block.verify_tx_root()?;
        for tx in &input.block.txs {
            tx.verify()?;
        }
        // Line 17: authenticate the read set against H_{i-1}^s.
        input
            .state_proof
            .verify(&prev.state_root)
            .map_err(CertError::Proof)?;
        let mut read_map: BTreeMap<StateKey, Option<Vec<u8>>> = BTreeMap::new();
        for (key, value) in &input.reads {
            let claimed = value.as_ref().map(dcert_primitives::hash::hash_bytes);
            let proven = input
                .state_proof
                .pre_value_hash(key.as_hash())
                .map_err(|_| CertError::ReadSetMismatch)?;
            if claimed != proven {
                return Err(CertError::ReadSetMismatch);
            }
            read_map.insert(*key, value.clone());
        }
        // Lines 18–21: replay every transaction on the read set.
        let backend = ReadSetState::new(read_map);
        let calls: Vec<dcert_vm::Call> = input.block.txs.iter().map(|tx| tx.call.clone()).collect();
        let replay = self.executor.execute_block(&backend, &calls);
        if replay
            .statuses
            .iter()
            .any(|s| matches!(s, CallStatus::Reverted(VmError::ReadSetMiss)))
        {
            return Err(CertError::ReadSetMismatch);
        }
        // Lines 22–23: authenticate the write neighborhood and recompute
        // the post-state root.
        let writes: WriteSet = replay.writes.iter().map(|(k, v)| (*k, v.clone())).collect();
        let write_hashes = hash_writes(&writes);
        let reached = input
            .state_proof
            .updated_root(&write_hashes)
            .map_err(CertError::Proof)?;
        if reached != header.state_root {
            return Err(CertError::StateRootMismatch);
        }
        Ok(writes)
    }
}

/// Converts a write set into the `(path, value-hash)` pairs the SMT update
/// consumes.
pub fn hash_writes(writes: &WriteSet) -> Vec<(Hash, Option<Hash>)> {
    writes
        .iter()
        .map(|(k, v)| {
            (
                *k.as_hash(),
                v.as_ref().map(dcert_primitives::hash::hash_bytes),
            )
        })
        .collect()
}

impl Sealable for CertProgram {
    /// `sk_enc (32 bytes) ++ last_signed_height (8 bytes BE)`. The
    /// watermark travels inside the seal so an operator cannot roll the
    /// enclave back to a pre-signing state by restarting it.
    fn export_state(&self) -> Vec<u8> {
        match &self.keypair {
            None => Vec::new(),
            Some(kp) => {
                let mut out = kp.to_secret_bytes().to_vec();
                out.extend_from_slice(&self.last_signed_height.to_be_bytes());
                out
            }
        }
    }

    fn import_state(&mut self, state: &[u8]) -> Result<(), SgxError> {
        if state.is_empty() {
            self.keypair = None;
            self.last_signed_height = 0;
            return Ok(());
        }
        let (key, height) = match state.len() {
            // Legacy blobs sealed before the watermark existed.
            32 => (state, 0u64),
            40 => {
                let (key, be) = state.split_at(32);
                let mut buf = [0u8; 8];
                for (dst, src) in buf.iter_mut().zip(be) {
                    *dst = *src;
                }
                (key, u64::from_be_bytes(buf))
            }
            _ => return Err(SgxError::BadSeal),
        };
        let seed: [u8; 32] = key.try_into().map_err(|_| SgxError::BadSeal)?;
        self.keypair = Some(Keypair::from_seed(seed));
        self.last_signed_height = height;
        Ok(())
    }
}

impl TrustedApp for CertProgram {
    fn code_identity(&self) -> &[u8] {
        CODE_IDENTITY
    }

    fn call(&mut self, input: &[u8]) -> Vec<u8> {
        let response = match EcallRequest::decode_all(input) {
            Err(e) => EcallResponse::Rejected(format!("request codec: {e}")),
            Ok(request) => match self.handle(request) {
                Ok(resp) => resp,
                Err(e) => EcallResponse::Rejected(e.to_string()),
            },
        };
        response.to_encoded_bytes()
    }
}
