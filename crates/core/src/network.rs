//! An in-process gossip network for the certification workflow.
//!
//! Fig. 2 of the paper describes the runtime loop: (1) the CI synchronizes
//! blocks, (2) certifies each with the enclave, (3) **broadcasts the
//! certificate to the blockchain network**, and (4) superlight clients
//! validate from the published certificates. This module provides the
//! broadcast fabric — a topic-less gossip bus over crossbeam channels —
//! so miners, CIs, SPs, and clients can run as real concurrent actors
//! (see the `live_network` example and the `network_workflow` integration
//! test).
//!
//! The bus makes no delivery-order promises beyond per-publisher FIFO,
//! mirroring gossip semantics; consumers handle reordering (the
//! superlight client's chain-selection rule already does).
//!
//! Every delivery fabric implements the [`Transport`] trait, so the
//! certification pipeline's publisher stage can run over the lossless
//! [`Gossip`] bus in production paths and over the fault-injecting
//! [`SimNet`](crate::netsim::SimNet) in chaos tests without code changes.
//! [`CertArchive`] wraps any transport with a retained certificate store
//! so a CI can answer [`NetMessage::CertRequest`] resyncs.

use std::collections::BTreeMap;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use dcert_chain::{Block, BlockHeader};
use dcert_primitives::codec::{Decode, Encode};
use dcert_primitives::hash::Hash;
use dcert_primitives::keys::PublicKey;
use dcert_store::{Record, Store, StoreError, StreamId};

use crate::cert::Certificate;
use crate::error::CertError;
use crate::persist::{RecoverError, ARCHIVE_PRUNED_KEY};

/// A message on the gossip network.
#[derive(Debug, Clone, PartialEq)]
pub enum NetMessage {
    /// A freshly mined block (miner → everyone).
    Block(Block),
    /// A block certificate (CI → everyone); carries the header so
    /// superlight clients need nothing else.
    BlockCert {
        /// The certified header.
        header: BlockHeader,
        /// Its certificate.
        cert: Certificate,
    },
    /// An index certificate (CI → everyone).
    IndexCert {
        /// The certified header.
        header: BlockHeader,
        /// The registered index name.
        index: String,
        /// The certified index digest.
        digest: Hash,
        /// Its certificate.
        cert: Certificate,
    },
    /// A client that detected a certificate gap asks any CI (or archive)
    /// to republish the certificates for heights in `from..=to`.
    CertRequest {
        /// First missed height.
        from: u64,
        /// Last missed height (inclusive).
        to: u64,
    },
    /// Orderly shutdown marker (simulation control, not a protocol item).
    Shutdown,
    /// An opaque serving-protocol frame (client request, response, or
    /// typed refusal). The gossip fabric carries it without inspecting
    /// it; `dcert-serve::wire::ServeWire` owns the payload codec.
    Serve {
        /// Canonical `ServeWire` bytes.
        payload: Vec<u8>,
    },
}

impl NetMessage {
    /// The chain height this message is about, if any (certificates and
    /// blocks carry one; control messages do not).
    pub fn height(&self) -> Option<u64> {
        match self {
            NetMessage::Block(block) => Some(block.header.height),
            NetMessage::BlockCert { header, .. } | NetMessage::IndexCert { header, .. } => {
                Some(header.height)
            }
            NetMessage::CertRequest { .. } | NetMessage::Shutdown | NetMessage::Serve { .. } => {
                None
            }
        }
    }
}

/// A delivery fabric for [`NetMessage`]s: the seam between the
/// certification pipeline's publisher stage and whatever network carries
/// its certificates.
///
/// Implementations: [`Gossip`] (lossless, ordered, in-process) and
/// [`SimNet`](crate::netsim::SimNet) (seeded fault injection). The
/// delivery count returned by [`Transport::publish`] is the publisher's
/// ack signal — retry logic treats `0` (or fewer than its configured
/// minimum) as a failed broadcast.
pub trait Transport: Send + Sync {
    /// Joins the network, returning this node's inbound message stream.
    fn join(&self) -> Receiver<NetMessage>;

    /// Broadcasts a message; returns the number of subscribers it was
    /// delivered (or scheduled for delivery) to.
    fn publish(&self, message: NetMessage) -> usize;

    /// Number of subscribers believed live.
    fn subscriber_count(&self) -> usize;
}

/// A broadcast gossip bus: every published message reaches every
/// subscriber (including ones that joined later only for future messages).
#[derive(Default)]
pub struct Gossip {
    subscribers: Mutex<Vec<Sender<NetMessage>>>,
}

impl std::fmt::Debug for Gossip {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gossip")
            .field("subscribers", &self.subscribers.lock().len())
            .finish()
    }
}

impl Gossip {
    /// Creates an empty bus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Joins the network, returning this node's inbound message stream.
    pub fn join(&self) -> Receiver<NetMessage> {
        let (tx, rx) = unbounded();
        self.subscribers.lock().push(tx);
        rx
    }

    /// Broadcasts a message to every current subscriber, pruning
    /// disconnected subscribers (dropped receivers) as it goes, and
    /// returns how many live subscribers received it — the ack signal
    /// publisher retry logic keys off.
    pub fn publish(&self, message: NetMessage) -> usize {
        let mut subs = self.subscribers.lock();
        subs.retain(|tx| tx.send(message.clone()).is_ok());
        subs.len()
    }

    /// Number of live subscribers as of the last publish (senders cannot
    /// observe a dropped receiver without sending, so subscribers that
    /// disconnected since then are counted until the next publish prunes
    /// them).
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.lock().len()
    }
}

impl Transport for Gossip {
    fn join(&self) -> Receiver<NetMessage> {
        Gossip::join(self)
    }

    fn publish(&self, message: NetMessage) -> usize {
        Gossip::publish(self, message)
    }

    fn subscriber_count(&self) -> usize {
        Gossip::subscriber_count(self)
    }
}

/// A retained certificate store wrapped around a [`Transport`].
///
/// The pipeline's publisher broadcasts through the archive, which records
/// every certificate by height before forwarding. A CI-side actor can then
/// answer [`NetMessage::CertRequest`]s by calling
/// [`CertArchive::republish`] — the resync path that lets clients recover
/// from dropped or partitioned deliveries instead of silently staying
/// behind.
pub struct CertArchive<T: Transport + ?Sized> {
    inner: std::sync::Arc<T>,
    /// Certificates by height, in publish order within a height (a
    /// hierarchical job publishes a block certificate then its index
    /// certificates for the same height).
    retained: Mutex<BTreeMap<u64, Vec<NetMessage>>>,
    /// Durable backend, when attached: every newly retained certificate
    /// is appended and synced before `publish` returns, so a restarted CI
    /// can keep answering resyncs for pre-crash history.
    store: Option<Mutex<Box<dyn Store>>>,
    /// First storage failure, if any. Publishing keeps forwarding on the
    /// live network after a disk fault, but the archive stops claiming
    /// durability — callers check [`CertArchive::store_error`].
    store_error: Mutex<Option<StoreError>>,
}

impl<T: Transport + ?Sized> std::fmt::Debug for CertArchive<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CertArchive")
            .field("retained", &self.retained_len())
            .field("tip_height", &self.tip_height())
            .field("durable", &self.store.is_some())
            .field("store_error", &self.store_error.lock())
            .finish_non_exhaustive()
    }
}

impl<T: Transport + ?Sized> CertArchive<T> {
    /// Wraps `inner` with an in-memory retained store (no durability).
    pub fn new(inner: std::sync::Arc<T>) -> Self {
        CertArchive {
            inner,
            retained: Mutex::new(BTreeMap::new()),
            store: None,
            store_error: Mutex::new(None),
        }
    }

    /// Wraps `inner` with a durable retained store, recovering whatever
    /// certified history `store` already holds.
    ///
    /// Every intact recovered record is decoded and its certificate
    /// **re-verified** against the trust anchors (`ias_key`,
    /// `measurement`) before it is served to resync requests — a store
    /// whose surviving bytes fail verification is refused, never served.
    /// Records below a recovered prune watermark are dropped (they are
    /// redo leftovers from a crash mid-prune).
    ///
    /// # Errors
    ///
    /// [`RecoverError`] when a recovered record fails to decode or its
    /// certificate fails re-verification.
    pub fn with_store(
        inner: std::sync::Arc<T>,
        store: Box<dyn Store>,
        ias_key: &PublicKey,
        measurement: &Hash,
    ) -> Result<Self, RecoverError> {
        let mut retained: BTreeMap<u64, Vec<NetMessage>> = BTreeMap::new();
        let pruned_below = match store.head(ARCHIVE_PRUNED_KEY) {
            Some(bytes) => u64::decode_all(&bytes)?,
            None => 0,
        };
        for record in store.records() {
            if record.stream != StreamId::Cert || record.height < pruned_below {
                continue;
            }
            let message = NetMessage::decode_all(&record.body)?;
            match &message {
                NetMessage::BlockCert { header, cert } => {
                    cert.verify(ias_key, measurement, &header.hash())?;
                }
                NetMessage::IndexCert {
                    header,
                    digest,
                    cert,
                    ..
                } => {
                    let expected = Certificate::index_digest(&header.hash(), digest);
                    cert.verify(ias_key, measurement, &expected)?;
                }
                // Only certificate messages are ever persisted; anything
                // else in the cert stream is not certified history.
                _ => return Err(RecoverError::Cert(CertError::DigestMismatch)),
            }
            let entry = retained.entry(record.height).or_default();
            if !entry.contains(&message) {
                entry.push(message);
            }
        }
        Ok(CertArchive {
            inner,
            retained: Mutex::new(retained),
            store: Some(Mutex::new(store)),
            store_error: Mutex::new(None),
        })
    }

    /// The first storage failure observed by this archive, if any. `None`
    /// means every retained certificate is durable (or no store is
    /// attached).
    pub fn store_error(&self) -> Option<StoreError> {
        self.store_error.lock().clone()
    }

    /// The attached store's durable height (0 without a store).
    pub fn durable_height(&self) -> u64 {
        self.store
            .as_ref()
            .map_or(0, |store| store.lock().durable_height())
    }

    /// Detaches and returns the durable store (orderly shutdown: the
    /// caller can hand it to a successor archive via
    /// [`CertArchive::with_store`]).
    pub fn into_store(self) -> Option<Box<dyn Store>> {
        self.store.map(Mutex::into_inner)
    }

    /// Appends and syncs one newly retained certificate message; a
    /// failure poisons the archive's durability claim instead of
    /// panicking or blocking the live broadcast.
    fn persist(&self, height: u64, message: &NetMessage) {
        let Some(store) = &self.store else {
            return;
        };
        let mut guard = store.lock();
        let record = Record {
            height,
            stream: StreamId::Cert,
            body: message.to_encoded_bytes(),
        };
        let result = guard.append(&record).and_then(|()| guard.sync());
        if let Err(e) = result {
            let mut poison = self.store_error.lock();
            if poison.is_none() {
                *poison = Some(e);
            }
        }
    }

    /// The highest height with a retained certificate.
    pub fn tip_height(&self) -> Option<u64> {
        self.retained.lock().keys().next_back().copied()
    }

    /// Number of retained certificate messages.
    pub fn retained_len(&self) -> usize {
        self.retained.lock().values().map(Vec::len).sum()
    }

    /// The retained certificate messages for heights in `from..=to`, in
    /// height order.
    pub fn messages_in(&self, from: u64, to: u64) -> Vec<NetMessage> {
        self.retained
            .lock()
            .range(from..=to)
            .flat_map(|(_, msgs)| msgs.iter().cloned())
            .collect()
    }

    /// Re-broadcasts the retained certificates for `from..=to` through the
    /// underlying transport (the resync answer to a
    /// [`NetMessage::CertRequest`]). Returns the number of messages
    /// republished.
    pub fn republish(&self, from: u64, to: u64) -> usize {
        let messages = self.messages_in(from, to);
        let count = messages.len();
        for message in messages {
            self.inner.publish(message);
        }
        count
    }

    /// Drops retained certificates below `height` (bounded memory for
    /// long-running CIs; clients further behind than the retention
    /// horizon re-bootstrap from a checkpoint instead).
    ///
    /// With a store attached the watermark is recorded in the head region
    /// *before* segment files are unlinked, so a crash mid-prune recovers
    /// to either the pre-prune or post-prune archive — never a gap.
    pub fn prune_below(&self, height: u64) {
        let mut retained = self.retained.lock();
        *retained = retained.split_off(&height);
        drop(retained);
        if let Some(store) = &self.store {
            let mut guard = store.lock();
            // Sync the watermark before any segment is unlinked: losing
            // it (even on an orderly close — the backend only syncs a
            // prune that actually drops a segment) would resurrect
            // pruned certificates on the next recovery.
            let result = guard
                .put_head(ARCHIVE_PRUNED_KEY, height.to_encoded_bytes())
                .and_then(|()| guard.sync())
                .and_then(|()| guard.prune_below(height));
            if let Err(e) = result {
                let mut poison = self.store_error.lock();
                if poison.is_none() {
                    *poison = Some(e);
                }
            }
        }
    }
}

impl<T: Transport + ?Sized> Transport for CertArchive<T> {
    fn join(&self) -> Receiver<NetMessage> {
        self.inner.join()
    }

    fn publish(&self, message: NetMessage) -> usize {
        if let (Some(height), NetMessage::BlockCert { .. } | NetMessage::IndexCert { .. }) =
            (message.height(), &message)
        {
            let mut retained = self.retained.lock();
            let entry = retained.entry(height).or_default();
            // Retention is idempotent: the publisher's retry loop re-sends
            // the same message, which must not inflate the archive (or the
            // durable log).
            if !entry.contains(&message) {
                entry.push(message.clone());
                drop(retained);
                self.persist(height, &message);
            }
        }
        self.inner.publish(message)
    }

    fn subscriber_count(&self) -> usize {
        self.inner.subscriber_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcert_chain::consensus::ConsensusProof;
    use dcert_primitives::hash::Address;
    use std::sync::Arc;

    fn header(height: u64) -> BlockHeader {
        BlockHeader {
            height,
            prev_hash: Hash::ZERO,
            state_root: Hash::ZERO,
            tx_root: Hash::ZERO,
            timestamp: height,
            miner: Address::default(),
            consensus: ConsensusProof::Pow {
                difficulty_bits: 0,
                nonce: 0,
            },
        }
    }

    #[test]
    fn every_subscriber_sees_every_message() {
        let bus = Gossip::new();
        let rx1 = bus.join();
        let rx2 = bus.join();
        bus.publish(NetMessage::Block(Block {
            header: header(1),
            txs: Vec::new(),
        }));
        bus.publish(NetMessage::Shutdown);
        for rx in [rx1, rx2] {
            assert!(matches!(rx.recv().unwrap(), NetMessage::Block(_)));
            assert!(matches!(rx.recv().unwrap(), NetMessage::Shutdown));
        }
    }

    #[test]
    fn late_joiners_get_only_future_messages() {
        let bus = Gossip::new();
        bus.publish(NetMessage::Shutdown); // no one listening
        let rx = bus.join();
        bus.publish(NetMessage::Block(Block {
            header: header(2),
            txs: Vec::new(),
        }));
        assert!(matches!(rx.recv().unwrap(), NetMessage::Block(b) if b.header.height == 2));
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn dropped_subscribers_are_pruned_and_delivery_counted() {
        let bus = Gossip::new();
        let rx = bus.join();
        drop(rx);
        let _rx2 = bus.join();
        assert_eq!(bus.subscriber_count(), 2);
        // The dead subscriber is pruned and does not count as a delivery.
        assert_eq!(bus.publish(NetMessage::Shutdown), 1);
        assert_eq!(bus.subscriber_count(), 1);
    }

    #[test]
    fn publish_to_empty_bus_reports_zero_deliveries() {
        let bus = Gossip::new();
        assert_eq!(bus.publish(NetMessage::Shutdown), 0);
        let rx = bus.join();
        drop(rx);
        assert_eq!(bus.publish(NetMessage::Shutdown), 0);
        assert_eq!(bus.subscriber_count(), 0);
    }

    #[test]
    fn per_publisher_order_is_fifo() {
        let bus = Gossip::new();
        let rx = bus.join();
        for height in 1..=10u64 {
            bus.publish(NetMessage::Block(Block {
                header: header(height),
                txs: Vec::new(),
            }));
        }
        for height in 1..=10u64 {
            match rx.recv().unwrap() {
                NetMessage::Block(b) => assert_eq!(b.header.height, height),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    fn dummy_cert(height: u64) -> Certificate {
        use dcert_primitives::keys::Keypair;
        let kp = Keypair::from_seed([height as u8; 32]);
        Certificate {
            pk_enc: kp.public(),
            report: dcert_sgx::AttestationReport {
                measurement: Hash::ZERO,
                report_data: Hash::ZERO,
                signature: kp.sign(b"r"),
            },
            digest: header(height).hash(),
            signature: kp.sign(b"x"),
        }
    }

    #[test]
    fn archive_retains_and_republishes_certificates() {
        let bus = Arc::new(Gossip::new());
        let archive = CertArchive::new(bus.clone());
        let rx = Transport::join(&archive);
        for height in 1..=5u64 {
            archive.publish(NetMessage::BlockCert {
                header: header(height),
                cert: dummy_cert(height),
            });
        }
        // Control messages are forwarded but not retained.
        archive.publish(NetMessage::Shutdown);
        assert_eq!(archive.retained_len(), 5);
        assert_eq!(archive.tip_height(), Some(5));
        for _ in 0..6 {
            rx.recv().unwrap();
        }
        // A resync re-serves exactly the requested range.
        assert_eq!(archive.republish(2, 4), 3);
        for height in 2..=4u64 {
            match rx.recv().unwrap() {
                NetMessage::BlockCert { header: h, .. } => assert_eq!(h.height, height),
                other => panic!("unexpected {other:?}"),
            }
        }
        archive.prune_below(4);
        assert_eq!(archive.messages_in(0, u64::MAX).len(), 2);
    }

    /// A miniature certificate authority issuing *verifiable* certs, for
    /// the recovery paths (which re-verify everything they replay).
    struct RealCa {
        ias: dcert_sgx::AttestationService,
        enclave_key: dcert_primitives::keys::Keypair,
        measurement: Hash,
    }

    impl RealCa {
        fn new() -> Self {
            use dcert_primitives::keys::Keypair;
            let mut ias = dcert_sgx::AttestationService::with_seed([1; 32]);
            let platform = Keypair::from_seed([2; 32]);
            ias.register_platform(platform.public());
            RealCa {
                ias,
                enclave_key: Keypair::from_seed([3; 32]),
                measurement: dcert_primitives::hash::hash_bytes(b"mini-program"),
            }
        }

        fn certify(&self, digest: Hash) -> Certificate {
            use dcert_primitives::keys::Keypair;
            let platform = Keypair::from_seed([2; 32]);
            let quote = dcert_sgx::Quote::sign(
                &platform,
                self.measurement,
                Certificate::key_binding(&self.enclave_key.public()),
            );
            Certificate {
                pk_enc: self.enclave_key.public(),
                report: self.ias.attest(&quote).unwrap(),
                digest,
                signature: self.enclave_key.sign(digest.as_bytes()),
            }
        }

        fn block_cert(&self, height: u64) -> NetMessage {
            let h = header(height);
            let cert = self.certify(h.hash());
            NetMessage::BlockCert { header: h, cert }
        }
    }

    #[test]
    fn archive_with_store_survives_handoff() {
        use dcert_store::MemStore;
        let ca = RealCa::new();
        let bus = Arc::new(Gossip::new());
        let archive = CertArchive::with_store(
            bus.clone(),
            Box::new(MemStore::new()),
            &ca.ias.public_key(),
            &ca.measurement,
        )
        .unwrap();
        for height in 1..=5u64 {
            archive.publish(ca.block_cert(height));
        }
        // Re-publishing (retry path) must not duplicate durable records.
        archive.publish(ca.block_cert(3));
        assert_eq!(archive.store_error(), None);
        assert_eq!(archive.durable_height(), 5);
        let expected = archive.messages_in(0, u64::MAX);

        let store = archive.into_store().unwrap();
        assert_eq!(store.records().len(), 5);
        let recovered =
            CertArchive::with_store(bus, store, &ca.ias.public_key(), &ca.measurement).unwrap();
        assert_eq!(recovered.messages_in(0, u64::MAX), expected);
        assert_eq!(recovered.tip_height(), Some(5));
    }

    #[test]
    fn archive_recovery_refuses_forged_records() {
        use dcert_primitives::codec::Encode;
        use dcert_store::{MemStore, Record, Store, StreamId};
        let ca = RealCa::new();
        let mut store = MemStore::new();
        let mut message = ca.block_cert(1);
        if let NetMessage::BlockCert { cert, .. } = &mut message {
            cert.signature = ca.certify(Hash::ZERO).signature;
        }
        store
            .append(&Record {
                height: 1,
                stream: StreamId::Cert,
                body: message.to_encoded_bytes(),
            })
            .unwrap();
        store.sync().unwrap();
        let bus = Arc::new(Gossip::new());
        let err =
            CertArchive::with_store(bus, Box::new(store), &ca.ias.public_key(), &ca.measurement)
                .unwrap_err();
        assert!(matches!(err, crate::persist::RecoverError::Cert(_)));
    }

    #[test]
    fn archive_recovery_refuses_undecodable_records() {
        use dcert_store::{MemStore, Record, Store, StreamId};
        let ca = RealCa::new();
        let mut store = MemStore::new();
        store
            .append(&Record {
                height: 1,
                stream: StreamId::Cert,
                body: vec![0xFF; 10],
            })
            .unwrap();
        store.sync().unwrap();
        let bus = Arc::new(Gossip::new());
        let err =
            CertArchive::with_store(bus, Box::new(store), &ca.ias.public_key(), &ca.measurement)
                .unwrap_err();
        assert!(matches!(err, crate::persist::RecoverError::Codec(_)));
    }

    #[test]
    fn archive_prune_watermark_filters_recovery() {
        use dcert_store::MemStore;
        let ca = RealCa::new();
        let bus = Arc::new(Gossip::new());
        let archive = CertArchive::with_store(
            bus.clone(),
            Box::new(MemStore::new()),
            &ca.ias.public_key(),
            &ca.measurement,
        )
        .unwrap();
        for height in 1..=5u64 {
            archive.publish(ca.block_cert(height));
        }
        archive.prune_below(4);
        assert_eq!(archive.store_error(), None);
        let store = archive.into_store().unwrap();
        let recovered =
            CertArchive::with_store(bus, store, &ca.ias.public_key(), &ca.measurement).unwrap();
        let heights: Vec<u64> = recovered
            .messages_in(0, u64::MAX)
            .iter()
            .filter_map(NetMessage::height)
            .collect();
        assert_eq!(heights, vec![4, 5]);
    }
}
