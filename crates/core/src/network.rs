//! An in-process gossip network for the certification workflow.
//!
//! Fig. 2 of the paper describes the runtime loop: (1) the CI synchronizes
//! blocks, (2) certifies each with the enclave, (3) **broadcasts the
//! certificate to the blockchain network**, and (4) superlight clients
//! validate from the published certificates. This module provides the
//! broadcast fabric — a topic-less gossip bus over crossbeam channels —
//! so miners, CIs, SPs, and clients can run as real concurrent actors
//! (see the `live_network` example and the `network_workflow` integration
//! test).
//!
//! The bus makes no delivery-order promises beyond per-publisher FIFO,
//! mirroring gossip semantics; consumers handle reordering (the
//! superlight client's chain-selection rule already does).

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use dcert_chain::{Block, BlockHeader};
use dcert_primitives::hash::Hash;

use crate::cert::Certificate;

/// A message on the gossip network.
#[derive(Debug, Clone)]
pub enum NetMessage {
    /// A freshly mined block (miner → everyone).
    Block(Block),
    /// A block certificate (CI → everyone); carries the header so
    /// superlight clients need nothing else.
    BlockCert {
        /// The certified header.
        header: BlockHeader,
        /// Its certificate.
        cert: Certificate,
    },
    /// An index certificate (CI → everyone).
    IndexCert {
        /// The certified header.
        header: BlockHeader,
        /// The registered index name.
        index: String,
        /// The certified index digest.
        digest: Hash,
        /// Its certificate.
        cert: Certificate,
    },
    /// Orderly shutdown marker (simulation control, not a protocol item).
    Shutdown,
}

/// A broadcast gossip bus: every published message reaches every
/// subscriber (including ones that joined later only for future messages).
#[derive(Default)]
pub struct Gossip {
    subscribers: Mutex<Vec<Sender<NetMessage>>>,
}

impl std::fmt::Debug for Gossip {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gossip")
            .field("subscribers", &self.subscribers.lock().len())
            .finish()
    }
}

impl Gossip {
    /// Creates an empty bus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Joins the network, returning this node's inbound message stream.
    pub fn join(&self) -> Receiver<NetMessage> {
        let (tx, rx) = unbounded();
        self.subscribers.lock().push(tx);
        rx
    }

    /// Broadcasts a message to every current subscriber. Disconnected
    /// subscribers (dropped receivers) are pruned.
    pub fn publish(&self, message: NetMessage) {
        let mut subs = self.subscribers.lock();
        subs.retain(|tx| tx.send(message.clone()).is_ok());
    }

    /// Number of live subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcert_chain::consensus::ConsensusProof;
    use dcert_primitives::hash::Address;

    fn header(height: u64) -> BlockHeader {
        BlockHeader {
            height,
            prev_hash: Hash::ZERO,
            state_root: Hash::ZERO,
            tx_root: Hash::ZERO,
            timestamp: height,
            miner: Address::default(),
            consensus: ConsensusProof::Pow {
                difficulty_bits: 0,
                nonce: 0,
            },
        }
    }

    #[test]
    fn every_subscriber_sees_every_message() {
        let bus = Gossip::new();
        let rx1 = bus.join();
        let rx2 = bus.join();
        bus.publish(NetMessage::Block(Block {
            header: header(1),
            txs: Vec::new(),
        }));
        bus.publish(NetMessage::Shutdown);
        for rx in [rx1, rx2] {
            assert!(matches!(rx.recv().unwrap(), NetMessage::Block(_)));
            assert!(matches!(rx.recv().unwrap(), NetMessage::Shutdown));
        }
    }

    #[test]
    fn late_joiners_get_only_future_messages() {
        let bus = Gossip::new();
        bus.publish(NetMessage::Shutdown); // no one listening
        let rx = bus.join();
        bus.publish(NetMessage::Block(Block {
            header: header(2),
            txs: Vec::new(),
        }));
        assert!(matches!(rx.recv().unwrap(), NetMessage::Block(b) if b.header.height == 2));
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn dropped_subscribers_are_pruned() {
        let bus = Gossip::new();
        let rx = bus.join();
        drop(rx);
        let _rx2 = bus.join();
        assert_eq!(bus.subscriber_count(), 2);
        bus.publish(NetMessage::Shutdown);
        assert_eq!(bus.subscriber_count(), 1);
    }

    #[test]
    fn per_publisher_order_is_fifo() {
        let bus = Gossip::new();
        let rx = bus.join();
        for height in 1..=10u64 {
            bus.publish(NetMessage::Block(Block {
                header: header(height),
                txs: Vec::new(),
            }));
        }
        for height in 1..=10u64 {
            match rx.recv().unwrap() {
                NetMessage::Block(b) => assert_eq!(b.header.height, height),
                other => panic!("unexpected {other:?}"),
            }
        }
    }
}
