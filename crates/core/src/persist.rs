//! Crash-safe persistence adapters for the certification workflow.
//!
//! This module is the seam between `dcert-core`'s in-memory actors and
//! `dcert-store`'s durable backends:
//!
//! - [`CertArchive`](crate::network::CertArchive) persists every retained
//!   certificate message through a [`Store`] (see
//!   [`CertArchive::with_store`](crate::network::CertArchive::with_store)),
//!   so a restarted CI can keep answering resync requests for history it
//!   certified before the crash.
//! - [`SuperlightClient`](crate::superlight::SuperlightClient) checkpoints
//!   its constant-size state (latest header + certificate, tracked index
//!   certificates) into the store's head region and **re-validates all of
//!   it** on resume — recovered bytes are never trusted, only certificates
//!   that still verify under the client's trust anchors are served.
//!
//! The trust model matches the rest of the system: disk contents are
//! untrusted input. Torn or corrupted storage surfaces as a typed
//! [`RecoverError`], never a panic, and never silently-served state.

use dcert_primitives::error::CodecError;
use dcert_store::StoreError;

use crate::error::CertError;

/// Head-region key under which a [`CertArchive`](crate::network::CertArchive)
/// records its prune watermark.
pub const ARCHIVE_PRUNED_KEY: &str = "archive.pruned_below";

/// Head-region key for the superlight client's latest `(header, cert)`.
pub const SUPERLIGHT_LATEST_KEY: &str = "superlight.latest";

/// Head-region key prefix for tracked index certificates; the index name
/// follows the prefix.
pub const SUPERLIGHT_INDEX_PREFIX: &str = "superlight.index.";

/// Head-region key for the highest announced height (gap-detection state).
pub const SUPERLIGHT_SEEN_KEY: &str = "superlight.highest_seen";

/// Why recovering persisted certification state failed.
///
/// Recovery refuses rather than degrades: a caller holding this error has
/// a store whose surviving bytes could not be proven equivalent to
/// certified history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoverError {
    /// The storage layer itself failed (I/O, torn durable data, poisoned
    /// writer).
    Store(StoreError),
    /// A recovered record or head entry did not decode as the expected
    /// message type.
    Codec(CodecError),
    /// A recovered certificate no longer verifies under the trust anchors
    /// — the store served bytes that are not certified history.
    Cert(CertError),
}

impl std::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoverError::Store(e) => write!(f, "store failure during recovery: {e}"),
            RecoverError::Codec(e) => write!(f, "recovered record failed to decode: {e}"),
            RecoverError::Cert(e) => write!(f, "recovered certificate failed re-verification: {e}"),
        }
    }
}

impl std::error::Error for RecoverError {}

impl From<StoreError> for RecoverError {
    fn from(e: StoreError) -> Self {
        RecoverError::Store(e)
    }
}

impl From<CodecError> for RecoverError {
    fn from(e: CodecError) -> Self {
        RecoverError::Codec(e)
    }
}

impl From<CertError> for RecoverError {
    fn from(e: CertError) -> Self {
        RecoverError::Cert(e)
    }
}
