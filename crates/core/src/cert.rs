//! The certificate type: `cert = ⟨pk_enc, rep, dig, sig⟩`.

use dcert_primitives::codec::{Decode, Encode, Reader};
use dcert_primitives::error::CodecError;
use dcert_primitives::hash::{hash_bytes, hash_pair, Hash};
use dcert_primitives::keys::{PublicKey, Signature};
use dcert_sgx::AttestationReport;

use crate::error::CertError;

/// A DCert certificate (Section 3.3 of the paper):
///
/// - `pk_enc` — the enclave-generated public key,
/// - `rep` — the IAS attestation report binding `pk_enc` to the enclave
///   measurement,
/// - `dig` — the certified digest: `H(hdr)` for block certificates,
///   `H(H(hdr) ‖ H_idx)` for augmented/hierarchical index certificates,
/// - `sig` — the enclave's signature over `dig` with `sk_enc`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// The enclave public key `pk_enc`.
    pub pk_enc: PublicKey,
    /// The attestation report `rep`.
    pub report: AttestationReport,
    /// The certified digest `dig`.
    pub digest: Hash,
    /// The enclave signature `sig` over `dig`.
    pub signature: Signature,
}

impl Certificate {
    /// The digest form used by index certificates:
    /// `H(header_digest ‖ index_digest)`.
    pub fn index_digest(header_digest: &Hash, idx_digest: &Hash) -> Hash {
        hash_pair(header_digest, idx_digest)
    }

    /// The report-data binding of an enclave key: `H(pk_enc)`.
    pub fn key_binding(pk_enc: &PublicKey) -> Hash {
        hash_bytes(pk_enc.to_array())
    }

    /// Full certificate verification against an expected digest — the
    /// shared logic of `cert_verify_t` (Algorithm 2, lines 25–32) and the
    /// superlight client (Algorithm 3, lines 2–7):
    ///
    /// 1. `rep` is signed by the IAS root,
    /// 2. `rep`'s measurement equals the certificate program's,
    /// 3. `rep` binds `pk_enc`,
    /// 4. `sig` verifies over `dig` under `pk_enc`,
    /// 5. `dig` equals `expected_digest`.
    ///
    /// # Errors
    ///
    /// One [`CertError`] variant per failed step, in the order above.
    pub fn verify(
        &self,
        ias_key: &PublicKey,
        expected_measurement: &Hash,
        expected_digest: &Hash,
    ) -> Result<(), CertError> {
        self.verify_trust(ias_key, expected_measurement)?;
        self.verify_digest(expected_digest)
    }

    /// Steps 1–3 of [`Certificate::verify`]: the attestation part, which
    /// clients may cache per enclave key ("check an attestation report
    /// only once", Section 4.3).
    ///
    /// # Errors
    ///
    /// See [`Certificate::verify`].
    pub fn verify_trust(
        &self,
        ias_key: &PublicKey,
        expected_measurement: &Hash,
    ) -> Result<(), CertError> {
        self.report.verify(ias_key)?;
        if self.report.measurement != *expected_measurement {
            return Err(CertError::WrongMeasurement);
        }
        if self.report.report_data != Self::key_binding(&self.pk_enc) {
            return Err(CertError::KeyBindingMismatch);
        }
        Ok(())
    }

    /// Steps 4–5 of [`Certificate::verify`]: the per-certificate part.
    ///
    /// # Errors
    ///
    /// See [`Certificate::verify`].
    pub fn verify_digest(&self, expected_digest: &Hash) -> Result<(), CertError> {
        self.pk_enc
            .verify(self.digest.as_bytes(), &self.signature)
            .map_err(|_| CertError::BadSignature)?;
        if self.digest != *expected_digest {
            return Err(CertError::DigestMismatch);
        }
        Ok(())
    }

    /// Serialized size in bytes — the constant part of superlight-client
    /// storage (Fig. 7a).
    pub fn size_bytes(&self) -> usize {
        self.encoded_len()
    }
}

impl Encode for Certificate {
    fn encode(&self, out: &mut Vec<u8>) {
        self.pk_enc.encode(out);
        self.report.encode(out);
        self.digest.encode(out);
        self.signature.encode(out);
    }
}

impl Decode for Certificate {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Certificate {
            pk_enc: PublicKey::decode(r)?,
            report: AttestationReport::decode(r)?,
            digest: Hash::decode(r)?,
            signature: Signature::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcert_primitives::keys::Keypair;
    use dcert_sgx::{AttestationService, Quote};

    /// Hand-assembles a valid certificate outside the enclave machinery —
    /// unit-testing the verification logic in isolation.
    fn make_cert(digest: Hash) -> (Certificate, PublicKey, Hash) {
        let mut ias = AttestationService::with_seed([1; 32]);
        let platform = Keypair::from_seed([2; 32]);
        ias.register_platform(platform.public());
        let enclave_key = Keypair::from_seed([3; 32]);
        let measurement = hash_bytes(b"cert-program");
        let quote = Quote::sign(
            &platform,
            measurement,
            Certificate::key_binding(&enclave_key.public()),
        );
        let report = ias.attest(&quote).unwrap();
        let cert = Certificate {
            pk_enc: enclave_key.public(),
            report,
            digest,
            signature: enclave_key.sign(digest.as_bytes()),
        };
        (cert, ias.public_key(), measurement)
    }

    #[test]
    fn valid_certificate_verifies() {
        let digest = hash_bytes(b"hdr");
        let (cert, ias_key, measurement) = make_cert(digest);
        cert.verify(&ias_key, &measurement, &digest).unwrap();
    }

    #[test]
    fn wrong_measurement_rejected() {
        let digest = hash_bytes(b"hdr");
        let (cert, ias_key, _) = make_cert(digest);
        assert_eq!(
            cert.verify(&ias_key, &hash_bytes(b"other-program"), &digest),
            Err(CertError::WrongMeasurement)
        );
    }

    #[test]
    fn wrong_ias_key_rejected() {
        let digest = hash_bytes(b"hdr");
        let (cert, _, measurement) = make_cert(digest);
        let wrong_ias = Keypair::from_seed([9; 32]).public();
        assert!(matches!(
            cert.verify(&wrong_ias, &measurement, &digest),
            Err(CertError::Attestation(_))
        ));
    }

    #[test]
    fn key_substitution_rejected() {
        // Attacker swaps pk_enc for their own key and re-signs the digest:
        // the report no longer binds the key.
        let digest = hash_bytes(b"hdr");
        let (mut cert, ias_key, measurement) = make_cert(digest);
        let attacker = Keypair::from_seed([66; 32]);
        cert.pk_enc = attacker.public();
        cert.signature = attacker.sign(digest.as_bytes());
        assert_eq!(
            cert.verify(&ias_key, &measurement, &digest),
            Err(CertError::KeyBindingMismatch)
        );
    }

    #[test]
    fn forged_signature_rejected() {
        let digest = hash_bytes(b"hdr");
        let (mut cert, ias_key, measurement) = make_cert(digest);
        cert.digest = hash_bytes(b"forged-hdr");
        assert_eq!(
            cert.verify(&ias_key, &measurement, &hash_bytes(b"forged-hdr")),
            Err(CertError::BadSignature)
        );
    }

    #[test]
    fn digest_mismatch_rejected() {
        let digest = hash_bytes(b"hdr");
        let (cert, ias_key, measurement) = make_cert(digest);
        assert_eq!(
            cert.verify(&ias_key, &measurement, &hash_bytes(b"different-hdr")),
            Err(CertError::DigestMismatch)
        );
    }

    #[test]
    fn codec_round_trip() {
        let (cert, _, _) = make_cert(hash_bytes(b"hdr"));
        let decoded = Certificate::decode_all(&cert.to_encoded_bytes()).unwrap();
        assert_eq!(decoded, cert);
    }

    #[test]
    fn index_digest_is_order_sensitive() {
        let a = hash_bytes(b"a");
        let b = hash_bytes(b"b");
        assert_ne!(
            Certificate::index_digest(&a, &b),
            Certificate::index_digest(&b, &a)
        );
    }
}
