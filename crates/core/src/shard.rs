//! The sharded certification fleet: parallel range certification with
//! recursive certificate aggregation.
//!
//! One enclave's sealing rate is the throughput ceiling of the sequential
//! CI. This module partitions the chain into contiguous height ranges
//! ([`ShardPlan`]), certifies every range in parallel on an independent
//! shard enclave (each producing [`RangeCert`]s via the `RangeSigGen`
//! ECall), and folds the ranges through an aggregator enclave
//! (`FoldRanges`) into the per-height [`Certificate`] stream clients
//! already expect.
//!
//! **Byte identity.** Block certificates sign raw header digests with a
//! deterministic (ed25519) key, and the previous certificate is validated
//! but never signed over — so an aggregator booted with the sequential
//! CI's platform/signing seeds emits certificates byte-identical to
//! sequential recursion at every height, for every shard count. Shard
//! enclaves boot with *derived* seeds: their keys never appear in client
//! artifacts, and a shard key cannot forge a final certificate.
//!
//! **Reorgs.** The fleet compares the offered chain against what it last
//! certified, keeps every range certificate entirely below the fork
//! point, and re-certifies only the affected suffix (with
//! generation-bumped shard seeds, since re-signing a height requires a
//! fresh shard identity). The old aggregator's sealed height watermark
//! makes it refuse stale-range folds (`shard.stale_range_refusals`); the
//! fleet then boots a fresh aggregator with the same canonical seeds —
//! signing-only work — and re-folds.
//!
//! **Crash recovery.** After every chunk a shard persists its range
//! certificate, height watermark, and sealed enclave state to the
//! configured [`Store`]; a killed shard restarts via
//! [`Enclave::restore`] with the same key and resumes *above* its durable
//! watermark instead of re-certifying the whole range.

use std::sync::{Arc, Mutex};

use dcert_chain::{Block, BlockHeader, ChainState, ConsensusEngine};
use dcert_obs::{Counter, Histogram, Registry};
use dcert_primitives::codec::{Decode, Encode};
use dcert_primitives::hash::{hash_concat, Hash};
use dcert_primitives::keys::PublicKey;
use dcert_sgx::cost::timed;
use dcert_sgx::{AttestationReport, AttestationService, CostModel, Enclave, SealedBlob};
use dcert_store::Store;
use dcert_vm::Executor;

use crate::cert::Certificate;
use crate::ci::{build_links, CertBreakdown};
use crate::error::{CertError, ShardError};
use crate::messages::{EcallRequest, EcallResponse};
use crate::program::CertProgram;
use crate::range::RangeCert;

/// A shared handle to the fleet's durable store.
pub type SharedStore = Arc<Mutex<Box<dyn Store + Send>>>;

/// A contiguous, inclusive height range `[first, last]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeightRange {
    /// First height of the range.
    pub first: u64,
    /// Last height of the range.
    pub last: u64,
}

impl HeightRange {
    /// Number of heights the range covers.
    pub fn len(&self) -> u64 {
        self.last.saturating_sub(self.first).saturating_add(1)
    }

    /// Whether the range covers no heights (never true for a plan range).
    pub fn is_empty(&self) -> bool {
        self.last < self.first
    }
}

/// The fleet's partition of a height span into per-shard ranges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// The per-shard ranges, ordered by height, jointly covering the
    /// requested span without gaps or overlap.
    pub ranges: Vec<HeightRange>,
}

impl ShardPlan {
    /// Splits `[first, last]` into at most `shards` contiguous ranges of
    /// near-equal size. All boundary arithmetic is checked: a span that
    /// would overflow `u64` yields a typed error, never a wrapped or
    /// truncated range.
    ///
    /// # Errors
    ///
    /// [`ShardError::ZeroShards`] for `shards == 0`,
    /// [`ShardError::EmptySpan`] for `last < first` or `first == 0`
    /// (height 0 is the genesis trust root, never certified), and
    /// [`ShardError::HeightOverflow`] if the span arithmetic overflows.
    pub fn partition(first: u64, last: u64, shards: usize) -> Result<ShardPlan, ShardError> {
        if shards == 0 {
            return Err(ShardError::ZeroShards);
        }
        if first == 0 || last < first {
            return Err(ShardError::EmptySpan { first, last });
        }
        let span = last
            .checked_sub(first)
            .and_then(|w| w.checked_add(1))
            .ok_or(ShardError::HeightOverflow)?;
        let shards = u64::try_from(shards).map_err(|_| ShardError::HeightOverflow)?;
        let per = span.div_ceil(shards).max(1);
        let mut ranges = Vec::new();
        let mut cursor = first;
        while cursor <= last {
            // Saturation is exact here: if `cursor + per - 1` overflows
            // u64 it certainly exceeds `last`, so clamping to `last`
            // yields the correct final chunk end either way.
            let end = cursor.saturating_add(per - 1).min(last);
            ranges.push(HeightRange {
                first: cursor,
                last: end,
            });
            match end.checked_add(1) {
                Some(next) => cursor = next,
                None => break, // end == u64::MAX == last: span complete
            }
        }
        Ok(ShardPlan { ranges })
    }
}

/// One scheduled shard failure: the worker dies after completing
/// `after_chunks` chunks in a round. Count-based (never wall-clock), so a
/// chaos run replays bit-for-bit from its seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardKill {
    /// Index of the shard to kill.
    pub shard: usize,
    /// Chunks the worker completes (and persists) before dying.
    pub after_chunks: usize,
}

/// A deterministic kill schedule for chaos drills. Each entry fires once.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardFailurePlan {
    kills: Vec<ShardKill>,
}

impl ShardFailurePlan {
    /// No scheduled failures.
    pub fn none() -> Self {
        ShardFailurePlan::default()
    }

    /// Schedules `shard` to die after completing `after_chunks` chunks.
    #[must_use]
    pub fn kill(mut self, shard: usize, after_chunks: usize) -> Self {
        self.kills.push(ShardKill {
            shard,
            after_chunks,
        });
        self
    }

    /// Consumes the pending kill for `shard`, if any.
    fn take(&mut self, shard: usize) -> Option<usize> {
        let at = self.kills.iter().position(|k| k.shard == shard)?;
        Some(self.kills.remove(at).after_chunks)
    }
}

/// Configuration of a [`ShardedCertEngine`].
pub struct ShardFleetConfig {
    /// Number of parallel shard enclaves.
    pub shards: usize,
    /// Blocks per `RangeSigGen` ECall (and per durable checkpoint).
    pub chunk: u64,
    /// Metric sink for the `shard.*` family; disabled by default.
    pub registry: Registry,
    /// Durable store for range certificates, watermarks, and shard seals.
    /// Without one, a killed shard re-certifies its whole range.
    pub store: Option<SharedStore>,
    /// Deterministic kill schedule for chaos drills.
    pub failures: ShardFailurePlan,
}

impl ShardFleetConfig {
    /// A fleet of `shards` enclaves certifying `chunk` blocks per ECall,
    /// with no metrics, no store, and no scheduled failures.
    pub fn new(shards: usize, chunk: u64) -> Self {
        ShardFleetConfig {
            shards,
            chunk,
            registry: Registry::disabled(),
            store: None,
            failures: ShardFailurePlan::none(),
        }
    }
}

/// Handles for the `shard.*` metric family.
struct ShardMetrics {
    registry: Registry,
    ranges_certified: Counter,
    blocks_certified: Counter,
    chunks: Counter,
    kills: Counter,
    restarts: Counter,
    resumed_ranges: Counter,
    recert_blocks: Counter,
    stale_range_refusals: Counter,
    agg_folds: Counter,
    agg_signatures: Counter,
    agg_fresh_boots: Counter,
    seal_ns: Histogram,
    fold_ns: Histogram,
}

impl ShardMetrics {
    fn new(registry: &Registry) -> Self {
        ShardMetrics {
            registry: registry.clone(),
            ranges_certified: registry.counter("shard.ranges_certified"),
            blocks_certified: registry.counter("shard.blocks_certified"),
            chunks: registry.counter("shard.chunks"),
            kills: registry.counter("shard.kills"),
            restarts: registry.counter("shard.restarts"),
            resumed_ranges: registry.counter("shard.resumed_ranges"),
            recert_blocks: registry.counter("shard.recert_blocks"),
            stale_range_refusals: registry.counter("shard.stale_range_refusals"),
            agg_folds: registry.counter("shard.agg.folds"),
            agg_signatures: registry.counter("shard.agg.signatures"),
            agg_fresh_boots: registry.counter("shard.agg.fresh_boots"),
            seal_ns: registry.timer("shard.range_seal_ns"),
            fold_ns: registry.timer("shard.agg.fold_ns"),
        }
    }

    fn shard_blocks(&self, shard: usize) -> Counter {
        self.registry
            .counter(&format!("shard.{shard}.blocks_certified"))
    }
}

/// A booted, attested enclave (shard or aggregator).
struct EnclaveHandle {
    enclave: Enclave<CertProgram>,
    pk_enc: PublicKey,
    report: AttestationReport,
}

/// Engine-side state of one shard between worker rounds.
struct ShardSlot {
    range: HeightRange,
    /// Ranges certified so far (durable when a store is configured).
    done: Vec<RangeCert>,
    /// Next height this shard will certify.
    next: u64,
    kill_after: Option<usize>,
    boot: Option<EnclaveHandle>,
}

/// What one worker round produced for one shard.
struct ShardRun {
    produced: Vec<RangeCert>,
    killed: bool,
}

/// The sharded certification engine.
///
/// Owns the aggregator enclave across calls (extension folds reuse its
/// watermark), the certified chain, and the folded range certificates;
/// shard enclaves are per-run. Construct with
/// [`ShardedCertEngine::new_deterministic`] and drive with
/// [`ShardedCertEngine::certify_chain`].
pub struct ShardedCertEngine {
    platform_seed: [u8; 32],
    signing_seed: [u8; 32],
    genesis: Block,
    genesis_state: ChainState,
    executor: Executor,
    consensus: Arc<dyn ConsensusEngine>,
    cost: CostModel,
    shards: usize,
    chunk: u64,
    store: Option<SharedStore>,
    failures: ShardFailurePlan,
    metrics: ShardMetrics,
    /// The certified chain, heights `1..=tip` (index `h - 1`).
    chain: Vec<Block>,
    /// Folded range certificates covering `1..=tip`.
    ranges: Vec<RangeCert>,
    /// The client-facing certificate stream, heights `1..=tip`.
    certs: Vec<Certificate>,
    aggregator: Option<EnclaveHandle>,
    /// Bumped on every reorg: re-signing a height needs fresh shard
    /// identities (shard enclaves strictly refuse height regression).
    generation: u64,
}

impl std::fmt::Debug for ShardedCertEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCertEngine")
            .field("shards", &self.shards)
            .field("chunk", &self.chunk)
            .field("tip", &self.chain.len())
            .field("generation", &self.generation)
            .finish()
    }
}

impl ShardedCertEngine {
    /// Builds a fleet whose aggregator boots with the given canonical
    /// seeds — the same seeds a deterministic sequential CI would use, so
    /// the folded certificate stream is byte-identical to sequential
    /// output. Enclaves boot lazily, on the first
    /// [`ShardedCertEngine::certify_chain`].
    ///
    /// # Errors
    ///
    /// [`ShardError::ZeroShards`] / [`ShardError::ZeroChunk`] for a
    /// degenerate configuration.
    #[allow(clippy::too_many_arguments)] // mirrors the CI constructors plus the fleet config
    pub fn new_deterministic(
        platform_seed: [u8; 32],
        signing_seed: [u8; 32],
        genesis: &Block,
        genesis_state: ChainState,
        executor: Executor,
        consensus: Arc<dyn ConsensusEngine>,
        cost: CostModel,
        config: ShardFleetConfig,
    ) -> Result<Self, CertError> {
        if config.shards == 0 {
            return Err(ShardError::ZeroShards.into());
        }
        if config.chunk == 0 {
            return Err(ShardError::ZeroChunk.into());
        }
        let metrics = ShardMetrics::new(&config.registry);
        Ok(ShardedCertEngine {
            platform_seed,
            signing_seed,
            genesis: genesis.clone(),
            genesis_state,
            executor,
            consensus,
            cost,
            shards: config.shards,
            chunk: config.chunk,
            store: config.store,
            failures: config.failures,
            metrics,
            chain: Vec::new(),
            ranges: Vec::new(),
            certs: Vec::new(),
            aggregator: None,
            generation: 0,
        })
    }

    /// The height of the last certified block.
    pub fn tip_height(&self) -> u64 {
        u64::try_from(self.chain.len()).unwrap_or(u64::MAX)
    }

    /// The client-facing certificates issued so far, heights `1..=tip`.
    pub fn certificates(&self) -> &[Certificate] {
        &self.certs
    }

    /// Certifies the offered chain (blocks at heights `1..=n`, extending
    /// this engine's genesis) and returns the certificate for **every**
    /// height — byte-identical, at every height, to what a sequential
    /// deterministic CI with the same seeds would have produced.
    ///
    /// Incremental: unchanged prefixes are never re-certified. If the
    /// offered chain forks from the certified one, only the ranges at or
    /// above the fork are re-certified (fresh shard identities), the old
    /// aggregator's watermark refusal is counted, and a fresh aggregator
    /// re-folds — signing-only work over already-certified digests.
    ///
    /// # Errors
    ///
    /// Shard-plan and worker failures surface as [`CertError::Shard`];
    /// enclave-side refusals keep their typed variants.
    pub fn certify_chain(
        &mut self,
        blocks: &[Block],
        ias: &mut AttestationService,
    ) -> Result<Vec<Certificate>, CertError> {
        if blocks.is_empty() {
            return Err(CertError::EmptyRange);
        }
        for (at, block) in blocks.iter().enumerate() {
            let expected = u64::try_from(at)
                .ok()
                .and_then(|i| i.checked_add(1))
                .ok_or(CertError::HeightOverflow)?;
            if block.header.height != expected {
                return Err(ShardError::MissingBlock { height: expected }.into());
            }
        }
        let tip = u64::try_from(blocks.len()).map_err(|_| CertError::HeightOverflow)?;

        // Fork detection: longest shared prefix with the certified chain.
        let shared = self
            .chain
            .iter()
            .zip(blocks)
            .take_while(|(ours, offered)| ours.header.hash() == offered.header.hash())
            .count();
        let shared_height = u64::try_from(shared).map_err(|_| CertError::HeightOverflow)?;
        if shared == blocks.len() && shared == self.chain.len() {
            return Ok(self.certs.clone()); // nothing new
        }
        let reorg = shared < self.chain.len();

        // Keep every range entirely below the fork; re-certify the rest.
        let kept: Vec<RangeCert> = self
            .ranges
            .iter()
            .filter(|r| r.last <= shared_height)
            .cloned()
            .collect();
        let recert_first = kept.last().map_or(1, |r| r.last.saturating_add(1));
        if reorg {
            self.generation = self
                .generation
                .checked_add(1)
                .ok_or(CertError::HeightOverflow)?;
            let old_tip = u64::try_from(self.chain.len()).map_err(|_| CertError::HeightOverflow)?;
            self.metrics
                .recert_blocks
                .add(old_tip.saturating_sub(recert_first).saturating_add(1));
        }

        let new_ranges = if recert_first <= tip {
            self.run_fleet(blocks, recert_first, tip, ias)?
        } else {
            Vec::new()
        };

        if reorg {
            let mut all_ranges = kept;
            all_ranges.extend(new_ranges);
            // The old aggregator's sealed watermark sits at the old tip:
            // folding from genesis again is a height regression it must
            // refuse — the stale-range guard. Count the refusal, then boot
            // a fresh aggregator with the same canonical seeds (same key,
            // same client-visible identity) and re-fold.
            if let Some(old) = self.aggregator.take() {
                if self
                    .fold(&old, &self.genesis.header.clone(), None, &all_ranges)
                    .is_err()
                {
                    self.metrics.stale_range_refusals.inc();
                }
            }
            let agg = self.boot_aggregator(ias)?;
            let sigs = self.fold(&agg, &self.genesis.header.clone(), None, &all_ranges)?;
            self.install(blocks, &all_ranges, &sigs, 1, &agg)?;
            self.aggregator = Some(agg);
        } else if self.chain.is_empty() {
            let agg = self.boot_aggregator(ias)?;
            let sigs = self.fold(&agg, &self.genesis.header.clone(), None, &new_ranges)?;
            self.install(blocks, &new_ranges, &sigs, 1, &agg)?;
            self.aggregator = Some(agg);
        } else {
            // Pure extension: fold only the new ranges, anchored at the
            // certified tip, on the existing aggregator.
            let anchor = self
                .chain
                .last()
                .map(|b| b.header.clone())
                .ok_or(CertError::EmptyRange)?;
            let anchor_cert = self.certs.last().cloned();
            let agg = match self.aggregator.take() {
                Some(agg) => agg,
                None => self.boot_aggregator(ias)?,
            };
            let sigs = self.fold(&agg, &anchor, anchor_cert, &new_ranges)?;
            let first_new = anchor
                .height
                .checked_add(1)
                .ok_or(CertError::HeightOverflow)?;
            self.install(blocks, &new_ranges, &sigs, first_new, &agg)?;
            self.aggregator = Some(agg);
        }
        Ok(self.certs.clone())
    }

    /// Rebuilds the engine's certified view from a fold result:
    /// `sigs` covers heights `first_signed..=tip`, one per folded header
    /// digest, signed by `agg`.
    fn install(
        &mut self,
        blocks: &[Block],
        all_ranges: &[RangeCert],
        sigs: &[dcert_primitives::keys::Signature],
        first_signed: u64,
        agg: &EnclaveHandle,
    ) -> Result<(), CertError> {
        let keep = usize::try_from(first_signed.saturating_sub(1))
            .map_err(|_| CertError::HeightOverflow)?;
        self.certs.truncate(keep);
        for (at, sig) in sigs.iter().enumerate() {
            let height = u64::try_from(at)
                .ok()
                .and_then(|i| i.checked_add(first_signed))
                .ok_or(CertError::HeightOverflow)?;
            let at_index =
                usize::try_from(height.saturating_sub(1)).map_err(|_| CertError::HeightOverflow)?;
            let block = blocks
                .get(at_index)
                .ok_or(ShardError::MissingBlock { height })?;
            self.certs.push(Certificate {
                pk_enc: agg.pk_enc,
                report: agg.report.clone(),
                digest: block.header.hash(),
                signature: *sig,
            });
        }
        self.chain = blocks.to_vec();
        let mut ranges = self
            .ranges
            .iter()
            .filter(|r| r.last < first_signed)
            .cloned()
            .collect::<Vec<_>>();
        ranges.extend(
            all_ranges
                .iter()
                .filter(|r| r.first >= first_signed)
                .cloned(),
        );
        self.ranges = ranges;
        Ok(())
    }

    /// Runs the shard workers over `[first, last]`, including kill/restart
    /// rounds, and returns the produced range certificates ordered by
    /// height.
    fn run_fleet(
        &mut self,
        blocks: &[Block],
        first: u64,
        last: u64,
        ias: &mut AttestationService,
    ) -> Result<Vec<RangeCert>, CertError> {
        let plan = ShardPlan::partition(first, last, self.shards).map_err(CertError::Shard)?;
        let mut slots: Vec<ShardSlot> = Vec::with_capacity(plan.ranges.len());
        for (shard, range) in plan.ranges.iter().enumerate() {
            slots.push(ShardSlot {
                range: *range,
                done: Vec::new(),
                next: range.first,
                kill_after: self.failures.take(shard),
                boot: Some(self.boot_shard(shard, ias)?),
            });
        }

        loop {
            // One parallel round over every unfinished shard.
            let mut rounds: Vec<(usize, Result<ShardRun, ShardError>)> = Vec::new();
            let pending: Vec<(usize, u64, Option<usize>, EnclaveHandle)> = slots
                .iter_mut()
                .enumerate()
                .filter(|(_, slot)| slot.next <= slot.range.last)
                .map(|(shard, slot)| {
                    let boot = slot.boot.take().ok_or(ShardError::Worker {
                        shard,
                        reason: "shard enclave not booted".to_owned(),
                    })?;
                    Ok((shard, slot.next, slot.kill_after, boot))
                })
                .collect::<Result<_, ShardError>>()
                .map_err(CertError::Shard)?;
            if pending.is_empty() {
                break;
            }
            let ctx = WorkerCtx {
                blocks,
                genesis_header: &self.genesis.header,
                genesis_state: &self.genesis_state,
                executor: &self.executor,
                chunk: self.chunk,
                store: self.store.clone(),
                generation: self.generation,
            };
            std::thread::scope(|scope| {
                let joins: Vec<_> = pending
                    .into_iter()
                    .map(|(shard, start, kill_after, boot)| {
                        let range = slots.get(shard).map(|s| s.range);
                        let metrics = WorkerMetrics {
                            blocks: self.metrics.blocks_certified.clone(),
                            shard_blocks: self.metrics.shard_blocks(shard),
                            chunks: self.metrics.chunks.clone(),
                            ranges: self.metrics.ranges_certified.clone(),
                            seal_ns: self.metrics.seal_ns.clone(),
                        };
                        let ctx = &ctx;
                        (
                            shard,
                            scope.spawn(move || {
                                let range = range.ok_or(ShardError::Worker {
                                    shard,
                                    reason: "shard slot missing".to_owned(),
                                })?;
                                run_shard_worker(
                                    shard, range, start, kill_after, boot, ctx, &metrics,
                                )
                            }),
                        )
                    })
                    .collect();
                for (shard, join) in joins {
                    let outcome = join.join().unwrap_or_else(|_| {
                        Err(ShardError::Worker {
                            shard,
                            reason: "worker thread panicked".to_owned(),
                        })
                    });
                    rounds.push((shard, outcome));
                }
            });

            let mut any_killed = false;
            for (shard, outcome) in rounds {
                let run = outcome.map_err(CertError::Shard)?;
                let slot = slots
                    .get_mut(shard)
                    .ok_or(CertError::Shard(ShardError::Worker {
                        shard,
                        reason: "shard slot missing".to_owned(),
                    }))?;
                if run.killed {
                    any_killed = true;
                    self.metrics.kills.inc();
                    slot.kill_after = None;
                    self.restart_shard(shard, slot, ias)?;
                } else {
                    slot.done.extend(run.produced);
                    slot.next = slot.range.last.saturating_add(1);
                    slot.boot = None;
                }
            }
            if !any_killed && slots.iter().all(|s| s.next > s.range.last) {
                break;
            }
        }

        let mut out: Vec<RangeCert> = slots.into_iter().flat_map(|s| s.done).collect();
        out.sort_by_key(|r| r.first);
        Ok(out)
    }

    /// Restarts a killed shard: with a store, restore the sealed enclave
    /// (same key, watermark intact) and resume above the durable
    /// watermark; without one, boot fresh and re-certify the whole range.
    fn restart_shard(
        &mut self,
        shard: usize,
        slot: &mut ShardSlot,
        ias: &mut AttestationService,
    ) -> Result<(), CertError> {
        self.metrics.restarts.inc();
        slot.done.clear();
        slot.next = slot.range.first;
        if let Some(store) = self.store.clone() {
            let generation = self.generation;
            let (watermark, seal) = {
                let guard = lock_store(&store);
                let watermark = guard
                    .head(&watermark_key(generation, shard))
                    .and_then(|bytes| u64::decode_all(&bytes).ok());
                let seal = guard
                    .head(&seal_key(generation, shard))
                    .and_then(|bytes| SealedBlob::decode_all(&bytes).ok());
                (watermark, seal)
            };
            if let (Some(watermark), Some(seal)) = (watermark, seal) {
                if watermark >= slot.range.first {
                    // Re-read the durable ranges below the watermark.
                    let mut resumed = Vec::new();
                    let mut cursor = slot.range.first;
                    let guard = lock_store(&store);
                    while cursor <= watermark {
                        let Some(range) = guard
                            .head(&range_key(generation, cursor))
                            .and_then(|bytes| RangeCert::decode_all(&bytes).ok())
                        else {
                            break;
                        };
                        let next = range.last.saturating_add(1);
                        resumed.push(range);
                        cursor = next;
                    }
                    drop(guard);
                    if cursor > watermark {
                        // The full prefix is durable: restore and resume.
                        let program = self.make_program(ias);
                        let platform = derive_seed(
                            b"dcert-shard-platform",
                            &self.platform_seed,
                            shard,
                            self.generation,
                        );
                        let enclave = Enclave::restore(program, self.cost, platform, &seal)
                            .map_err(CertError::Attestation)?;
                        let boot = finish_enclave_boot(enclave, ias)?;
                        self.metrics
                            .resumed_ranges
                            .add(u64::try_from(resumed.len()).unwrap_or(u64::MAX));
                        slot.done = resumed;
                        slot.next = watermark.saturating_add(1);
                        slot.boot = Some(boot);
                        return Ok(());
                    }
                }
            }
        }
        // No durable progress: fresh boot, full re-certification.
        slot.boot = Some(self.boot_shard(shard, ias)?);
        Ok(())
    }

    /// The trusted program every fleet enclave runs — identical chain
    /// semantics (and therefore measurement) to the sequential CI's.
    fn make_program(&self, ias: &AttestationService) -> CertProgram {
        CertProgram::new(
            self.genesis.hash(),
            ias.public_key(),
            self.executor.clone(),
            self.consensus.clone(),
            Vec::new(),
        )
    }

    /// Boots and attests one shard enclave on derived seeds: the shard's
    /// key is unique to `(shard, generation)`, so it can never stand in
    /// for the aggregator in a client artifact, and a reorg's generation
    /// bump gives re-certification a fresh identity.
    fn boot_shard(
        &mut self,
        shard: usize,
        ias: &mut AttestationService,
    ) -> Result<EnclaveHandle, CertError> {
        let platform = derive_seed(
            b"dcert-shard-platform",
            &self.platform_seed,
            shard,
            self.generation,
        );
        let signing = derive_seed(
            b"dcert-shard-signing",
            &self.signing_seed,
            shard,
            self.generation,
        );
        let program = self.make_program(ias).with_signing_seed(signing);
        let enclave = Enclave::launch_with_platform_seed(program, self.cost, platform);
        if self.metrics.registry.is_enabled() {
            enclave.attach_obs(&self.metrics.registry);
        }
        finish_enclave_boot(enclave, ias)
    }

    /// Boots the aggregator with the fleet's *canonical* seeds — the same
    /// identity a deterministic sequential CI would have, which is exactly
    /// why the folded certificates come out byte-identical.
    fn boot_aggregator(
        &mut self,
        ias: &mut AttestationService,
    ) -> Result<EnclaveHandle, CertError> {
        let program = self.make_program(ias).with_signing_seed(self.signing_seed);
        let enclave = Enclave::launch_with_platform_seed(program, self.cost, self.platform_seed);
        if self.metrics.registry.is_enabled() {
            enclave.attach_obs(&self.metrics.registry);
        }
        self.metrics.agg_fresh_boots.inc();
        finish_enclave_boot(enclave, ias)
    }

    /// One `FoldRanges` ECall: verify, chain, and sign `ranges` from
    /// `anchor` inside the aggregator enclave.
    fn fold(
        &self,
        agg: &EnclaveHandle,
        anchor: &BlockHeader,
        anchor_cert: Option<Certificate>,
        ranges: &[RangeCert],
    ) -> Result<Vec<dcert_primitives::keys::Signature>, CertError> {
        let request = EcallRequest::FoldRanges {
            anchor: anchor.clone(),
            anchor_cert,
            ranges: ranges.to_vec(),
        };
        let (response, took) = timed(|| agg.enclave.ecall(&request.to_encoded_bytes()));
        self.metrics.fold_ns.observe(duration_ns(took));
        match EcallResponse::decode_all(&response)? {
            EcallResponse::Signatures(sigs) => {
                self.metrics.agg_folds.inc();
                self.metrics
                    .agg_signatures
                    .add(u64::try_from(sigs.len()).unwrap_or(u64::MAX));
                Ok(sigs)
            }
            EcallResponse::Rejected(reason) => Err(CertError::EnclaveRejected(reason)),
            EcallResponse::Initialized(_) | EcallResponse::Signature(_) => {
                Err(CertError::EnclaveRejected("unexpected response".into()))
            }
        }
    }
}

/// Shared (read-only) context every worker in a round borrows.
struct WorkerCtx<'a> {
    blocks: &'a [Block],
    genesis_header: &'a BlockHeader,
    genesis_state: &'a ChainState,
    executor: &'a Executor,
    chunk: u64,
    store: Option<SharedStore>,
    generation: u64,
}

/// Metric handles a worker updates (all `Arc`-backed clones).
struct WorkerMetrics {
    blocks: Counter,
    shard_blocks: Counter,
    chunks: Counter,
    ranges: Counter,
    seal_ns: Histogram,
}

/// One shard worker: replay the untrusted prefix, then certify the
/// shard's span chunk by chunk — links built by the same pre-processing
/// the sequential batch path uses, one `RangeSigGen` ECall per chunk, and
/// (with a store) one durable checkpoint per chunk.
fn run_shard_worker(
    shard: usize,
    range: HeightRange,
    start: u64,
    kill_after: Option<usize>,
    boot: EnclaveHandle,
    ctx: &WorkerCtx<'_>,
    metrics: &WorkerMetrics,
) -> Result<ShardRun, ShardError> {
    // Untrusted prefix replay: execute (no proofs, no enclave) up to the
    // anchor. The enclave re-validates everything from the anchor on.
    let mut state = ctx.genesis_state.clone();
    let prefix = blocks_for(ctx.blocks, 1, start.saturating_sub(1))?;
    for block in prefix {
        let calls: Vec<dcert_vm::Call> = block.txs.iter().map(|tx| tx.call.clone()).collect();
        let execution = ctx.executor.execute_block(&state, &calls);
        state.apply_writes(execution.writes.iter());
    }
    let mut anchor = if start <= 1 {
        ctx.genesis_header.clone()
    } else {
        prefix
            .last()
            .map(|b| b.header.clone())
            .ok_or(ShardError::MissingBlock {
                height: start.saturating_sub(1),
            })?
    };

    let mut produced = Vec::new();
    let mut chunks_done = 0usize;
    let mut cursor = start;
    while cursor <= range.last {
        if kill_after == Some(chunks_done) {
            return Ok(ShardRun {
                produced,
                killed: true,
            });
        }
        let chunk_last = cursor
            .checked_add(ctx.chunk.saturating_sub(1))
            .ok_or(ShardError::HeightOverflow)?
            .min(range.last);
        let chunk_blocks = blocks_for(ctx.blocks, cursor, chunk_last)?;
        let links = build_links(
            ctx.executor,
            &mut state,
            chunk_blocks,
            &mut CertBreakdown::default(),
        );
        let header_digests: Vec<Hash> = links.iter().map(|l| l.block.header.hash()).collect();
        let request = EcallRequest::RangeSigGen {
            anchor: anchor.clone(),
            links,
        };
        let (response, took) = timed(|| boot.enclave.ecall(&request.to_encoded_bytes()));
        metrics.seal_ns.observe(duration_ns(took));
        let signature = match EcallResponse::decode_all(&response).map_err(|e| {
            ShardError::Worker {
                shard,
                reason: format!("range response codec: {e}"),
            }
        })? {
            EcallResponse::Signature(sig) => sig,
            EcallResponse::Rejected(reason) => return Err(ShardError::Worker { shard, reason }),
            EcallResponse::Initialized(_) | EcallResponse::Signatures(_) => {
                return Err(ShardError::Worker {
                    shard,
                    reason: "unexpected range response".to_owned(),
                })
            }
        };
        let range_cert = RangeCert {
            pk_range: boot.pk_enc,
            report: boot.report.clone(),
            anchor_digest: anchor.hash(),
            first: cursor,
            last: chunk_last,
            header_digests,
            signature,
        };
        if let Some(store) = &ctx.store {
            let mut guard = lock_store(store);
            guard
                .put_head(
                    &range_key(ctx.generation, cursor),
                    range_cert.to_encoded_bytes(),
                )
                .map_err(|e| ShardError::Store(e.to_string()))?;
            guard
                .put_head(
                    &watermark_key(ctx.generation, shard),
                    chunk_last.to_encoded_bytes(),
                )
                .map_err(|e| ShardError::Store(e.to_string()))?;
            guard
                .put_head(
                    &seal_key(ctx.generation, shard),
                    boot.enclave.seal_state().to_encoded_bytes(),
                )
                .map_err(|e| ShardError::Store(e.to_string()))?;
            guard.sync().map_err(|e| ShardError::Store(e.to_string()))?;
        }
        anchor = chunk_blocks
            .last()
            .map(|b| b.header.clone())
            .ok_or(ShardError::MissingBlock { height: chunk_last })?;
        metrics.ranges.inc();
        metrics.chunks.inc();
        metrics.blocks.add(
            range_cert
                .header_digests
                .len()
                .try_into()
                .unwrap_or(u64::MAX),
        );
        metrics.shard_blocks.add(
            range_cert
                .header_digests
                .len()
                .try_into()
                .unwrap_or(u64::MAX),
        );
        produced.push(range_cert);
        chunks_done = chunks_done.saturating_add(1);
        cursor = chunk_last.saturating_add(1);
    }
    Ok(ShardRun {
        produced,
        killed: false,
    })
}

/// Register-init-quote-attest boot tail shared by shard and aggregator
/// enclaves (the fleet's copy of the CI's `finish_boot`).
fn finish_enclave_boot(
    enclave: Enclave<CertProgram>,
    ias: &mut AttestationService,
) -> Result<EnclaveHandle, CertError> {
    ias.register_platform(enclave.platform_key());
    let response = enclave.ecall(&EcallRequest::Init.to_encoded_bytes());
    let pk_enc = match EcallResponse::decode_all(&response)? {
        EcallResponse::Initialized(pk) => pk,
        EcallResponse::Rejected(reason) => return Err(CertError::EnclaveRejected(reason)),
        EcallResponse::Signature(_) | EcallResponse::Signatures(_) => {
            return Err(CertError::EnclaveRejected("unexpected response".into()))
        }
    };
    let quote = enclave.quote(Certificate::key_binding(&pk_enc));
    let report = ias.attest(&quote)?;
    Ok(EnclaveHandle {
        enclave,
        pk_enc,
        report,
    })
}

/// The blocks at heights `first..=last` (1-based) of the offered chain.
fn blocks_for(blocks: &[Block], first: u64, last: u64) -> Result<&[Block], ShardError> {
    if last < first {
        return Ok(&[]);
    }
    let lo = usize::try_from(first.saturating_sub(1)).map_err(|_| ShardError::HeightOverflow)?;
    let hi = usize::try_from(last).map_err(|_| ShardError::HeightOverflow)?;
    blocks
        .get(lo..hi)
        .ok_or(ShardError::MissingBlock { height: last })
}

/// Derives a per-shard seed: `H(domain ‖ base ‖ shard ‖ generation)`.
/// Distinct from the canonical seeds by construction, so shard keys can
/// never collide with the aggregator's client-visible identity.
fn derive_seed(domain: &[u8], base: &[u8; 32], shard: usize, generation: u64) -> [u8; 32] {
    let shard_be = u64::try_from(shard).unwrap_or(u64::MAX).to_be_bytes();
    let generation_be = generation.to_be_bytes();
    let digest = hash_concat([domain, base.as_slice(), &shard_be, &generation_be]);
    let mut seed = [0u8; 32];
    for (dst, src) in seed.iter_mut().zip(digest.as_bytes()) {
        *dst = *src;
    }
    seed
}

fn duration_ns(took: std::time::Duration) -> u64 {
    u64::try_from(took.as_nanos()).unwrap_or(u64::MAX)
}

/// A poisoned store lock only means another worker panicked mid-write;
/// the store's own framing keeps torn writes recoverable.
fn lock_store(store: &SharedStore) -> std::sync::MutexGuard<'_, Box<dyn Store + Send>> {
    match store.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn range_key(generation: u64, first: u64) -> String {
    format!("shard.range.{generation}.{first:016x}")
}

fn watermark_key(generation: u64, shard: usize) -> String {
    format!("shard.wm.{generation}.{shard}")
}

fn seal_key(generation: u64, shard: usize) -> String {
    format!("shard.seal.{generation}.{shard}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_span_exactly() {
        for (first, last, shards) in [(1u64, 20u64, 4usize), (1, 7, 3), (5, 5, 8), (1, 100, 1)] {
            let plan = ShardPlan::partition(first, last, shards).unwrap();
            assert!(plan.ranges.len() <= shards);
            assert_eq!(plan.ranges.first().unwrap().first, first);
            assert_eq!(plan.ranges.last().unwrap().last, last);
            for window in plan.ranges.windows(2) {
                assert_eq!(window[0].last + 1, window[1].first, "gap or overlap");
            }
            let total: u64 = plan.ranges.iter().map(HeightRange::len).sum();
            assert_eq!(total, last - first + 1);
        }
    }

    #[test]
    fn partition_balances_ranges() {
        let plan = ShardPlan::partition(1, 20, 4).unwrap();
        assert_eq!(plan.ranges.len(), 4);
        for range in &plan.ranges {
            assert_eq!(range.len(), 5);
        }
    }

    #[test]
    fn partition_rejects_degenerate_inputs() {
        assert_eq!(ShardPlan::partition(1, 10, 0), Err(ShardError::ZeroShards));
        assert_eq!(
            ShardPlan::partition(10, 5, 2),
            Err(ShardError::EmptySpan { first: 10, last: 5 })
        );
        assert_eq!(
            ShardPlan::partition(0, 5, 2),
            Err(ShardError::EmptySpan { first: 0, last: 5 })
        );
    }

    #[test]
    fn partition_near_u64_max_does_not_overflow() {
        // The span ends at u64::MAX: every boundary advance is checked, so
        // the plan terminates with the exact last height instead of
        // wrapping.
        let plan = ShardPlan::partition(u64::MAX - 9, u64::MAX, 4).unwrap();
        assert_eq!(plan.ranges.first().unwrap().first, u64::MAX - 9);
        assert_eq!(plan.ranges.last().unwrap().last, u64::MAX);
        let total: u64 = plan.ranges.iter().map(HeightRange::len).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn failure_plan_fires_once() {
        let mut plan = ShardFailurePlan::none().kill(2, 1);
        assert_eq!(plan.take(2), Some(1));
        assert_eq!(plan.take(2), None);
        assert_eq!(plan.take(0), None);
    }

    #[test]
    fn derived_seeds_are_distinct() {
        let base = [7u8; 32];
        let a = derive_seed(b"dcert-shard-signing", &base, 0, 0);
        let b = derive_seed(b"dcert-shard-signing", &base, 1, 0);
        let c = derive_seed(b"dcert-shard-signing", &base, 0, 1);
        let d = derive_seed(b"dcert-shard-platform", &base, 0, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_ne!(a, base);
    }
}
