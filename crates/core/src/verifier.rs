//! Trusted index-update verifiers.
//!
//! The augmented and hierarchical certificate schemes (Section 5.2 of the
//! paper) have the enclave certify that an off-chain authenticated index
//! was updated correctly by the new block. Each *type* of index knows how
//! to check its own update — this trait is the trusted half of that logic,
//! loaded into the certificate program at enclave build time (it is part
//! of the measured code identity).
//!
//! Implementations live with their indexes in `dcert-query`
//! (`history`, `inverted`); the service-provider side produces the opaque
//! `aux` bytes (Merkle update proofs), and the verifier recomputes the new
//! digest from `(prev_digest, block, writes, aux)` alone — never holding
//! the index itself, in keeping with the stateless-enclave design.

use dcert_chain::Block;
use dcert_primitives::hash::Hash;
use dcert_vm::StateKey;

use crate::error::CertError;

/// A write set as authenticated by the enclave (final value per key,
/// `None` = deletion).
pub type VerifiedWrites = [(StateKey, Option<Vec<u8>>)];

/// Trusted logic that validates one index type's per-block update.
pub trait IndexVerifier: Send {
    /// The registry name requests refer to (e.g. `"history"`).
    fn type_name(&self) -> &str;

    /// `H_genesis^{idx}`: the digest of the index before any block was
    /// applied (Algorithm 4, line 6).
    fn genesis_digest(&self) -> Hash;

    /// Recomputes the index digest after applying `block`'s effects.
    ///
    /// `writes` is the block's write set, already authenticated against
    /// the certified state roots by the caller; `aux` carries the
    /// index-specific Merkle update proofs produced by the untrusted
    /// service provider.
    ///
    /// # Errors
    ///
    /// Returns a [`CertError`] if the aux data is malformed or its proofs
    /// do not verify against `prev_digest`.
    fn verify_update(
        &self,
        prev_digest: &Hash,
        block: &Block,
        writes: &VerifiedWrites,
        aux: &[u8],
    ) -> Result<Hash, CertError>;
}
