//! Per-shard range certificates — the intermediate artifact of the
//! sharded certification fleet.
//!
//! A shard enclave certifies a contiguous height range `[first, last]` by
//! replaying every block from an *uncertified anchor header* (the chain's
//! block at `first - 1`) and signing a binding digest that commits to the
//! anchor digest, the height span, and every certified header digest in
//! order. Because the binding signature is produced inside a measured
//! enclave, a verifier that checks the attestation report and the
//! measurement knows the span was fully re-validated from the declared
//! anchor — the anchor itself is authenticated later, by the aggregator,
//! which chains range certificates digest-to-digest before folding them
//! into the client-facing recursive [`Certificate`](crate::Certificate)
//! stream.
//!
//! Range certificates are a backend artifact: clients never see them, so
//! the client verification surface is unchanged.

use dcert_primitives::codec::{decode_seq, encode_seq, Decode, Encode, Reader};
use dcert_primitives::error::CodecError;
use dcert_primitives::hash::{hash_concat, Hash};
use dcert_primitives::keys::{PublicKey, Signature};
use dcert_sgx::AttestationReport;

use crate::cert::Certificate;
use crate::error::CertError;

/// Domain tag for the range binding digest — keeps range signatures
/// disjoint from block-certificate signatures (which sign raw header
/// digests) even under key reuse.
const RANGE_BINDING_DOMAIN: &[u8] = b"dcert-range-cert-v1";

/// A shard's certification of the contiguous height range `[first, last]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeCert {
    /// The shard enclave's public key.
    pub pk_range: PublicKey,
    /// IAS attestation report binding `pk_range` to the certificate
    /// program's measurement.
    pub report: AttestationReport,
    /// Digest of the anchor header (height `first - 1`) the shard replayed
    /// from.
    pub anchor_digest: Hash,
    /// First certified height (≥ 1; the anchor sits just below it).
    pub first: u64,
    /// Last certified height.
    pub last: u64,
    /// Digest of every certified header, ordered by height.
    pub header_digests: Vec<Hash>,
    /// Shard enclave signature over [`RangeCert::binding_digest`].
    pub signature: Signature,
}

impl RangeCert {
    /// The digest the shard enclave signs: a domain-separated hash over
    /// the anchor digest, the height span, and every header digest in
    /// order. Committing to the *anchor* is what lets the aggregator chain
    /// ranges without trusting shard-side inputs.
    pub fn binding_digest(
        anchor_digest: &Hash,
        first: u64,
        last: u64,
        header_digests: &[Hash],
    ) -> Hash {
        let first_be = first.to_be_bytes();
        let last_be = last.to_be_bytes();
        let mut parts: Vec<&[u8]> = Vec::with_capacity(header_digests.len().saturating_add(4));
        parts.push(RANGE_BINDING_DOMAIN);
        parts.push(anchor_digest.as_bytes());
        parts.push(&first_be);
        parts.push(&last_be);
        for digest in header_digests {
            parts.push(digest.as_bytes());
        }
        hash_concat(parts)
    }

    /// Number of heights the range covers, if its span is well-formed.
    fn span_len(&self) -> Result<u64, CertError> {
        if self.first == 0 || self.last < self.first {
            return Err(CertError::EmptyRange);
        }
        self.last
            .checked_sub(self.first)
            .and_then(|w| w.checked_add(1))
            .ok_or(CertError::HeightOverflow)
    }

    /// Verifies the range certificate's trust chain and structure — the
    /// aggregator-side acceptance check, mirroring
    /// [`Certificate::verify_trust`] plus the range-specific binding:
    ///
    /// 1. the report is signed by the IAS root,
    /// 2. the report's measurement equals the certificate program's,
    /// 3. the report binds `pk_range`,
    /// 4. the declared span is non-empty, starts above genesis, and
    ///    matches the digest count,
    /// 5. the signature verifies over the binding digest under `pk_range`.
    ///
    /// Anchor authenticity and height contiguity are *not* checked here —
    /// they are chaining properties the aggregator enforces across the
    /// whole fold (inside the enclave, so a hostile host cannot skip them).
    ///
    /// # Errors
    ///
    /// One [`CertError`] variant per failed step, in the order above.
    pub fn verify(
        &self,
        ias_key: &PublicKey,
        expected_measurement: &Hash,
    ) -> Result<(), CertError> {
        self.report.verify(ias_key)?;
        if self.report.measurement != *expected_measurement {
            return Err(CertError::WrongMeasurement);
        }
        if self.report.report_data != Certificate::key_binding(&self.pk_range) {
            return Err(CertError::KeyBindingMismatch);
        }
        let span = self.span_len()?;
        let digests =
            u64::try_from(self.header_digests.len()).map_err(|_| CertError::HeightOverflow)?;
        if digests != span {
            return Err(CertError::RangeLengthMismatch);
        }
        let binding = Self::binding_digest(
            &self.anchor_digest,
            self.first,
            self.last,
            &self.header_digests,
        );
        self.pk_range
            .verify(binding.as_bytes(), &self.signature)
            .map_err(|_| CertError::BadSignature)
    }

    /// Serialized size in bytes — exported by the shard metrics so the
    /// bench can report aggregation overhead in concrete units.
    pub fn size_bytes(&self) -> usize {
        self.encoded_len()
    }
}

impl Encode for RangeCert {
    fn encode(&self, out: &mut Vec<u8>) {
        self.pk_range.encode(out);
        self.report.encode(out);
        self.anchor_digest.encode(out);
        self.first.encode(out);
        self.last.encode(out);
        encode_seq(&self.header_digests, out);
        self.signature.encode(out);
    }
}

impl Decode for RangeCert {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(RangeCert {
            pk_range: PublicKey::decode(r)?,
            report: AttestationReport::decode(r)?,
            anchor_digest: Hash::decode(r)?,
            first: u64::decode(r)?,
            last: u64::decode(r)?,
            header_digests: decode_seq(r)?,
            signature: Signature::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcert_primitives::hash::hash_bytes;
    use dcert_primitives::keys::Keypair;
    use dcert_sgx::{AttestationService, Quote};

    /// Hand-assembles a valid range certificate outside the enclave
    /// machinery, mirroring `cert::tests::make_cert`.
    fn make_range_cert(first: u64, count: u64) -> (RangeCert, PublicKey, Hash) {
        let mut ias = AttestationService::with_seed([7; 32]);
        let platform = Keypair::from_seed([8; 32]);
        ias.register_platform(platform.public());
        let range_key = Keypair::from_seed([9; 32]);
        let measurement = hash_bytes(b"cert-program");
        let quote = Quote::sign(
            &platform,
            measurement,
            Certificate::key_binding(&range_key.public()),
        );
        let report = ias.attest(&quote).unwrap();
        let anchor_digest = hash_bytes(b"anchor");
        let header_digests: Vec<Hash> = (0..count)
            .map(|i| hash_bytes(format!("hdr-{i}").as_bytes()))
            .collect();
        let last = first + count - 1;
        let binding = RangeCert::binding_digest(&anchor_digest, first, last, &header_digests);
        let cert = RangeCert {
            pk_range: range_key.public(),
            report,
            anchor_digest,
            first,
            last,
            header_digests,
            signature: range_key.sign(binding.as_bytes()),
        };
        (cert, ias.public_key(), measurement)
    }

    #[test]
    fn valid_range_cert_verifies() {
        let (cert, ias_key, measurement) = make_range_cert(5, 3);
        cert.verify(&ias_key, &measurement).unwrap();
    }

    #[test]
    fn wrong_measurement_rejected() {
        let (cert, ias_key, _) = make_range_cert(5, 3);
        assert_eq!(
            cert.verify(&ias_key, &hash_bytes(b"other-program")),
            Err(CertError::WrongMeasurement)
        );
    }

    #[test]
    fn key_substitution_rejected() {
        let (mut cert, ias_key, measurement) = make_range_cert(5, 3);
        let attacker = Keypair::from_seed([66; 32]);
        let binding = RangeCert::binding_digest(
            &cert.anchor_digest,
            cert.first,
            cert.last,
            &cert.header_digests,
        );
        cert.pk_range = attacker.public();
        cert.signature = attacker.sign(binding.as_bytes());
        assert_eq!(
            cert.verify(&ias_key, &measurement),
            Err(CertError::KeyBindingMismatch)
        );
    }

    #[test]
    fn tampered_span_rejected() {
        // Stretching the claimed span breaks both the digest count and the
        // binding signature; the structural check fires first.
        let (mut cert, ias_key, measurement) = make_range_cert(5, 3);
        cert.last += 1;
        assert_eq!(
            cert.verify(&ias_key, &measurement),
            Err(CertError::RangeLengthMismatch)
        );
    }

    #[test]
    fn tampered_anchor_rejected() {
        let (mut cert, ias_key, measurement) = make_range_cert(5, 3);
        cert.anchor_digest = hash_bytes(b"forged-anchor");
        assert_eq!(
            cert.verify(&ias_key, &measurement),
            Err(CertError::BadSignature)
        );
    }

    #[test]
    fn tampered_digest_rejected() {
        let (mut cert, ias_key, measurement) = make_range_cert(5, 3);
        cert.header_digests[1] = hash_bytes(b"forged-hdr");
        assert_eq!(
            cert.verify(&ias_key, &measurement),
            Err(CertError::BadSignature)
        );
    }

    #[test]
    fn genesis_range_rejected() {
        // Ranges must start above genesis: height 0 is the trust root, not
        // a certified height.
        let (mut cert, ias_key, measurement) = make_range_cert(5, 3);
        cert.first = 0;
        assert_eq!(
            cert.verify(&ias_key, &measurement),
            Err(CertError::EmptyRange)
        );
    }

    #[test]
    fn inverted_span_rejected() {
        let (mut cert, ias_key, measurement) = make_range_cert(5, 3);
        cert.first = cert.last + 1;
        assert_eq!(
            cert.verify(&ias_key, &measurement),
            Err(CertError::EmptyRange)
        );
    }

    #[test]
    fn binding_commits_to_order() {
        let digests = [hash_bytes(b"a"), hash_bytes(b"b")];
        let swapped = [hash_bytes(b"b"), hash_bytes(b"a")];
        let anchor = hash_bytes(b"anchor");
        assert_ne!(
            RangeCert::binding_digest(&anchor, 1, 2, &digests),
            RangeCert::binding_digest(&anchor, 1, 2, &swapped)
        );
    }

    #[test]
    fn codec_round_trip() {
        let (cert, _, _) = make_range_cert(5, 3);
        let decoded = RangeCert::decode_all(&cert.to_encoded_bytes()).unwrap();
        assert_eq!(decoded, cert);
    }
}
