//! Certification error types.

use std::fmt;

use dcert_chain::ChainError;
use dcert_merkle::ProofError;
use dcert_primitives::error::CodecError;
use dcert_sgx::SgxError;

/// Why a certificate failed to construct or verify.
///
/// Every arm of Algorithms 2–5 that can reject maps to a variant, so tests
/// can assert *which* check caught a forgery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertError {
    /// The attestation report failed IAS-signature verification.
    Attestation(SgxError),
    /// The report's measurement is not the expected certificate program.
    WrongMeasurement,
    /// The report does not bind the certificate's `pk_enc`.
    KeyBindingMismatch,
    /// The certificate signature does not verify under `pk_enc`.
    BadSignature,
    /// The certificate digest does not match the presented header/index.
    DigestMismatch,
    /// A non-genesis parent was presented without a certificate.
    MissingPrevCert,
    /// The claimed parent of the genesis block did not match the
    /// hard-coded genesis digest.
    GenesisMismatch,
    /// Header-level validation failed (linkage, height, consensus, tx root,
    /// tx signatures).
    Chain(ChainError),
    /// A Merkle proof failed.
    Proof(ProofError),
    /// The supplied read set disagrees with its authenticated proof.
    ReadSetMismatch,
    /// Replayed execution did not reproduce the block's state root.
    StateRootMismatch,
    /// The claimed index digest does not match the recomputed one.
    IndexDigestMismatch,
    /// The claimed write set does not transform the parent state root into
    /// the block's state root.
    WriteSetMismatch,
    /// No verifier is registered for the named index type.
    UnknownIndexType(String),
    /// An index update's auxiliary data failed to decode or apply.
    BadIndexUpdate(&'static str),
    /// The enclave has not completed key initialization.
    NotInitialized,
    /// A request or response failed to (de)serialize at the ECall boundary.
    Codec(CodecError),
    /// The enclave rejected the request; the reason string is the trusted
    /// program's error rendered across the byte-level boundary.
    EnclaveRejected(String),
    /// The certification pipeline has stopped accepting work
    /// (shutdown in progress or a stage died).
    PipelineClosed,
    /// The presented header violates the chain-selection rule
    /// (Algorithm 3, line 8).
    ChainSelection {
        /// Height the client already trusts.
        current: u64,
        /// Height that was offered.
        offered: u64,
    },
    /// The publisher could not confirm delivery of a certificate within
    /// its retry budget; the message went to the dead-letter report.
    PublishFailed {
        /// Publish attempts made (initial try + retries).
        attempts: u32,
    },
    /// The enclave refused to sign at or below a height it already
    /// signed — the monotonicity guard that makes a restarted CI unable
    /// to double-issue (sealed state carries the watermark).
    HeightRegression {
        /// Highest block height the enclave has signed.
        last_signed: u64,
        /// Height that was requested.
        offered: u64,
    },
    /// A range certification or fold request carried no blocks/ranges.
    EmptyRange,
    /// Height arithmetic on a range span overflowed `u64`.
    HeightOverflow,
    /// A range certificate's declared span does not match the number of
    /// header digests it carries.
    RangeLengthMismatch,
    /// A folded range's anchor digest does not equal the digest of the
    /// preceding range's last header (or the fold anchor).
    RangeAnchorMismatch,
    /// Folded ranges are not height-contiguous.
    RangeDiscontinuity {
        /// Height the next range was expected to start at.
        expected: u64,
        /// Height it actually declared.
        found: u64,
    },
    /// The sharded fleet failed outside the enclave boundary.
    Shard(ShardError),
}

impl fmt::Display for CertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertError::Attestation(e) => write!(f, "attestation failed: {e}"),
            CertError::WrongMeasurement => write!(f, "unexpected enclave measurement"),
            CertError::KeyBindingMismatch => {
                write!(f, "attestation report does not bind pk_enc")
            }
            CertError::BadSignature => write!(f, "certificate signature invalid"),
            CertError::DigestMismatch => write!(f, "certificate digest mismatch"),
            CertError::MissingPrevCert => write!(f, "missing previous certificate"),
            CertError::GenesisMismatch => write!(f, "genesis digest mismatch"),
            CertError::Chain(e) => write!(f, "block validation failed: {e}"),
            CertError::Proof(e) => write!(f, "merkle proof failed: {e}"),
            CertError::ReadSetMismatch => {
                write!(f, "read set disagrees with its authenticated proof")
            }
            CertError::StateRootMismatch => {
                write!(
                    f,
                    "replayed execution does not reach the claimed state root"
                )
            }
            CertError::IndexDigestMismatch => write!(f, "index digest mismatch"),
            CertError::WriteSetMismatch => {
                write!(f, "write set does not connect the certified state roots")
            }
            CertError::UnknownIndexType(name) => write!(f, "unknown index type: {name}"),
            CertError::BadIndexUpdate(why) => write!(f, "bad index update: {why}"),
            CertError::NotInitialized => write!(f, "enclave key not initialized"),
            CertError::Codec(e) => write!(f, "ecall boundary codec error: {e}"),
            CertError::EnclaveRejected(reason) => write!(f, "enclave rejected: {reason}"),
            CertError::PipelineClosed => write!(f, "certification pipeline closed"),
            CertError::ChainSelection { current, offered } => write!(
                f,
                "chain selection violated: have height {current}, offered {offered}"
            ),
            CertError::PublishFailed { attempts } => {
                write!(f, "publish unconfirmed after {attempts} attempts")
            }
            CertError::HeightRegression {
                last_signed,
                offered,
            } => write!(
                f,
                "height regression: already signed {last_signed}, offered {offered}"
            ),
            CertError::EmptyRange => write!(f, "range request carries no blocks"),
            CertError::HeightOverflow => write!(f, "range height arithmetic overflowed"),
            CertError::RangeLengthMismatch => {
                write!(f, "range span disagrees with its digest count")
            }
            CertError::RangeAnchorMismatch => {
                write!(f, "range certificate anchored at the wrong digest")
            }
            CertError::RangeDiscontinuity { expected, found } => write!(
                f,
                "range discontinuity: expected first height {expected}, found {found}"
            ),
            CertError::Shard(e) => write!(f, "shard fleet failed: {e}"),
        }
    }
}

impl std::error::Error for CertError {}

/// Untrusted-side failures of the sharded certification fleet: plan
/// construction, worker threads, and durable-state plumbing. Enclave-side
/// refusals surface as ordinary [`CertError`] variants instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// A shard plan was requested over an empty height span.
    EmptySpan {
        /// First height of the requested span.
        first: u64,
        /// Last height of the requested span.
        last: u64,
    },
    /// A shard plan was requested with zero shards.
    ZeroShards,
    /// A fleet was configured with a zero chunk size.
    ZeroChunk,
    /// Height arithmetic on the plan overflowed `u64`.
    HeightOverflow,
    /// A block required by the plan was not offered by the caller.
    MissingBlock {
        /// Height of the missing block.
        height: u64,
    },
    /// A shard worker thread failed; the reason is the worker's error
    /// rendered to a string (thread boundaries erase the concrete type).
    Worker {
        /// Index of the failed shard.
        shard: usize,
        /// Rendered failure reason.
        reason: String,
    },
    /// The failure plan killed this shard before it finished its ranges.
    Killed {
        /// Index of the killed shard.
        shard: usize,
    },
    /// The durable store rejected a watermark or seal write.
    Store(String),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::EmptySpan { first, last } => {
                write!(f, "empty shard span: first {first}, last {last}")
            }
            ShardError::ZeroShards => write!(f, "shard plan needs at least one shard"),
            ShardError::ZeroChunk => write!(f, "shard fleet needs a non-zero chunk size"),
            ShardError::HeightOverflow => write!(f, "shard plan height arithmetic overflowed"),
            ShardError::MissingBlock { height } => {
                write!(f, "block at height {height} missing from offered chain")
            }
            ShardError::Worker { shard, reason } => {
                write!(f, "shard {shard} worker failed: {reason}")
            }
            ShardError::Killed { shard } => write!(f, "shard {shard} killed by failure plan"),
            ShardError::Store(reason) => write!(f, "shard store write failed: {reason}"),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<ShardError> for CertError {
    fn from(e: ShardError) -> Self {
        CertError::Shard(e)
    }
}

impl From<SgxError> for CertError {
    fn from(e: SgxError) -> Self {
        CertError::Attestation(e)
    }
}

impl From<ChainError> for CertError {
    fn from(e: ChainError) -> Self {
        CertError::Chain(e)
    }
}

impl From<ProofError> for CertError {
    fn from(e: ProofError) -> Self {
        CertError::Proof(e)
    }
}

impl From<CodecError> for CertError {
    fn from(e: CodecError) -> Self {
        CertError::Codec(e)
    }
}
