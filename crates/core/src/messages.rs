//! The ECall boundary protocol, plus the network wire format.
//!
//! Real SGX ECalls marshal opaque byte buffers; the simulated enclave does
//! the same (and charges the cost model by byte), so every request and
//! response here has a canonical binary encoding. The message sizes are the
//! "data passed into the enclave" whose growth drives the enclave-overhead
//! curves of Figures 8–9.
//!
//! [`NetMessage`](crate::network::NetMessage) gets its canonical encoding
//! here too: a real deployment ships certificates as bytes, and the
//! fault-injection layer ([`crate::netsim`]) corrupts traffic at exactly
//! this byte level — a flipped bit either breaks the framing (the receiver
//! drops the message as malformed) or yields a decodable-but-forged
//! message that the client's certificate checks must catch.

use dcert_chain::{Block, BlockHeader};
use dcert_merkle::SmtProof;
use dcert_primitives::codec::{decode_seq, encode_seq, Decode, Encode, Reader};
use dcert_primitives::error::CodecError;
use dcert_primitives::hash::Hash;
use dcert_primitives::keys::{PublicKey, Signature};
use dcert_vm::StateKey;

use crate::cert::Certificate;
use crate::range::RangeCert;

/// A pre-state read set: `{r}_i` of Algorithm 1.
pub type ReadSet = Vec<(StateKey, Option<Vec<u8>>)>;

/// A write set: `{w}_i` (`None` = deletion).
pub type WriteSet = Vec<(StateKey, Option<Vec<u8>>)>;

/// One link of a batch request: a block with its read set and state
/// proof, validated against the preceding link's (or the batch anchor's)
/// header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchLink {
    /// The block `blk_i`.
    pub block: Block,
    /// Its authenticated read set `{r}_i`.
    pub reads: ReadSet,
    /// Its update proof `π_i` against the preceding state root.
    pub state_proof: SmtProof,
}

/// The block-validation inputs shared by Algorithms 2 and 4: everything
/// `blk_verify_t` consumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockInput {
    /// The previous block's header `hdr_{i-1}`.
    pub prev_header: BlockHeader,
    /// The previous block's certificate (absent iff parent is genesis).
    pub prev_cert: Option<Certificate>,
    /// The new block `blk_i` (header and transactions).
    pub block: Block,
    /// The authenticated read set `{r}_i`.
    pub reads: ReadSet,
    /// The update proof `π_i` over reads ∪ writes against
    /// `prev_header.state_root`.
    pub state_proof: SmtProof,
}

/// The per-index inputs shared by Algorithms 4 and 5.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexInput {
    /// Registered verifier type (e.g. `"history"`, `"inverted"`).
    pub index_type: String,
    /// `H_{i-1}^{idx}`.
    pub prev_digest: Hash,
    /// `cert_{i-1}^{idx}` (absent iff parent is genesis).
    pub prev_cert: Option<Certificate>,
    /// The claimed `H_i^{idx}`.
    pub new_digest: Hash,
    /// Index-specific update proof (`π_i^{idx}`), encoded by the verifier's
    /// companion prover.
    pub aux: Vec<u8>,
}

/// A request crossing into the enclave.
// Variant sizes intentionally differ: requests are built once and
// immediately serialized across the boundary, so boxing buys nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EcallRequest {
    /// Generate `(sk_enc, pk_enc)` inside the enclave; returns `pk_enc`.
    Init,
    /// Algorithm 2: validate the chain transition and sign `H(hdr_i)`.
    SigGen(BlockInput),
    /// Algorithm 4: validate the chain transition *and* one index update;
    /// sign `H(H(hdr_i) ‖ H_i^{idx})`.
    AugSigGen(BlockInput, IndexInput),
    /// Algorithm 5 (per-index step): reuse the block certificate instead of
    /// replaying; validate one index update; sign `H(H(hdr_i) ‖ H_i^{idx})`.
    IdxSigGen(Box<IdxRequest>),
    /// Batch extension: validate `links` as consecutive chain transitions
    /// from the anchor `(prev_header, prev_cert)` and sign the **last**
    /// header — amortizing the ECall and recursive-verification cost. The
    /// recursive trust argument is unchanged: the final certificate still
    /// vouches for the whole prefix.
    BatchSigGen {
        /// The batch anchor's header.
        prev_header: BlockHeader,
        /// The anchor's certificate (absent iff the anchor is genesis).
        prev_cert: Option<Certificate>,
        /// Consecutive blocks extending the anchor.
        links: Vec<BatchLink>,
    },
    /// Shard-fleet range step: validate `links` as consecutive chain
    /// transitions from an *uncertified* anchor header and sign the range
    /// binding digest (see [`RangeCert`]) over every validated header
    /// digest. Unlike `BatchSigGen`, no anchor certificate exists yet —
    /// anchor authenticity is established later, when the aggregator
    /// chains ranges digest-to-digest.
    RangeSigGen {
        /// The uncertified anchor header (height `first - 1`).
        anchor: BlockHeader,
        /// Consecutive blocks extending the anchor.
        links: Vec<BatchLink>,
    },
    /// Aggregator step: verify the anchor certificate (or genesis digest),
    /// verify and chain the shard [`RangeCert`]s digest-to-digest, then
    /// sign every folded header digest — producing the exact per-height
    /// signatures sequential recursion would have produced.
    FoldRanges {
        /// Header the first range must anchor at.
        anchor: BlockHeader,
        /// The anchor's own certificate (absent iff the anchor is genesis).
        anchor_cert: Option<Certificate>,
        /// Contiguous shard ranges, ordered by height.
        ranges: Vec<RangeCert>,
    },
}

/// The hierarchical per-index request (Algorithm 5, loop body).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdxRequest {
    /// `hdr_{i-1}`.
    pub prev_header: BlockHeader,
    /// `hdr_i`.
    pub header: BlockHeader,
    /// The block itself (keyword-style verifiers read transaction bodies).
    pub block: Block,
    /// `cert_i` — the block certificate produced by `gen_cert`.
    pub block_cert: Certificate,
    /// The claimed block write set `{w}_i`.
    pub writes: WriteSet,
    /// Proof of `{w}_i` against `prev_header.state_root`.
    pub write_proof: SmtProof,
    /// The index-update inputs.
    pub index: IndexInput,
}

/// A response crossing out of the enclave.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EcallResponse {
    /// `Init` succeeded; here is `pk_enc`.
    Initialized(PublicKey),
    /// A signature over the requested digest.
    Signature(Signature),
    /// The trusted program rejected the request.
    Rejected(String),
    /// One signature per folded header digest, ordered by height
    /// (`FoldRanges` response).
    Signatures(Vec<Signature>),
}

// --- codec ----------------------------------------------------------------

fn encode_kv_set(set: &[(StateKey, Option<Vec<u8>>)], out: &mut Vec<u8>) {
    encode_seq(set, out);
}

#[allow(clippy::type_complexity)]
fn decode_kv_set(r: &mut Reader<'_>) -> Result<Vec<(StateKey, Option<Vec<u8>>)>, CodecError> {
    decode_seq(r)
}

impl Encode for BatchLink {
    fn encode(&self, out: &mut Vec<u8>) {
        self.block.encode(out);
        encode_kv_set(&self.reads, out);
        self.state_proof.encode(out);
    }
}

impl Decode for BatchLink {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(BatchLink {
            block: Block::decode(r)?,
            reads: decode_kv_set(r)?,
            state_proof: SmtProof::decode(r)?,
        })
    }
}

impl Encode for BlockInput {
    fn encode(&self, out: &mut Vec<u8>) {
        self.prev_header.encode(out);
        self.prev_cert.encode(out);
        self.block.encode(out);
        encode_kv_set(&self.reads, out);
        self.state_proof.encode(out);
    }
}

impl Decode for BlockInput {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(BlockInput {
            prev_header: BlockHeader::decode(r)?,
            prev_cert: Option::<Certificate>::decode(r)?,
            block: Block::decode(r)?,
            reads: decode_kv_set(r)?,
            state_proof: SmtProof::decode(r)?,
        })
    }
}

impl Encode for IndexInput {
    fn encode(&self, out: &mut Vec<u8>) {
        self.index_type.encode(out);
        self.prev_digest.encode(out);
        self.prev_cert.encode(out);
        self.new_digest.encode(out);
        self.aux.encode(out);
    }
}

impl Decode for IndexInput {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(IndexInput {
            index_type: String::decode(r)?,
            prev_digest: Hash::decode(r)?,
            prev_cert: Option::<Certificate>::decode(r)?,
            new_digest: Hash::decode(r)?,
            aux: Vec::<u8>::decode(r)?,
        })
    }
}

impl Encode for IdxRequest {
    fn encode(&self, out: &mut Vec<u8>) {
        self.prev_header.encode(out);
        self.header.encode(out);
        self.block.encode(out);
        self.block_cert.encode(out);
        encode_kv_set(&self.writes, out);
        self.write_proof.encode(out);
        self.index.encode(out);
    }
}

impl Decode for IdxRequest {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(IdxRequest {
            prev_header: BlockHeader::decode(r)?,
            header: BlockHeader::decode(r)?,
            block: Block::decode(r)?,
            block_cert: Certificate::decode(r)?,
            writes: decode_kv_set(r)?,
            write_proof: SmtProof::decode(r)?,
            index: IndexInput::decode(r)?,
        })
    }
}

impl Encode for EcallRequest {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            EcallRequest::Init => out.push(0),
            EcallRequest::SigGen(input) => {
                out.push(1);
                input.encode(out);
            }
            EcallRequest::AugSigGen(block, index) => {
                out.push(2);
                block.encode(out);
                index.encode(out);
            }
            EcallRequest::IdxSigGen(req) => {
                out.push(3);
                req.encode(out);
            }
            EcallRequest::BatchSigGen {
                prev_header,
                prev_cert,
                links,
            } => {
                out.push(4);
                prev_header.encode(out);
                prev_cert.encode(out);
                encode_seq(links, out);
            }
            EcallRequest::RangeSigGen { anchor, links } => {
                out.push(5);
                anchor.encode(out);
                encode_seq(links, out);
            }
            EcallRequest::FoldRanges {
                anchor,
                anchor_cert,
                ranges,
            } => {
                out.push(6);
                anchor.encode(out);
                anchor_cert.encode(out);
                encode_seq(ranges, out);
            }
        }
    }
}

impl Decode for EcallRequest {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.take_byte()? {
            0 => Ok(EcallRequest::Init),
            1 => Ok(EcallRequest::SigGen(BlockInput::decode(r)?)),
            2 => Ok(EcallRequest::AugSigGen(
                BlockInput::decode(r)?,
                IndexInput::decode(r)?,
            )),
            3 => Ok(EcallRequest::IdxSigGen(Box::new(IdxRequest::decode(r)?))),
            4 => Ok(EcallRequest::BatchSigGen {
                prev_header: BlockHeader::decode(r)?,
                prev_cert: Option::<Certificate>::decode(r)?,
                links: decode_seq(r)?,
            }),
            5 => Ok(EcallRequest::RangeSigGen {
                anchor: BlockHeader::decode(r)?,
                links: decode_seq(r)?,
            }),
            6 => Ok(EcallRequest::FoldRanges {
                anchor: BlockHeader::decode(r)?,
                anchor_cert: Option::<Certificate>::decode(r)?,
                ranges: decode_seq(r)?,
            }),
            other => Err(CodecError::InvalidTag(other)),
        }
    }
}

impl Encode for crate::network::NetMessage {
    fn encode(&self, out: &mut Vec<u8>) {
        use crate::network::NetMessage;
        match self {
            NetMessage::Block(block) => {
                out.push(0);
                block.encode(out);
            }
            NetMessage::BlockCert { header, cert } => {
                out.push(1);
                header.encode(out);
                cert.encode(out);
            }
            NetMessage::IndexCert {
                header,
                index,
                digest,
                cert,
            } => {
                out.push(2);
                header.encode(out);
                index.encode(out);
                digest.encode(out);
                cert.encode(out);
            }
            NetMessage::CertRequest { from, to } => {
                out.push(3);
                from.encode(out);
                to.encode(out);
            }
            NetMessage::Shutdown => out.push(4),
            NetMessage::Serve { payload } => {
                out.push(5);
                payload.encode(out);
            }
        }
    }
}

impl Decode for crate::network::NetMessage {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        use crate::network::NetMessage;
        match r.take_byte()? {
            0 => Ok(NetMessage::Block(Block::decode(r)?)),
            1 => Ok(NetMessage::BlockCert {
                header: BlockHeader::decode(r)?,
                cert: Certificate::decode(r)?,
            }),
            2 => Ok(NetMessage::IndexCert {
                header: BlockHeader::decode(r)?,
                index: String::decode(r)?,
                digest: Hash::decode(r)?,
                cert: Certificate::decode(r)?,
            }),
            3 => Ok(NetMessage::CertRequest {
                from: u64::decode(r)?,
                to: u64::decode(r)?,
            }),
            4 => Ok(NetMessage::Shutdown),
            5 => Ok(NetMessage::Serve {
                payload: Vec::<u8>::decode(r)?,
            }),
            other => Err(CodecError::InvalidTag(other)),
        }
    }
}

impl Encode for EcallResponse {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            EcallResponse::Initialized(pk) => {
                out.push(0);
                pk.encode(out);
            }
            EcallResponse::Signature(sig) => {
                out.push(1);
                sig.encode(out);
            }
            EcallResponse::Rejected(reason) => {
                out.push(2);
                reason.encode(out);
            }
            EcallResponse::Signatures(sigs) => {
                out.push(3);
                encode_seq(sigs, out);
            }
        }
    }
}

impl Decode for EcallResponse {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.take_byte()? {
            0 => Ok(EcallResponse::Initialized(PublicKey::decode(r)?)),
            1 => Ok(EcallResponse::Signature(Signature::decode(r)?)),
            2 => Ok(EcallResponse::Rejected(String::decode(r)?)),
            3 => Ok(EcallResponse::Signatures(decode_seq(r)?)),
            other => Err(CodecError::InvalidTag(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcert_chain::consensus::ConsensusProof;
    use dcert_primitives::hash::{hash_bytes, Address};

    fn header() -> BlockHeader {
        BlockHeader {
            height: 1,
            prev_hash: hash_bytes(b"prev"),
            state_root: hash_bytes(b"state"),
            tx_root: Hash::ZERO,
            timestamp: 7,
            miner: Address::from_seed(1),
            consensus: ConsensusProof::Pow {
                difficulty_bits: 2,
                nonce: 3,
            },
        }
    }

    #[test]
    fn init_round_trip() {
        let req = EcallRequest::Init;
        assert_eq!(
            EcallRequest::decode_all(&req.to_encoded_bytes()).unwrap(),
            req
        );
    }

    #[test]
    fn sig_gen_round_trip() {
        let input = BlockInput {
            prev_header: header(),
            prev_cert: None,
            block: Block {
                header: header(),
                txs: Vec::new(),
            },
            reads: vec![(StateKey::new("kv", b"a"), Some(b"1".to_vec()))],
            state_proof: dcert_merkle::SparseMerkleTree::new().prove(&[hash_bytes(b"k")]),
        };
        let req = EcallRequest::SigGen(input);
        assert_eq!(
            EcallRequest::decode_all(&req.to_encoded_bytes()).unwrap(),
            req
        );
    }

    #[test]
    fn response_round_trip() {
        let rejected = EcallResponse::Rejected("nope".to_owned());
        assert_eq!(
            EcallResponse::decode_all(&rejected.to_encoded_bytes()).unwrap(),
            rejected
        );
    }

    #[test]
    fn junk_is_rejected() {
        assert!(EcallRequest::decode_all(&[42]).is_err());
        assert!(EcallResponse::decode_all(&[42]).is_err());
    }

    #[test]
    fn range_sig_gen_round_trip() {
        let req = EcallRequest::RangeSigGen {
            anchor: header(),
            links: vec![BatchLink {
                block: Block {
                    header: header(),
                    txs: Vec::new(),
                },
                reads: vec![(StateKey::new("kv", b"a"), None)],
                state_proof: dcert_merkle::SparseMerkleTree::new().prove(&[hash_bytes(b"k")]),
            }],
        };
        assert_eq!(
            EcallRequest::decode_all(&req.to_encoded_bytes()).unwrap(),
            req
        );
    }

    #[test]
    fn fold_ranges_round_trip() {
        use dcert_primitives::keys::Keypair;

        let kp = Keypair::from_seed([4; 32]);
        let range = RangeCert {
            pk_range: kp.public(),
            report: dcert_sgx::AttestationReport {
                measurement: hash_bytes(b"m"),
                report_data: hash_bytes(b"d"),
                signature: kp.sign(b"r"),
            },
            anchor_digest: hash_bytes(b"anchor"),
            first: 1,
            last: 2,
            header_digests: vec![hash_bytes(b"h1"), hash_bytes(b"h2")],
            signature: kp.sign(b"s"),
        };
        let req = EcallRequest::FoldRanges {
            anchor: header(),
            anchor_cert: None,
            ranges: vec![range],
        };
        assert_eq!(
            EcallRequest::decode_all(&req.to_encoded_bytes()).unwrap(),
            req
        );
    }

    #[test]
    fn signatures_round_trip() {
        use dcert_primitives::keys::Keypair;

        let kp = Keypair::from_seed([5; 32]);
        let resp = EcallResponse::Signatures(vec![kp.sign(b"a"), kp.sign(b"b")]);
        assert_eq!(
            EcallResponse::decode_all(&resp.to_encoded_bytes()).unwrap(),
            resp
        );
    }

    #[test]
    fn net_message_round_trips() {
        use crate::network::NetMessage;
        use dcert_primitives::keys::Keypair;

        let kp = Keypair::from_seed([9; 32]);
        let cert = Certificate {
            pk_enc: kp.public(),
            report: dcert_sgx::AttestationReport {
                measurement: hash_bytes(b"m"),
                report_data: hash_bytes(b"d"),
                signature: kp.sign(b"r"),
            },
            digest: header().hash(),
            signature: kp.sign(b"s"),
        };
        let messages = [
            NetMessage::Block(Block {
                header: header(),
                txs: Vec::new(),
            }),
            NetMessage::BlockCert {
                header: header(),
                cert: cert.clone(),
            },
            NetMessage::IndexCert {
                header: header(),
                index: "history".into(),
                digest: hash_bytes(b"idx"),
                cert,
            },
            NetMessage::CertRequest { from: 3, to: 9 },
            NetMessage::Shutdown,
            NetMessage::Serve {
                payload: vec![0xDE, 0xAD, 0xBE, 0xEF],
            },
        ];
        for message in messages {
            assert_eq!(
                NetMessage::decode_all(&message.to_encoded_bytes()).unwrap(),
                message
            );
        }
        assert!(NetMessage::decode_all(&[0xEE]).is_err());
    }
}
