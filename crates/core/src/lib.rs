//! DCert: decentralized certification for superlight blockchain clients.
//!
//! This crate is the paper's contribution (Ji, Xu, Zhang, Xu —
//! Middleware '22): an SGX-backed framework in which a *Certificate
//! Issuer* full node recursively certifies every block of an existing
//! blockchain, so that a *superlight client* can validate the whole chain
//! — and rich verifiable queries over it — from a single constant-size
//! certificate.
//!
//! # Architecture
//!
//! - [`Certificate`]: `⟨pk_enc, rep, dig, sig⟩` (Section 3.3),
//! - [`CertProgram`]: the trusted in-enclave program — Algorithm 2
//!   (`ecall_sig_gen` / `blk_verify_t` / `cert_verify_t`), Algorithm 4
//!   (augmented), Algorithm 5's per-index step (hierarchical),
//! - [`CertificateIssuer`]: the untrusted full-node half — Algorithm 1's
//!   pre-processing, enclave boot, attestation, and certificate assembly,
//! - [`CertPipeline`]: the staged, concurrent certification engine — a
//!   preparer pool feeding a single enclave-bound issuer stage over
//!   bounded channels, byte-identical to sequential issuance,
//! - [`SuperlightClient`]: Algorithm 3 plus index-certificate tracking,
//! - [`IndexVerifier`]: the extension point through which authenticated
//!   indexes (in `dcert-query`) plug their trusted update checks into the
//!   enclave.
//!
//! # Example: certify a chain and validate it in constant cost
//!
//! ```
//! use std::sync::Arc;
//! use dcert_chain::{FullNode, GenesisBuilder, ProofOfWork, Transaction};
//! use dcert_core::{expected_measurement, CertificateIssuer, SuperlightClient};
//! use dcert_primitives::hash::Address;
//! use dcert_primitives::keys::Keypair;
//! use dcert_sgx::{AttestationService, CostModel};
//! use dcert_vm::{ContractRegistry, Executor};
//!
//! // Shared chain semantics.
//! let mut registry = ContractRegistry::new();
//! registry.register(Arc::new(dcert_vm::testing::CounterContract));
//! let executor = Executor::new(Arc::new(registry));
//! let engine = Arc::new(ProofOfWork::new(4));
//! let (genesis, state) = GenesisBuilder::new().build();
//!
//! // A miner, the IAS, and a Certificate Issuer.
//! let mut miner = FullNode::new(&genesis, state.clone(), executor.clone(),
//!     engine.clone(), Address::from_seed(1));
//! let mut ias = AttestationService::with_seed([42; 32]);
//! let mut ci = CertificateIssuer::new(&genesis, state, executor, engine,
//!     Vec::new(), &mut ias, CostModel::zero())?;
//!
//! // Mine and certify two blocks.
//! let key = Keypair::from_seed([7; 32]);
//! let tx = Transaction::sign(&key, 0, "counter", b"bump".to_vec());
//! let b1 = miner.mine(vec![tx], 1)?;
//! let (cert1, _) = ci.certify_block(&b1)?;
//! let b2 = miner.mine(Vec::new(), 2)?;
//! let (cert2, _) = ci.certify_block(&b2)?;
//!
//! // A superlight client validates the chain from the latest certificate.
//! let mut client = SuperlightClient::new(ias.public_key(), expected_measurement());
//! client.validate_chain(&b2.header, &cert2)?;
//! assert_eq!(client.height(), Some(2));
//! # let _ = cert1;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)
)]

pub mod cert;
pub mod ci;
pub mod error;
pub mod messages;
pub mod netsim;
pub mod network;
pub mod persist;
pub mod pipeline;
pub mod program;
pub mod quorum;
pub mod range;
pub mod shard;
pub mod superlight;
pub mod verifier;

pub use cert::Certificate;
pub use ci::{CertBreakdown, CertificateIssuer};
pub use error::{CertError, ShardError};
pub use messages::{BatchLink, BlockInput, EcallRequest, EcallResponse, IdxRequest, IndexInput};
pub use netsim::{FaultConfig, NetStats, Partition, SimNet};
pub use network::{CertArchive, Gossip, NetMessage, Transport};
pub use persist::RecoverError;
pub use pipeline::{
    CertJob, CertPipeline, DeadLetter, ParallelismConfig, PipelineConfig, PipelineReport,
    PublishPolicy,
};
pub use program::{expected_measurement, CertProgram, CODE_IDENTITY};
pub use quorum::{QuorumClient, TrustDomain};
pub use range::RangeCert;
pub use shard::{
    HeightRange, ShardFailurePlan, ShardFleetConfig, ShardKill, ShardPlan, ShardedCertEngine,
    SharedStore,
};
pub use superlight::{SuperlightClient, SyncOutcome};
pub use verifier::IndexVerifier;
