//! Multi-vendor certificate quorums.
//!
//! Section 6 of the paper notes that although the chain's decentralization
//! is independent of DCert, "one may wish to avoid relying solely on
//! Intel" — DCert can run on any TEE. This module implements the natural
//! client-side consequence: a [`QuorumClient`] accepts a block only when
//! certificates from **k distinct trust domains** (different attestation
//! roots and/or enclave programs — e.g. one SGX CI and one TrustZone CI)
//! agree on the same header digest. A single compromised TEE vendor can
//! then no longer forge chain state on its own.

use std::collections::HashMap;

use dcert_chain::BlockHeader;
use dcert_primitives::hash::Hash;
use dcert_primitives::keys::PublicKey;

use crate::cert::Certificate;
use crate::error::CertError;
use crate::superlight::SuperlightClient;

/// One trust domain: an attestation root plus the expected program
/// measurement within it (e.g. "Intel IAS + SGX build" or
/// "vendor X's attestation + TrustZone build").
#[derive(Debug, Clone)]
pub struct TrustDomain {
    /// Human-readable label used in errors and reporting.
    pub name: String,
    /// The attestation service root key of this domain.
    pub ias_key: PublicKey,
    /// The expected enclave measurement in this domain.
    pub measurement: Hash,
}

/// A superlight client requiring agreement of `threshold` distinct trust
/// domains before adopting a block.
///
/// Internally one [`SuperlightClient`] per domain tracks that domain's
/// view; a block is adopted when at least `threshold` domains validated a
/// certificate over the **same header digest**.
#[derive(Debug, Clone)]
pub struct QuorumClient {
    domains: Vec<(TrustDomain, SuperlightClient)>,
    threshold: usize,
    adopted: Option<BlockHeader>,
}

impl QuorumClient {
    /// Creates a quorum client.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero or exceeds the number of domains —
    /// that is a configuration bug, not a runtime condition.
    pub fn new(domains: Vec<TrustDomain>, threshold: usize) -> Self {
        assert!(
            threshold >= 1 && threshold <= domains.len(),
            "threshold must be within 1..=#domains"
        );
        let domains = domains
            .into_iter()
            .map(|d| {
                let client = SuperlightClient::new(d.ias_key, d.measurement);
                (d, client)
            })
            .collect();
        QuorumClient {
            domains,
            threshold,
            adopted: None,
        }
    }

    /// The quorum threshold.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// The adopted chain height, if any block reached quorum.
    pub fn height(&self) -> Option<u64> {
        self.adopted.as_ref().map(|h| h.height)
    }

    /// The adopted header.
    pub fn latest_header(&self) -> Option<&BlockHeader> {
        self.adopted.as_ref()
    }

    /// Validates `certs` — one `(domain name, certificate)` pair per
    /// participating CI — against `header`, and adopts the header if at
    /// least `threshold` distinct domains accept.
    ///
    /// # Errors
    ///
    /// - [`CertError::ChainSelection`] when the header does not extend the
    ///   adopted chain,
    /// - the *first* per-domain error when fewer than `threshold` domains
    ///   accept (so callers can see why the quorum failed).
    pub fn validate_chain(
        &mut self,
        header: &BlockHeader,
        certs: &[(String, Certificate)],
    ) -> Result<usize, CertError> {
        if let Some(current) = &self.adopted {
            if header.height <= current.height {
                return Err(CertError::ChainSelection {
                    current: current.height,
                    offered: header.height,
                });
            }
        }
        let by_name: HashMap<&str, &Certificate> =
            certs.iter().map(|(n, c)| (n.as_str(), c)).collect();
        let mut accepted = 0usize;
        let mut first_error: Option<CertError> = None;
        for (domain, client) in &mut self.domains {
            let Some(cert) = by_name.get(domain.name.as_str()) else {
                continue;
            };
            // Domain clients track their own chain views; a quorum re-offer
            // of the same height would trip their chain-selection check, so
            // validate against a scratch clone and only commit on success.
            let mut scratch = client.clone();
            match scratch.validate_chain(header, cert) {
                Ok(()) => {
                    *client = scratch;
                    accepted += 1;
                }
                Err(e) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
            }
        }
        if accepted >= self.threshold {
            self.adopted = Some(header.clone());
            Ok(accepted)
        } else {
            Err(first_error.unwrap_or(CertError::NotInitialized))
        }
    }
}
