//! Multi-vendor certificate quorums.
//!
//! Section 6 of the paper notes that although the chain's decentralization
//! is independent of DCert, "one may wish to avoid relying solely on
//! Intel" — DCert can run on any TEE. This module implements the natural
//! client-side consequence: a [`QuorumClient`] accepts a block only when
//! certificates from **k distinct trust domains** (different attestation
//! roots and/or enclave programs — e.g. one SGX CI and one TrustZone CI)
//! agree on the same header digest. A single compromised TEE vendor can
//! then no longer forge chain state on its own.

use std::collections::HashMap;

use dcert_chain::BlockHeader;
use dcert_primitives::hash::Hash;
use dcert_primitives::keys::PublicKey;

use crate::cert::Certificate;
use crate::error::CertError;
use crate::network::NetMessage;
use crate::superlight::{SuperlightClient, SyncOutcome};

/// One trust domain: an attestation root plus the expected program
/// measurement within it (e.g. "Intel IAS + SGX build" or
/// "vendor X's attestation + TrustZone build").
#[derive(Debug, Clone)]
pub struct TrustDomain {
    /// Human-readable label used in errors and reporting.
    pub name: String,
    /// The attestation service root key of this domain.
    pub ias_key: PublicKey,
    /// The expected enclave measurement in this domain.
    pub measurement: Hash,
}

/// A superlight client requiring agreement of `threshold` distinct trust
/// domains before adopting a block.
///
/// Internally one [`SuperlightClient`] per domain tracks that domain's
/// view; a block is adopted when at least `threshold` domains validated a
/// certificate over the **same header digest**.
#[derive(Debug, Clone)]
pub struct QuorumClient {
    domains: Vec<(TrustDomain, SuperlightClient)>,
    threshold: usize,
    adopted: Option<BlockHeader>,
    /// Certificates that validated under one domain but have not reached
    /// quorum yet, grouped by header digest: on a real network the
    /// domains' certificates for a height arrive interleaved and possibly
    /// out of order, so they are accumulated per-message.
    pending: HashMap<Hash, (BlockHeader, HashMap<String, Certificate>)>,
    /// Highest height any certificate message announced (gap detection,
    /// as in [`SuperlightClient`]).
    highest_seen: Option<u64>,
}

impl QuorumClient {
    /// Creates a quorum client.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero or exceeds the number of domains —
    /// that is a configuration bug, not a runtime condition.
    pub fn new(domains: Vec<TrustDomain>, threshold: usize) -> Self {
        assert!(
            threshold >= 1 && threshold <= domains.len(),
            "threshold must be within 1..=#domains"
        );
        let domains = domains
            .into_iter()
            .map(|d| {
                let client = SuperlightClient::new(d.ias_key, d.measurement);
                (d, client)
            })
            .collect();
        QuorumClient {
            domains,
            threshold,
            adopted: None,
            pending: HashMap::new(),
            highest_seen: None,
        }
    }

    /// Consumes one network message: a block certificate is attributed to
    /// the trust domain whose anchors accept it (its attestation root
    /// identifies the issuing CI), buffered, and the header adopted once
    /// `threshold` distinct domains have certified the same digest.
    pub fn on_message(&mut self, message: &NetMessage) -> SyncOutcome {
        let NetMessage::BlockCert { header, cert } = message else {
            if let Some(h) = message.height() {
                self.saw_height(h);
            }
            return SyncOutcome::Ignored;
        };
        self.saw_height(header.height);
        if self.height().is_some_and(|h| header.height <= h) {
            return SyncOutcome::Stale;
        }
        // Attribute the certificate to a domain by validation.
        let mut first_error = None;
        let mut accepted_by = None;
        for (domain, client) in &self.domains {
            let mut scratch = client.clone();
            match scratch.validate_chain(header, cert) {
                Ok(()) => {
                    accepted_by = Some(domain.name.clone());
                    break;
                }
                Err(e) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
            }
        }
        let Some(name) = accepted_by else {
            return SyncOutcome::Rejected(first_error.unwrap_or(CertError::NotInitialized));
        };
        let digest = header.hash();
        let entry = self
            .pending
            .entry(digest)
            .or_insert_with(|| (header.clone(), HashMap::new()));
        entry.1.insert(name, cert.clone());
        if entry.1.len() < self.threshold {
            return SyncOutcome::Pending;
        }
        // Quorum reached: commit each participating domain's view.
        let Some((header, certs)) = self.pending.remove(&digest) else {
            return SyncOutcome::Pending;
        };
        for (domain, client) in &mut self.domains {
            let Some(cert) = certs.get(&domain.name) else {
                continue;
            };
            let mut scratch = client.clone();
            if scratch.validate_chain(&header, cert).is_ok() {
                *client = scratch;
            }
        }
        let adopted_height = header.height;
        self.adopted = Some(header);
        self.pending.retain(|_, (h, _)| h.height > adopted_height);
        SyncOutcome::Adopted
    }

    /// The height gap to recover — `Some((from, to))` when certificates
    /// were announced beyond the adopted height (missed deliveries, or a
    /// quorum stuck waiting on a domain whose certificate was lost).
    pub fn needs_resync(&self) -> Option<(u64, u64)> {
        let seen = self.highest_seen?;
        let have = self.height().unwrap_or(0);
        (seen > have).then_some((have + 1, seen))
    }

    /// The re-request to publish when a gap is detected.
    pub fn resync_request(&self) -> Option<NetMessage> {
        self.needs_resync()
            .map(|(from, to)| NetMessage::CertRequest { from, to })
    }

    /// Highest height any certificate message announced.
    pub fn highest_seen(&self) -> Option<u64> {
        self.highest_seen
    }

    fn saw_height(&mut self, height: u64) {
        self.highest_seen = Some(self.highest_seen.map_or(height, |h| h.max(height)));
    }

    /// The quorum threshold.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// The adopted chain height, if any block reached quorum.
    pub fn height(&self) -> Option<u64> {
        self.adopted.as_ref().map(|h| h.height)
    }

    /// The adopted header.
    pub fn latest_header(&self) -> Option<&BlockHeader> {
        self.adopted.as_ref()
    }

    /// Validates `certs` — one `(domain name, certificate)` pair per
    /// participating CI — against `header`, and adopts the header if at
    /// least `threshold` distinct domains accept.
    ///
    /// # Errors
    ///
    /// - [`CertError::ChainSelection`] when the header does not extend the
    ///   adopted chain,
    /// - the *first* per-domain error when fewer than `threshold` domains
    ///   accept (so callers can see why the quorum failed).
    pub fn validate_chain(
        &mut self,
        header: &BlockHeader,
        certs: &[(String, Certificate)],
    ) -> Result<usize, CertError> {
        if let Some(current) = &self.adopted {
            if header.height <= current.height {
                return Err(CertError::ChainSelection {
                    current: current.height,
                    offered: header.height,
                });
            }
        }
        let by_name: HashMap<&str, &Certificate> =
            certs.iter().map(|(n, c)| (n.as_str(), c)).collect();
        let mut accepted = 0usize;
        let mut first_error: Option<CertError> = None;
        for (domain, client) in &mut self.domains {
            let Some(cert) = by_name.get(domain.name.as_str()) else {
                continue;
            };
            // Domain clients track their own chain views; a quorum re-offer
            // of the same height would trip their chain-selection check, so
            // validate against a scratch clone and only commit on success.
            let mut scratch = client.clone();
            match scratch.validate_chain(header, cert) {
                Ok(()) => {
                    *client = scratch;
                    accepted += 1;
                }
                Err(e) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
            }
        }
        if accepted >= self.threshold {
            self.adopted = Some(header.clone());
            Ok(accepted)
        } else {
            Err(first_error.unwrap_or(CertError::NotInitialized))
        }
    }
}
