//! Seeded, deterministic fault injection for the certification network.
//!
//! The paper's CI/SP/client roles assume certificates travel over a real
//! network, which loses, reorders, duplicates, corrupts, and partitions
//! traffic. [`SimNet`] is a [`Transport`] that injects exactly those
//! faults — per delivery, driven by an explicit RNG seed and a **virtual
//! clock** (one tick per publish), so a failure schedule is a pure
//! function of `(seed, config, publish sequence)` and every run replays
//! bit-for-bit. The chaos suite (`tests/chaos_network.rs`) leans on this:
//! a failing case is reproduced by its seed alone.
//!
//! Fault model, applied independently per (message, endpoint):
//!
//! - **partition**: while a [`Partition`] window is active, deliveries to
//!   its endpoints are lost outright (real partitions drop traffic; the
//!   client-side resync path, not the network, recovers it),
//! - **drop**: lost with probability `drop_rate`,
//! - **duplicate**: delivered twice with probability `duplicate_rate`
//!   (the copies are delayed independently, so they may also reorder),
//! - **corrupt**: with probability `corrupt_rate` the message is
//!   re-encoded ([`NetMessage`]'s canonical wire format) with one random
//!   bit flipped. If the mangled bytes still frame-decode, the forged
//!   message is delivered — the client's certificate checks must reject
//!   it; if they don't decode, the receiver drops it as garbage,
//! - **delay/reorder**: each surviving delivery is postponed by
//!   `0..=reorder_window` ticks, so messages published later can arrive
//!   earlier.
//!
//! Pending deliveries flush as the clock advances; [`SimNet::heal`]
//! disables every fault and flushes the in-flight backlog — "the network
//! heals" — after which the convergence invariant must hold.
//!
//! To add a new fault type: extend [`FaultConfig`], draw its dice inside
//! `SimState::deliveries_for` (order matters — draws must stay in a fixed
//! sequence or seeds stop replaying), and count it in [`NetStats`].

use std::collections::BTreeMap;

use crossbeam::channel::{unbounded, Receiver, Sender};
use dcert_obs::{Counter, Gauge, Registry};
use parking_lot::Mutex;

use dcert_primitives::codec::{Decode, Encode};

use crate::network::{NetMessage, Transport};

/// A scheduled network partition, in virtual-clock ticks (one tick per
/// publish). While `start <= now < end`, deliveries to `endpoints`
/// (indices in join order) are lost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// First tick of the partition window.
    pub start: u64,
    /// First tick after the window (exclusive).
    pub end: u64,
    /// Endpoints (join order) cut off during the window.
    pub endpoints: Vec<usize>,
}

impl Partition {
    fn cuts(&self, now: u64, endpoint: usize) -> bool {
        now >= self.start && now < self.end && self.endpoints.contains(&endpoint)
    }
}

/// Fault probabilities and windows for a [`SimNet`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Probability a delivery is silently lost.
    pub drop_rate: f64,
    /// Probability a delivery arrives twice.
    pub duplicate_rate: f64,
    /// Probability a delivery has one wire bit flipped.
    pub corrupt_rate: f64,
    /// Maximum extra ticks a delivery may be postponed (0 = in-order).
    pub reorder_window: u64,
    /// Scheduled partition windows.
    pub partitions: Vec<Partition>,
}

impl FaultConfig {
    /// No faults at all — a `SimNet` with this config behaves like
    /// [`Gossip`](crate::network::Gossip).
    pub fn lossless() -> Self {
        FaultConfig {
            drop_rate: 0.0,
            duplicate_rate: 0.0,
            corrupt_rate: 0.0,
            reorder_window: 0,
            partitions: Vec::new(),
        }
    }

    /// The chaos suite's default fault rates: 5% loss, reorder window 4.
    pub fn default_chaos() -> Self {
        FaultConfig {
            drop_rate: 0.05,
            duplicate_rate: 0.02,
            corrupt_rate: 0.0,
            reorder_window: 4,
            partitions: Vec::new(),
        }
    }
}

/// What the simulator did, for assertions and replay diagnostics. Two
/// runs with the same `(seed, config, publish sequence)` produce equal
/// stats — the determinism oracle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages published into the simulator.
    pub published: u64,
    /// Per-(message, endpoint) delivery attempts — one per endpoint
    /// joined at publish time, before any fault dice. The anchor of the
    /// conservation law [`NetStats::conserves_deliveries`] checks.
    pub attempted: u64,
    /// Per-endpoint deliveries that reached a live channel.
    pub delivered: u64,
    /// Deliveries that came due after their endpoint hung up (the channel
    /// was dropped) — scheduled, never received by anyone.
    pub undeliverable: u64,
    /// Deliveries lost to `drop_rate`.
    pub dropped: u64,
    /// Extra deliveries created by `duplicate_rate`.
    pub duplicated: u64,
    /// Deliveries with a bit flipped that still decoded (and were
    /// delivered as forged messages).
    pub corrupted: u64,
    /// Deliveries whose flipped bit broke the framing (receiver dropped
    /// them as malformed).
    pub garbled: u64,
    /// Deliveries postponed by at least one tick.
    pub delayed: u64,
    /// Deliveries lost to an active partition window.
    pub partitioned: u64,
}

impl NetStats {
    /// The delivery conservation law: every attempt is accounted for
    /// exactly once. Attempts survive into scheduled copies (plus one
    /// extra per duplication) unless they were partitioned, dropped, or
    /// garbled; every scheduled copy is eventually delivered,
    /// undeliverable, or still in flight (`in_flight` =
    /// [`SimNet::in_flight`] at the moment these stats were read).
    ///
    /// `tests/chaos_network.rs` pins this as a property over arbitrary
    /// fault schedules; it is what makes [`NetStats`] a trustworthy
    /// replay oracle rather than a pile of independent counters.
    pub fn conserves_deliveries(&self, in_flight: u64) -> bool {
        self.delivered + self.undeliverable + in_flight
            == self.attempted + self.duplicated - self.partitioned - self.dropped - self.garbled
    }
}

/// A small, self-contained deterministic RNG (SplitMix64 stream): the
/// fault schedule must be stable across platforms and dependency
/// versions, so the simulator does not borrow `rand`'s generators.
#[derive(Debug, Clone)]
pub(crate) struct SimRng(u64);

impl SimRng {
    pub(crate) fn new(seed: u64) -> Self {
        // Avoid the all-zero fixpoint without disturbing other seeds.
        SimRng(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub(crate) fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, bound]`.
    fn next_upto(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % (bound + 1)
        }
    }
}

/// One scheduled delivery: which endpoint gets which bytes at which tick.
struct Delivery {
    endpoint: usize,
    message: NetMessage,
}

/// Registry handles mirroring [`NetStats`] (see [`SimNet::attach_obs`]).
struct NetObs {
    published: Counter,
    attempted: Counter,
    delivered: Counter,
    undeliverable: Counter,
    dropped: Counter,
    duplicated: Counter,
    corrupted: Counter,
    garbled: Counter,
    delayed: Counter,
    partitioned: Counter,
    in_flight: Gauge,
}

impl NetObs {
    fn register(registry: &Registry) -> Self {
        NetObs {
            published: registry.counter("net.published"),
            attempted: registry.counter("net.attempted"),
            delivered: registry.counter("net.delivered"),
            undeliverable: registry.counter("net.undeliverable"),
            dropped: registry.counter("net.dropped"),
            duplicated: registry.counter("net.duplicated"),
            corrupted: registry.counter("net.corrupted"),
            garbled: registry.counter("net.garbled"),
            delayed: registry.counter("net.delayed"),
            partitioned: registry.counter("net.partitioned"),
            in_flight: registry.gauge("net.in_flight"),
        }
    }
}

struct SimState {
    rng: SimRng,
    config: FaultConfig,
    /// Virtual clock: ticks once per publish.
    now: u64,
    /// Monotone tie-breaker so same-tick deliveries keep a stable order.
    next_id: u64,
    /// Pending deliveries keyed by (due tick, id).
    pending: BTreeMap<(u64, u64), Delivery>,
    endpoints: Vec<Sender<NetMessage>>,
    stats: NetStats,
    obs: Option<NetObs>,
    /// [`NetStats`] as of the last registry sync; the next sync exports
    /// the delta, so the registry counters equal the stats exactly.
    obs_synced: NetStats,
}

impl SimState {
    /// Rolls the fault dice for one (message, endpoint) pair and returns
    /// the deliveries to schedule (0 = lost, 2 = duplicated). Dice order
    /// is part of the replay contract — do not reorder the draws.
    fn deliveries_for(&mut self, message: &NetMessage, endpoint: usize) -> Vec<(u64, NetMessage)> {
        let now = self.now;
        if self.config.partitions.iter().any(|p| p.cuts(now, endpoint)) {
            self.stats.partitioned += 1;
            return Vec::new();
        }
        if self.config.drop_rate > 0.0 && self.rng.next_f64() < self.config.drop_rate {
            self.stats.dropped += 1;
            return Vec::new();
        }
        let copies = if self.config.duplicate_rate > 0.0
            && self.rng.next_f64() < self.config.duplicate_rate
        {
            self.stats.duplicated += 1;
            2
        } else {
            1
        };
        let mut out = Vec::with_capacity(copies);
        for _ in 0..copies {
            let payload = if self.config.corrupt_rate > 0.0
                && self.rng.next_f64() < self.config.corrupt_rate
            {
                match self.corrupt(message) {
                    Some(mangled) => {
                        self.stats.corrupted += 1;
                        mangled
                    }
                    None => {
                        self.stats.garbled += 1;
                        continue;
                    }
                }
            } else {
                message.clone()
            };
            let delay = self.rng.next_upto(self.config.reorder_window);
            if delay > 0 {
                self.stats.delayed += 1;
            }
            out.push((now + delay, payload));
        }
        out
    }

    /// Flips one random bit of the message's wire encoding. Returns the
    /// re-decoded forgery, or `None` if the mangled bytes no longer frame
    /// (the receiver's codec rejects them — counted as garbled).
    fn corrupt(&mut self, message: &NetMessage) -> Option<NetMessage> {
        let mut bytes = message.to_encoded_bytes();
        if bytes.is_empty() {
            return None;
        }
        let bit = self.rng.next_upto((bytes.len() as u64) * 8 - 1);
        if let Some(byte) = bytes.get_mut((bit / 8) as usize) {
            *byte ^= 1 << (bit % 8);
        }
        NetMessage::decode_all(&bytes).ok()
    }

    /// The single delivery path: every scheduled copy that comes due goes
    /// through here and lands in exactly one of `delivered` /
    /// `undeliverable`. (Historically `flush_due` and `flush_all` each
    /// counted deliveries themselves — and neither counted the send-failed
    /// case, so copies to a hung-up endpoint silently vanished from the
    /// books and no conservation law could hold.)
    fn deliver(&mut self, delivery: Delivery) {
        if self
            .endpoints
            .get(delivery.endpoint)
            .is_some_and(|ep| ep.send(delivery.message).is_ok())
        {
            self.stats.delivered += 1;
        } else {
            self.stats.undeliverable += 1;
        }
    }

    /// Delivers every pending message due at or before the current tick.
    fn flush_due(&mut self) {
        let later = self.pending.split_off(&(self.now + 1, 0));
        for (_, delivery) in std::mem::replace(&mut self.pending, later) {
            self.deliver(delivery);
        }
    }

    /// Delivers everything still in flight, regardless of due tick.
    fn flush_all(&mut self) {
        for (_, delivery) in std::mem::take(&mut self.pending) {
            self.deliver(delivery);
        }
    }

    /// Exports the stats delta since the last sync into the attached
    /// registry (no-op when none is attached). Called at the end of every
    /// public entry point, under the same lock as the mutation, so the
    /// registry never lags the stats.
    fn sync_obs(&mut self) {
        if let Some(obs) = &self.obs {
            let cur = self.stats;
            let last = self.obs_synced;
            obs.published.add(cur.published - last.published);
            obs.attempted.add(cur.attempted - last.attempted);
            obs.delivered.add(cur.delivered - last.delivered);
            obs.undeliverable
                .add(cur.undeliverable - last.undeliverable);
            obs.dropped.add(cur.dropped - last.dropped);
            obs.duplicated.add(cur.duplicated - last.duplicated);
            obs.corrupted.add(cur.corrupted - last.corrupted);
            obs.garbled.add(cur.garbled - last.garbled);
            obs.delayed.add(cur.delayed - last.delayed);
            obs.partitioned.add(cur.partitioned - last.partitioned);
            obs.in_flight
                .set(i64::try_from(self.pending.len()).unwrap_or(i64::MAX));
            self.obs_synced = cur;
        }
    }
}

/// A deterministic fault-injecting broadcast network.
///
/// Like [`Gossip`](crate::network::Gossip), every published message is
/// offered to every endpoint — but each delivery rolls the seeded fault
/// dice first. All scheduling state sits behind one lock, so publishes
/// from a single publisher thread (the pipeline's publisher stage) are a
/// deterministic sequence.
pub struct SimNet {
    seed: u64,
    state: Mutex<SimState>,
}

impl std::fmt::Debug for SimNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock();
        f.debug_struct("SimNet")
            .field("seed", &self.seed)
            .field("now", &state.now)
            .field("endpoints", &state.endpoints.len())
            .field("in_flight", &state.pending.len())
            .finish()
    }
}

impl SimNet {
    /// Creates a simulator with the given fault schedule seed.
    pub fn new(seed: u64, config: FaultConfig) -> Self {
        SimNet {
            seed,
            state: Mutex::new(SimState {
                rng: SimRng::new(seed),
                config,
                now: 0,
                next_id: 0,
                pending: BTreeMap::new(),
                endpoints: Vec::new(),
                stats: NetStats::default(),
                obs: None,
                obs_synced: NetStats::default(),
            }),
        }
    }

    /// Registers this simulator's counters (`net.*`) in `registry` and
    /// keeps them in lockstep with [`SimNet::stats`] from here on.
    /// Anything already counted is exported immediately.
    pub fn attach_obs(&self, registry: &Registry) {
        let mut state = self.state.lock();
        state.obs = Some(NetObs::register(registry));
        state.obs_synced = NetStats::default();
        state.sync_obs();
    }

    /// Deliveries scheduled but not yet due — the `in_flight` term of
    /// [`NetStats::conserves_deliveries`].
    pub fn in_flight(&self) -> u64 {
        self.state.lock().pending.len() as u64
    }

    /// The replay seed this simulator was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The current virtual-clock tick.
    pub fn now(&self) -> u64 {
        self.state.lock().now
    }

    /// Counters so far (equal across replays of the same seed).
    pub fn stats(&self) -> NetStats {
        self.state.lock().stats
    }

    /// Advances the virtual clock without publishing, releasing deliveries
    /// that were delayed past the last publish.
    pub fn advance(&self, ticks: u64) {
        let mut state = self.state.lock();
        state.now += ticks;
        state.flush_due();
        state.sync_obs();
    }

    /// Heals the network: every fault is disabled (rates zeroed, partition
    /// windows cleared) and the in-flight backlog is delivered. From here
    /// on the simulator behaves losslessly — the precondition of the
    /// chaos suite's convergence invariant.
    pub fn heal(&self) {
        let mut state = self.state.lock();
        state.config = FaultConfig::lossless();
        state.flush_all();
        state.sync_obs();
    }

    /// Delivers everything in flight without disabling faults (a quiet
    /// period long enough for the reorder window to drain).
    pub fn flush(&self) {
        let mut state = self.state.lock();
        state.flush_all();
        state.sync_obs();
    }
}

impl Transport for SimNet {
    fn join(&self) -> Receiver<NetMessage> {
        let (tx, rx) = unbounded();
        self.state.lock().endpoints.push(tx);
        rx
    }

    /// Rolls the fault dice for every endpoint, schedules the surviving
    /// deliveries, ticks the virtual clock, and flushes everything due.
    /// Returns the number of deliveries scheduled — the publisher's ack
    /// count (delayed deliveries count: they will arrive; dropped and
    /// partitioned ones do not).
    fn publish(&self, message: NetMessage) -> usize {
        let mut state = self.state.lock();
        state.stats.published += 1;
        let mut scheduled = 0usize;
        for endpoint in 0..state.endpoints.len() {
            state.stats.attempted += 1;
            for (due, payload) in self.schedule(&mut state, &message, endpoint) {
                let id = state.next_id;
                state.next_id += 1;
                state.pending.insert(
                    (due, id),
                    Delivery {
                        endpoint,
                        message: payload,
                    },
                );
                scheduled += 1;
            }
        }
        state.now += 1;
        state.flush_due();
        state.sync_obs();
        scheduled
    }

    fn subscriber_count(&self) -> usize {
        self.state.lock().endpoints.len()
    }
}

impl SimNet {
    fn schedule(
        &self,
        state: &mut SimState,
        message: &NetMessage,
        endpoint: usize,
    ) -> Vec<(u64, NetMessage)> {
        state.deliveries_for(message, endpoint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcert_chain::consensus::ConsensusProof;
    use dcert_chain::{Block, BlockHeader};
    use dcert_primitives::hash::{Address, Hash};

    fn block_msg(height: u64) -> NetMessage {
        NetMessage::Block(Block {
            header: BlockHeader {
                height,
                prev_hash: Hash::ZERO,
                state_root: Hash::ZERO,
                tx_root: Hash::ZERO,
                timestamp: height,
                miner: Address::default(),
                consensus: ConsensusProof::Pow {
                    difficulty_bits: 0,
                    nonce: 0,
                },
            },
            txs: Vec::new(),
        })
    }

    fn drain_heights(rx: &Receiver<NetMessage>) -> Vec<u64> {
        let mut heights = Vec::new();
        while let Ok(msg) = rx.try_recv() {
            heights.push(msg.height().expect("block message"));
        }
        heights
    }

    #[test]
    fn lossless_config_behaves_like_gossip() {
        let net = SimNet::new(7, FaultConfig::lossless());
        let rx = net.join();
        for height in 1..=20 {
            assert_eq!(net.publish(block_msg(height)), 1);
        }
        assert_eq!(drain_heights(&rx), (1..=20).collect::<Vec<_>>());
        let stats = net.stats();
        assert_eq!(stats.delivered, 20);
        assert_eq!(stats.dropped + stats.delayed + stats.duplicated, 0);
    }

    #[test]
    fn same_seed_replays_bit_for_bit() {
        let run = |seed: u64| {
            let net = SimNet::new(
                seed,
                FaultConfig {
                    drop_rate: 0.2,
                    duplicate_rate: 0.2,
                    corrupt_rate: 0.1,
                    reorder_window: 3,
                    partitions: vec![Partition {
                        start: 5,
                        end: 10,
                        endpoints: vec![0],
                    }],
                },
            );
            let rx = net.join();
            let _rx2 = net.join();
            for height in 1..=50 {
                net.publish(block_msg(height));
            }
            net.heal();
            (net.stats(), drain_heights(&rx))
        };
        let (stats_a, seq_a) = run(1234);
        let (stats_b, seq_b) = run(1234);
        assert_eq!(stats_a, stats_b);
        assert_eq!(seq_a, seq_b);
        // And a different seed yields a different schedule.
        let (stats_c, _) = run(1235);
        assert_ne!(stats_a, stats_c);
    }

    #[test]
    fn drops_lose_messages_until_healed() {
        let net = SimNet::new(
            99,
            FaultConfig {
                drop_rate: 1.0,
                ..FaultConfig::lossless()
            },
        );
        let rx = net.join();
        for height in 1..=10 {
            assert_eq!(net.publish(block_msg(height)), 0);
        }
        assert!(drain_heights(&rx).is_empty());
        assert_eq!(net.stats().dropped, 10);
        // Healing stops future losses but cannot resurrect dropped
        // messages — that is the resync path's job.
        net.heal();
        net.publish(block_msg(11));
        assert_eq!(drain_heights(&rx), vec![11]);
    }

    #[test]
    fn reorder_window_shuffles_but_preserves_content() {
        let net = SimNet::new(
            5,
            FaultConfig {
                reorder_window: 4,
                ..FaultConfig::lossless()
            },
        );
        let rx = net.join();
        for height in 1..=30 {
            net.publish(block_msg(height));
        }
        net.flush();
        let mut got = drain_heights(&rx);
        assert_ne!(got, (1..=30).collect::<Vec<_>>(), "seed 5 must reorder");
        got.sort_unstable();
        assert_eq!(got, (1..=30).collect::<Vec<_>>());
    }

    #[test]
    fn partition_cuts_only_its_endpoints_during_its_window() {
        let net = SimNet::new(
            1,
            FaultConfig {
                partitions: vec![Partition {
                    start: 3,
                    end: 6,
                    endpoints: vec![1],
                }],
                ..FaultConfig::lossless()
            },
        );
        let rx0 = net.join();
        let rx1 = net.join();
        for height in 1..=10 {
            net.publish(block_msg(height));
        }
        assert_eq!(drain_heights(&rx0), (1..=10).collect::<Vec<_>>());
        // Ticks 3..6 are publishes 4, 5, 6 (the clock starts at 0).
        assert_eq!(drain_heights(&rx1), vec![1, 2, 3, 7, 8, 9, 10]);
        assert_eq!(net.stats().partitioned, 3);
    }

    #[test]
    fn corruption_forges_or_garbles_but_never_passes_through() {
        let net = SimNet::new(
            42,
            FaultConfig {
                corrupt_rate: 1.0,
                ..FaultConfig::lossless()
            },
        );
        let rx = net.join();
        let original = block_msg(1);
        for _ in 0..40 {
            net.publish(original.clone());
        }
        let stats = net.stats();
        assert_eq!(stats.corrupted + stats.garbled, 40);
        let mut seen = 0;
        while let Ok(msg) = rx.try_recv() {
            assert_ne!(
                msg, original,
                "every delivery must differ from the original"
            );
            seen += 1;
        }
        assert_eq!(seen as u64, stats.corrupted);
    }

    #[test]
    fn conservation_law_holds_mid_flight_and_after_heal() {
        let net = SimNet::new(
            2024,
            FaultConfig {
                drop_rate: 0.2,
                duplicate_rate: 0.15,
                corrupt_rate: 0.1,
                reorder_window: 5,
                partitions: vec![Partition {
                    start: 2,
                    end: 8,
                    endpoints: vec![1],
                }],
            },
        );
        let _rx0 = net.join();
        let _rx1 = net.join();
        for height in 1..=60 {
            net.publish(block_msg(height));
            let stats = net.stats();
            assert!(
                stats.conserves_deliveries(net.in_flight()),
                "mid-flight at height {height}: {stats:?}, in_flight {}",
                net.in_flight()
            );
        }
        net.heal();
        assert_eq!(net.in_flight(), 0);
        let stats = net.stats();
        assert_eq!(stats.attempted, 120, "60 publishes × 2 endpoints");
        assert!(stats.conserves_deliveries(0), "after heal: {stats:?}");
    }

    #[test]
    fn hung_up_endpoint_counts_undeliverable_not_delivered() {
        let net = SimNet::new(3, FaultConfig::lossless());
        let rx = net.join();
        net.publish(block_msg(1));
        drop(rx);
        net.publish(block_msg(2));
        let stats = net.stats();
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.undeliverable, 1, "send to a dropped channel");
        assert!(stats.conserves_deliveries(net.in_flight()));
    }

    #[test]
    fn attached_registry_mirrors_stats() {
        let registry = dcert_obs::Registry::new();
        let net = SimNet::new(
            11,
            FaultConfig {
                drop_rate: 0.3,
                duplicate_rate: 0.2,
                reorder_window: 3,
                ..FaultConfig::lossless()
            },
        );
        net.attach_obs(&registry);
        let _rx = net.join();
        for height in 1..=40 {
            net.publish(block_msg(height));
        }
        net.heal();
        let stats = net.stats();
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("net.published"), stats.published);
        assert_eq!(snapshot.counter("net.attempted"), stats.attempted);
        assert_eq!(snapshot.counter("net.delivered"), stats.delivered);
        assert_eq!(snapshot.counter("net.dropped"), stats.dropped);
        assert_eq!(snapshot.counter("net.duplicated"), stats.duplicated);
        assert_eq!(snapshot.counter("net.delayed"), stats.delayed);
        assert_eq!(snapshot.gauge("net.in_flight"), 0, "healed net is drained");
        assert!(stats.dropped > 0, "seed 11 at 30% must drop something");
    }

    #[test]
    fn duplicates_add_extra_deliveries() {
        let net = SimNet::new(
            17,
            FaultConfig {
                duplicate_rate: 1.0,
                ..FaultConfig::lossless()
            },
        );
        let rx = net.join();
        for height in 1..=5 {
            assert_eq!(net.publish(block_msg(height)), 2);
        }
        net.flush();
        let mut got = drain_heights(&rx);
        got.sort_unstable();
        assert_eq!(got, vec![1, 1, 2, 2, 3, 3, 4, 4, 5, 5]);
    }
}
