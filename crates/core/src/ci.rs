//! The SGX-enabled Certificate Issuer (CI).
//!
//! The untrusted half of DCert's certification pipeline (Algorithm 1 and
//! the outer parts of Algorithms 4–5): a full node that, for every new
//! block,
//!
//! 1. executes the transactions to compute the read set `{r}_i` and write
//!    set `{w}_i` (`comp_data_set`),
//! 2. extracts the Merkle update proof `π_i` from its state tree
//!    (`get_update_proof`),
//! 3. crosses into the enclave exactly once per certificate
//!    (`ecall_sig_gen` / augmented / hierarchical requests), and
//! 4. assembles and publishes `cert_i = ⟨pk_enc, rep, dig_i, sig_i⟩`.
//!
//! Every stage is timed into a [`CertBreakdown`], which is what the
//! Figure 8–10 benches report.

use std::sync::Arc;
use std::time::Duration;

use dcert_chain::{Block, ChainState, ConsensusEngine, FullNode};
use dcert_primitives::codec::{Decode, Encode};
use dcert_primitives::hash::Address;
use dcert_primitives::keys::{PublicKey, Signature};
use dcert_sgx::cost::timed;
use dcert_sgx::{AttestationReport, AttestationService, CostModel, Enclave};
use dcert_vm::{Executor, StateKey};

use crate::cert::Certificate;
use crate::error::CertError;
use crate::messages::{BatchLink, BlockInput, EcallRequest, EcallResponse, IdxRequest, IndexInput};
use crate::program::CertProgram;
use crate::verifier::IndexVerifier;

/// Timing/size breakdown of one certification (the Fig. 8–9 bars).
#[derive(Debug, Clone, Copy, Default)]
pub struct CertBreakdown {
    /// Outside: transaction execution for read/write-set generation.
    pub rw_set_gen: Duration,
    /// Outside: Merkle update-proof generation.
    pub proof_gen: Duration,
    /// Wall-clock time spent across all ECalls (trusted work + overhead).
    pub enclave_total: Duration,
    /// Portion of `enclave_total` charged by the SGX cost model
    /// (transitions + marshalling).
    pub enclave_overhead: Duration,
    /// Portion of `enclave_total` spent running trusted code.
    pub enclave_trusted: Duration,
    /// Number of ECalls issued.
    pub ecalls: u64,
    /// Bytes marshalled into the enclave.
    pub request_bytes: u64,
    /// Bytes marshalled out of the enclave.
    pub response_bytes: u64,
}

impl CertBreakdown {
    /// Total construction time (outside + enclave).
    pub fn total(&self) -> Duration {
        self.rw_set_gen + self.proof_gen + self.enclave_total
    }
}

/// The SGX-enabled Certificate Issuer.
///
/// The enclave handle is `Arc`-shared: ECalls serialize inside the
/// enclave itself, so the certification pipeline
/// ([`crate::pipeline::CertPipeline`]) can drive the same enclave from a
/// dedicated issuer thread while this struct's sequential methods remain
/// available for single-threaded callers.
pub struct CertificateIssuer {
    node: FullNode,
    enclave: Arc<Enclave<CertProgram>>,
    pk_enc: PublicKey,
    report: AttestationReport,
    prev_block_cert: Option<Certificate>,
    /// Reused request-encoding buffer: every ECall request is marshalled
    /// into this vector instead of a fresh allocation per call.
    scratch: Vec<u8>,
    /// Largest request encoding seen so far. Bytes up to this mark are
    /// "served from reuse" — a pure function of the request-length
    /// sequence (deliberately not `Vec::capacity`, which is
    /// allocator-dependent), so the derived counter is deterministic.
    scratch_high_water: usize,
}

/// The CI deconstructed into the pieces the pipeline's stages own while
/// running; [`CertificateIssuer::from_parts`] reassembles them at
/// shutdown.
pub(crate) struct CiParts {
    pub(crate) node: FullNode,
    pub(crate) enclave: Arc<Enclave<CertProgram>>,
    pub(crate) pk_enc: PublicKey,
    pub(crate) report: AttestationReport,
    pub(crate) prev_block_cert: Option<Certificate>,
}

impl std::fmt::Debug for CertificateIssuer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CertificateIssuer")
            .field("height", &self.node.height())
            .field("pk_enc", &self.pk_enc)
            .finish()
    }
}

impl CertificateIssuer {
    /// Boots a CI: launches the enclave, provisions its platform key with
    /// the IAS, runs the `Init` ECall to generate `(sk_enc, pk_enc)`, and
    /// obtains the attestation report binding `pk_enc`.
    ///
    /// # Errors
    ///
    /// Propagates attestation failures and enclave boot problems.
    pub fn new(
        genesis: &Block,
        genesis_state: ChainState,
        executor: Executor,
        engine: Arc<dyn ConsensusEngine>,
        verifiers: Vec<Box<dyn IndexVerifier>>,
        ias: &mut AttestationService,
        cost: CostModel,
    ) -> Result<Self, CertError> {
        let mut seed = [0u8; 32];
        // dcert-lint: allow(r3-determinism, reason = "platform-key provisioning entropy; replayable runs boot via new_on_platform with a fixed seed")
        rand::RngCore::fill_bytes(&mut rand::rngs::OsRng, &mut seed);
        Self::new_on_platform(
            seed,
            genesis,
            genesis_state,
            executor,
            engine,
            verifiers,
            ias,
            cost,
        )
    }

    /// Like [`CertificateIssuer::new`], but on a caller-identified
    /// platform. The `platform_seed` stands in for the physical machine's
    /// fused identity: enclaves launched with the same seed share a
    /// platform attestation key and a sealing domain, which is what makes
    /// [`CertificateIssuer::seal_enclave_key`] /
    /// [`CertificateIssuer::resume_on_platform`] restarts possible.
    ///
    /// # Errors
    ///
    /// See [`CertificateIssuer::new`].
    #[allow(clippy::too_many_arguments)] // mirrors `new` plus the platform id
    pub fn new_on_platform(
        platform_seed: [u8; 32],
        genesis: &Block,
        genesis_state: ChainState,
        executor: Executor,
        engine: Arc<dyn ConsensusEngine>,
        verifiers: Vec<Box<dyn IndexVerifier>>,
        ias: &mut AttestationService,
        cost: CostModel,
    ) -> Result<Self, CertError> {
        let program = CertProgram::new(
            genesis.hash(),
            ias.public_key(),
            executor.clone(),
            engine.clone(),
            verifiers,
        );
        let enclave = Enclave::launch_with_platform_seed(program, cost, platform_seed);
        let node = FullNode::new(genesis, genesis_state, executor, engine, Address::default());
        Self::finish_boot(enclave, node, ias, None)
    }

    /// Restarts a CI on the same platform from a sealed enclave key
    /// ([`CertificateIssuer::seal_enclave_key`]) plus a certified
    /// checkpoint. The restored enclave signs with the **same** `pk_enc`,
    /// so clients keep their cached attestation; the fresh attestation
    /// report binds the same key.
    ///
    /// # Errors
    ///
    /// [`CertError::Attestation`] wrapping
    /// [`SgxError::BadSeal`](dcert_sgx::SgxError::BadSeal) if the blob was
    /// sealed on a different platform or by a different program, plus the
    /// checkpoint-validation errors of
    /// [`CertificateIssuer::new_from_checkpoint`].
    #[allow(clippy::too_many_arguments)] // restart = checkpoint boot + seal inputs
    pub fn resume_on_platform(
        platform_seed: [u8; 32],
        sealed_key: &dcert_sgx::SealedBlob,
        genesis_digest: dcert_primitives::hash::Hash,
        checkpoint: &dcert_chain::BlockHeader,
        checkpoint_cert: &Certificate,
        snapshot: ChainState,
        executor: Executor,
        engine: Arc<dyn ConsensusEngine>,
        verifiers: Vec<Box<dyn IndexVerifier>>,
        ias: &mut AttestationService,
        cost: CostModel,
    ) -> Result<Self, CertError> {
        checkpoint_cert.verify(
            &ias.public_key(),
            &crate::program::expected_measurement(),
            &checkpoint.hash(),
        )?;
        if snapshot.root() != checkpoint.state_root {
            return Err(CertError::StateRootMismatch);
        }
        let program = CertProgram::new(
            genesis_digest,
            ias.public_key(),
            executor.clone(),
            engine.clone(),
            verifiers,
        );
        let enclave = Enclave::restore(program, cost, platform_seed, sealed_key)
            .map_err(CertError::Attestation)?;
        let node = FullNode::new_at_checkpoint(
            checkpoint.clone(),
            snapshot,
            executor,
            engine,
            Address::default(),
        );
        Self::finish_boot(enclave, node, ias, Some(checkpoint_cert.clone()))
    }

    /// Seals the enclave's signing key to this platform for a later
    /// [`CertificateIssuer::resume_on_platform`]. The plaintext key never
    /// crosses the enclave boundary.
    pub fn seal_enclave_key(&self) -> dcert_sgx::SealedBlob {
        self.enclave.seal_state()
    }

    /// Shared boot tail: register the platform, run `Init`, attest.
    fn finish_boot(
        enclave: Enclave<CertProgram>,
        node: FullNode,
        ias: &mut AttestationService,
        prev_block_cert: Option<Certificate>,
    ) -> Result<Self, CertError> {
        ias.register_platform(enclave.platform_key());
        let response = enclave.ecall(&EcallRequest::Init.to_encoded_bytes());
        let pk_enc = match EcallResponse::decode_all(&response)? {
            EcallResponse::Initialized(pk) => pk,
            EcallResponse::Rejected(reason) => return Err(CertError::EnclaveRejected(reason)),
            EcallResponse::Signature(_) | EcallResponse::Signatures(_) => {
                return Err(CertError::EnclaveRejected("unexpected response".into()))
            }
        };
        let quote = enclave.quote(Certificate::key_binding(&pk_enc));
        let report = ias.attest(&quote)?;
        Ok(CertificateIssuer {
            node,
            enclave: Arc::new(enclave),
            pk_enc,
            report,
            prev_block_cert,
            scratch: Vec::new(),
            scratch_high_water: 0,
        })
    }

    /// Like [`CertificateIssuer::new_on_platform`], but also pre-seeds the
    /// enclave signing key, making the whole boot — and, because ed25519
    /// signing is deterministic, every certificate the CI will ever issue —
    /// reproducible. Two CIs booted with the same seeds against the same
    /// IAS sign byte-identically; the pipeline-equivalence tests and
    /// benches rely on this. Production deployments keep `sk_enc`
    /// enclave-generated and use [`CertificateIssuer::new`].
    ///
    /// # Errors
    ///
    /// See [`CertificateIssuer::new`].
    #[allow(clippy::too_many_arguments)] // mirrors `new_on_platform` plus the key seed
    pub fn new_deterministic(
        platform_seed: [u8; 32],
        signing_seed: [u8; 32],
        genesis: &Block,
        genesis_state: ChainState,
        executor: Executor,
        engine: Arc<dyn ConsensusEngine>,
        verifiers: Vec<Box<dyn IndexVerifier>>,
        ias: &mut AttestationService,
        cost: CostModel,
    ) -> Result<Self, CertError> {
        let program = CertProgram::new(
            genesis.hash(),
            ias.public_key(),
            executor.clone(),
            engine.clone(),
            verifiers,
        )
        .with_signing_seed(signing_seed);
        let enclave = Enclave::launch_with_platform_seed(program, cost, platform_seed);
        let node = FullNode::new(genesis, genesis_state, executor, engine, Address::default());
        Self::finish_boot(enclave, node, ias, None)
    }

    /// Boots a CI **mid-chain** from a certified checkpoint instead of
    /// replaying from genesis.
    ///
    /// Thanks to the recursive certificate design, a certificate for block
    /// *h* vouches for the entire prefix, so a new CI only needs: the
    /// checkpoint header + certificate (from any CI with the expected
    /// measurement), a state snapshot matching the header's state root, and
    /// the genesis digest to anchor its own enclave. It validates the
    /// certificate exactly as a superlight client would, checks the
    /// snapshot against the certified state root, and then continues
    /// certification from height *h + 1*.
    ///
    /// # Errors
    ///
    /// - certificate-validation errors if `checkpoint_cert` does not
    ///   authenticate `checkpoint` under the IAS root and the expected
    ///   program measurement,
    /// - [`CertError::StateRootMismatch`] if `snapshot` does not hash to
    ///   the certified state root,
    /// - attestation errors from booting the new enclave.
    #[allow(clippy::too_many_arguments)] // mirrors `new` plus the checkpoint triple
    pub fn new_from_checkpoint(
        genesis_digest: dcert_primitives::hash::Hash,
        checkpoint: &dcert_chain::BlockHeader,
        checkpoint_cert: &Certificate,
        snapshot: ChainState,
        executor: Executor,
        engine: Arc<dyn ConsensusEngine>,
        verifiers: Vec<Box<dyn IndexVerifier>>,
        ias: &mut AttestationService,
        cost: CostModel,
    ) -> Result<Self, CertError> {
        // Trust the checkpoint the same way a superlight client would.
        checkpoint_cert.verify(
            &ias.public_key(),
            &crate::program::expected_measurement(),
            &checkpoint.hash(),
        )?;
        if snapshot.root() != checkpoint.state_root {
            return Err(CertError::StateRootMismatch);
        }

        let program = CertProgram::new(
            genesis_digest,
            ias.public_key(),
            executor.clone(),
            engine.clone(),
            verifiers,
        );
        let enclave = Enclave::launch(program, cost);
        let node = FullNode::new_at_checkpoint(
            checkpoint.clone(),
            snapshot,
            executor,
            engine,
            Address::default(),
        );
        Self::finish_boot(enclave, node, ias, Some(checkpoint_cert.clone()))
    }

    /// The chain view of this CI.
    pub fn node(&self) -> &FullNode {
        &self.node
    }

    /// The enclave public key `pk_enc`.
    pub fn pk_enc(&self) -> PublicKey {
        self.pk_enc
    }

    /// The attestation report `rep` bound into every certificate.
    pub fn report(&self) -> &AttestationReport {
        &self.report
    }

    /// The enclave measurement (clients pin this).
    pub fn measurement(&self) -> dcert_primitives::hash::Hash {
        self.enclave.measurement()
    }

    /// The latest block certificate, if any block has been certified.
    pub fn latest_block_cert(&self) -> Option<&Certificate> {
        self.prev_block_cert.as_ref()
    }

    /// Attaches a metric registry to the CI's enclave boundary, so every
    /// subsequent ECall reports transitions, marshalled bytes, simulated
    /// charges, and EPC residency into `registry` (see
    /// [`Enclave::attach_obs`]).
    pub fn attach_obs(&self, registry: &dcert_obs::Registry) {
        self.enclave.attach_obs(registry);
    }

    /// Algorithm 1: `gen_cert`. Certifies `block` (which must extend the
    /// CI's tip), advances the CI's chain, and returns the certificate with
    /// its construction breakdown.
    ///
    /// # Errors
    ///
    /// Enclave-side rejections surface as [`CertError::EnclaveRejected`];
    /// local validation failures as their typed variants.
    pub fn certify_block(
        &mut self,
        block: &Block,
    ) -> Result<(Certificate, CertBreakdown), CertError> {
        let mut breakdown = CertBreakdown::default();
        let input = self.prepare_block_input(block, &mut breakdown);
        let request = EcallRequest::SigGen(input);
        let signature = self.issue(&request, &mut breakdown)?;
        let cert = Certificate {
            pk_enc: self.pk_enc,
            report: self.report.clone(),
            digest: block.header.hash(),
            signature,
        };
        self.node.apply(block)?;
        self.prev_block_cert = Some(cert.clone());
        Ok((cert, breakdown))
    }

    /// Algorithm 4: augmented certificates — one full-replay ECall *per
    /// index* (this is exactly the repetition the hierarchical scheme
    /// removes; Fig. 10 measures the difference). Advances the chain.
    ///
    /// # Errors
    ///
    /// See [`CertificateIssuer::certify_block`].
    pub fn certify_augmented(
        &mut self,
        block: &Block,
        indexes: &[IndexInput],
    ) -> Result<(Vec<Certificate>, CertBreakdown), CertError> {
        let mut breakdown = CertBreakdown::default();
        let input = self.prepare_block_input(block, &mut breakdown);
        let mut certs = Vec::with_capacity(indexes.len());
        for index in indexes {
            let request = EcallRequest::AugSigGen(input.clone(), index.clone());
            let signature = self.issue(&request, &mut breakdown)?;
            certs.push(Certificate {
                pk_enc: self.pk_enc,
                report: self.report.clone(),
                digest: Certificate::index_digest(&block.header.hash(), &index.new_digest),
                signature,
            });
        }
        self.node.apply(block)?;
        Ok((certs, breakdown))
    }

    /// Algorithm 5: hierarchical certificates — one block certificate, then
    /// one light (replay-free) ECall per index. Advances the chain.
    ///
    /// # Errors
    ///
    /// See [`CertificateIssuer::certify_block`].
    pub fn certify_hierarchical(
        &mut self,
        block: &Block,
        indexes: &[IndexInput],
    ) -> Result<(Certificate, Vec<Certificate>, CertBreakdown), CertError> {
        let mut breakdown = CertBreakdown::default();
        let prev_header = self.node.tip().clone();

        // Line 1: the block certificate via gen_cert.
        let input = self.prepare_block_input(block, &mut breakdown);
        let request = EcallRequest::SigGen(input);
        let signature = self.issue(&request, &mut breakdown)?;
        let block_cert = Certificate {
            pk_enc: self.pk_enc,
            report: self.report.clone(),
            digest: block.header.hash(),
            signature,
        };

        // Per-index ECalls: ship the write set authenticated against the
        // two certified state roots instead of replaying.
        let (writes, took) = timed(|| {
            let execution = self.node.execute(&block.txs);
            execution
                .writes
                .iter()
                .map(|(k, v)| (*k, v.clone()))
                .collect::<Vec<(StateKey, Option<Vec<u8>>)>>()
        });
        breakdown.rw_set_gen += took;
        let (write_proof, took) = timed(|| {
            let write_keys: Vec<StateKey> = writes.iter().map(|(k, _)| *k).collect();
            self.node.state().prove(&write_keys)
        });
        breakdown.proof_gen += took;

        let mut certs = Vec::with_capacity(indexes.len());
        for index in indexes {
            let request = EcallRequest::IdxSigGen(Box::new(IdxRequest {
                prev_header: prev_header.clone(),
                header: block.header.clone(),
                block: block.clone(),
                block_cert: block_cert.clone(),
                writes: writes.clone(),
                write_proof: write_proof.clone(),
                index: index.clone(),
            }));
            let signature = self.issue(&request, &mut breakdown)?;
            certs.push(Certificate {
                pk_enc: self.pk_enc,
                report: self.report.clone(),
                digest: Certificate::index_digest(&block.header.hash(), &index.new_digest),
                signature,
            });
        }
        self.node.apply(block)?;
        self.prev_block_cert = Some(block_cert.clone());
        Ok((block_cert, certs, breakdown))
    }

    /// Batch extension: certifies `blocks` (consecutive extensions of the
    /// CI's tip) with **one** ECall, producing a single certificate for the
    /// last block that vouches for the whole prefix. Amortizes the
    /// transition and recursive-verification cost across the batch; the
    /// trade-off is certification latency (clients see one certificate per
    /// batch instead of per block).
    ///
    /// # Errors
    ///
    /// See [`CertificateIssuer::certify_block`]. The CI's chain advances
    /// only if the whole batch certifies.
    pub fn certify_batch(
        &mut self,
        blocks: &[Block],
    ) -> Result<(Certificate, CertBreakdown), CertError> {
        let Some(last) = blocks.last() else {
            return Err(CertError::EnclaveRejected("empty batch".into()));
        };
        let mut breakdown = CertBreakdown::default();
        // Pre-process each link against a scratch state (the links build
        // on each other, not on the current tip). Each block is executed
        // exactly once here; the enclave is the validator.
        let mut state = self.node.state().clone();
        let links = build_links(self.node.executor(), &mut state, blocks, &mut breakdown);
        let request = EcallRequest::BatchSigGen {
            prev_header: self.node.tip().clone(),
            prev_cert: self.prev_block_cert.clone(),
            links,
        };
        let signature = self.issue(&request, &mut breakdown)?;
        let cert = Certificate {
            pk_enc: self.pk_enc,
            report: self.report.clone(),
            digest: last.header.hash(),
            signature,
        };
        // The enclave validated every transition; adopt the scratch state
        // instead of re-executing the batch locally.
        self.node.adopt_validated(last.header.clone(), state);
        self.prev_block_cert = Some(cert.clone());
        Ok((cert, breakdown))
    }

    /// Outside-enclave pre-processing (Algorithm 1, lines 2–3):
    /// `comp_data_set` + `get_update_proof`, timed into `breakdown`.
    fn prepare_block_input(&self, block: &Block, breakdown: &mut CertBreakdown) -> BlockInput {
        let (execution, took) = timed(|| self.node.execute(&block.txs));
        breakdown.rw_set_gen += took;

        let (state_proof, took) = timed(|| self.node.state().prove(&execution.touched_keys()));
        breakdown.proof_gen += took;

        BlockInput {
            prev_header: self.node.tip().clone(),
            prev_cert: self.prev_block_cert.clone(),
            block: block.clone(),
            reads: execution
                .reads
                .iter()
                .map(|(k, v)| (*k, v.clone()))
                .collect(),
            state_proof,
        }
    }

    /// Crosses the enclave boundary once and extracts a signature.
    ///
    /// The request is marshalled into the issuer's reused scratch buffer;
    /// bytes below the buffer's high-water mark are attributed to the
    /// `enclave.marshal_reuse_bytes` counter.
    fn issue(
        &mut self,
        request: &EcallRequest,
        breakdown: &mut CertBreakdown,
    ) -> Result<Signature, CertError> {
        self.scratch.clear();
        request.encode(&mut self.scratch);
        let reused = self.scratch.len().min(self.scratch_high_water);
        if reused > 0 {
            self.enclave.note_marshal_reuse(reused as u64);
        }
        self.scratch_high_water = self.scratch_high_water.max(self.scratch.len());
        issue_encoded(&self.enclave, &self.scratch, breakdown)
    }

    /// Tears the CI apart for the pipeline's stages.
    pub(crate) fn into_parts(self) -> CiParts {
        CiParts {
            node: self.node,
            enclave: self.enclave,
            pk_enc: self.pk_enc,
            report: self.report,
            prev_block_cert: self.prev_block_cert,
        }
    }

    /// Reassembles a CI from pipeline-owned parts. The marshalling scratch
    /// starts empty: the pipeline's issuer kept its own buffer, and reuse
    /// accounting is per-buffer by construction.
    pub(crate) fn from_parts(parts: CiParts) -> Self {
        CertificateIssuer {
            node: parts.node,
            enclave: parts.enclave,
            pk_enc: parts.pk_enc,
            report: parts.report,
            prev_block_cert: parts.prev_block_cert,
            scratch: Vec::new(),
            scratch_high_water: 0,
        }
    }
}

/// Executes consecutive `blocks` against `state` (advanced in place) and
/// builds the authenticated per-block links a batch or range request ships
/// into the enclave: each block is executed exactly once, its update proof
/// extracted against the pre-state, and its writes applied so the next
/// link builds on the result. The enclave is the validator — this is pure
/// untrusted pre-processing.
///
/// Shared by [`CertificateIssuer::certify_batch`] and the shard-fleet
/// workers ([`crate::shard`]), so both paths feed the enclave byte-equal
/// link material by construction.
pub(crate) fn build_links(
    executor: &Executor,
    state: &mut ChainState,
    blocks: &[Block],
    breakdown: &mut CertBreakdown,
) -> Vec<BatchLink> {
    let mut links = Vec::with_capacity(blocks.len());
    for block in blocks {
        let (execution, took) = timed(|| {
            let calls: Vec<dcert_vm::Call> = block.txs.iter().map(|tx| tx.call.clone()).collect();
            executor.execute_block(state, &calls)
        });
        breakdown.rw_set_gen += took;
        let (state_proof, took) = timed(|| state.prove(&execution.touched_keys()));
        breakdown.proof_gen += took;
        links.push(BatchLink {
            block: block.clone(),
            reads: execution
                .reads
                .iter()
                .map(|(k, v)| (*k, v.clone()))
                .collect(),
            state_proof,
        });
        state.apply_writes(execution.writes.iter());
    }
    links
}

/// Dispatches one pre-encoded ECall request and extracts a signature,
/// charging the boundary's cost-model delta into `breakdown`.
///
/// This is the single signing path shared by the sequential CI methods
/// and the pipeline's issuer stage; the stats delta (instead of a
/// reset/read) keeps the enclave's cumulative counters intact for other
/// observers of a shared handle.
pub(crate) fn issue_encoded(
    enclave: &Enclave<CertProgram>,
    encoded: &[u8],
    breakdown: &mut CertBreakdown,
) -> Result<Signature, CertError> {
    let before = enclave.stats();
    let (response, took) = timed(|| enclave.ecall(encoded));
    breakdown.enclave_total += took;
    let after = enclave.stats();
    breakdown.enclave_overhead += after.overhead - before.overhead;
    breakdown.enclave_trusted += after.trusted_time - before.trusted_time;
    breakdown.ecalls += after.ecalls - before.ecalls;
    breakdown.request_bytes += after.bytes_in - before.bytes_in;
    breakdown.response_bytes += after.bytes_out - before.bytes_out;
    match EcallResponse::decode_all(&response)? {
        EcallResponse::Signature(sig) => Ok(sig),
        EcallResponse::Rejected(reason) => Err(CertError::EnclaveRejected(reason)),
        EcallResponse::Initialized(_) | EcallResponse::Signatures(_) => {
            Err(CertError::EnclaveRejected("unexpected response".into()))
        }
    }
}
