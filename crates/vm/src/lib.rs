//! Deterministic native contract VM with read/write-set tracking.
//!
//! DCert's certificate construction (Algorithm 1 of the paper) hinges on
//! being able to run a block's transactions twice with identical effects:
//! once by the Certificate Issuer's untrusted half — to *discover* the read
//! set `{r}_i` and write set `{w}_i` — and once inside the enclave — to
//! *validate* the state transition given only the authenticated read set.
//! The paper's prototype uses the Rust EVM for this; since EVM bytecode
//! semantics are irrelevant to everything the paper measures, this crate
//! substitutes a deterministic native VM with exactly the interface the
//! algorithms need:
//!
//! - [`Contract`]: deterministic transaction logic over a key-value state,
//! - [`ExecCtx`]: the execution context that records every first-read and
//!   buffered write and accounts compute cost,
//! - [`Executor`]: runs a sequence of [`Call`]s as one block, producing a
//!   [`BlockExecution`] — pre-state read set, final write set, per-call
//!   status — from *any* [`StateReader`] (the full state on the CI side, or
//!   the authenticated read set inside the enclave).
//!
//! # Example
//!
//! ```
//! use dcert_vm::{Call, ContractRegistry, Executor, InMemoryState, StateKey};
//! use dcert_primitives::hash::Address;
//! use std::sync::Arc;
//!
//! let mut registry = ContractRegistry::new();
//! registry.register(Arc::new(dcert_vm::testing::CounterContract));
//! let executor = Executor::new(Arc::new(registry));
//!
//! let state = InMemoryState::new();
//! let calls = vec![Call::new(Address::from_seed(1), "counter", b"bump".to_vec())];
//! let exec = executor.execute_block(&state, &calls);
//! assert_eq!(exec.writes.len(), 1);
//! ```

#![forbid(unsafe_code)]

pub mod contract;
pub mod error;
pub mod exec;
pub mod state;
pub mod testing;

pub use contract::{Contract, ContractRegistry};
pub use error::VmError;
pub use exec::{BlockExecution, Call, CallStatus, ExecCtx, Executor};
pub use state::{InMemoryState, ReadSetState, StateKey, StateReader};
