//! The contract trait and registry.

use std::collections::HashMap;
use std::sync::Arc;

use dcert_primitives::hash::Address;

use crate::error::VmError;
use crate::exec::ExecCtx;

/// Deterministic transaction logic over the global key-value state.
///
/// Implementations must be **pure functions of (state, sender, payload)**:
/// no clocks, randomness, I/O, or iteration over unordered containers —
/// the Certificate Issuer and the enclave replay every call and must reach
/// byte-identical write sets.
///
/// The five Blockbench workloads (`dcert-workloads`) are the canonical
/// implementations.
pub trait Contract: Send + Sync {
    /// The registry name this contract answers to.
    fn name(&self) -> &str;

    /// Executes one call.
    ///
    /// # Errors
    ///
    /// Returning an error reverts the call: its buffered writes are
    /// discarded and the failure is recorded in the block execution.
    fn execute(
        &self,
        ctx: &mut ExecCtx<'_>,
        sender: Address,
        payload: &[u8],
    ) -> Result<(), VmError>;
}

/// A name → contract lookup table shared by the miner, full nodes, the CI,
/// and the enclave (all parties must agree on contract code, just as all
/// Ethereum nodes agree on EVM semantics).
#[derive(Default)]
pub struct ContractRegistry {
    contracts: HashMap<String, Arc<dyn Contract>>,
}

impl std::fmt::Debug for ContractRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<&str> = self.contracts.keys().map(String::as_str).collect();
        names.sort_unstable();
        f.debug_struct("ContractRegistry")
            .field("contracts", &names)
            .finish()
    }
}

impl ContractRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a contract under its [`Contract::name`], replacing any
    /// previous registration of that name.
    pub fn register(&mut self, contract: Arc<dyn Contract>) {
        self.contracts.insert(contract.name().to_owned(), contract);
    }

    /// Looks up a contract by name.
    pub fn get(&self, name: &str) -> Option<&Arc<dyn Contract>> {
        self.contracts.get(name)
    }

    /// Number of registered contracts.
    pub fn len(&self) -> usize {
        self.contracts.len()
    }

    /// Returns `true` if no contracts are registered.
    pub fn is_empty(&self) -> bool {
        self.contracts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::CounterContract;

    #[test]
    fn register_and_lookup() {
        let mut registry = ContractRegistry::new();
        assert!(registry.is_empty());
        registry.register(Arc::new(CounterContract));
        assert_eq!(registry.len(), 1);
        assert!(registry.get("counter").is_some());
        assert!(registry.get("missing").is_none());
    }

    #[test]
    fn debug_lists_names() {
        let mut registry = ContractRegistry::new();
        registry.register(Arc::new(CounterContract));
        assert!(format!("{registry:?}").contains("counter"));
    }
}
