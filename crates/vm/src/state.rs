//! State keys and read backends.

use std::collections::BTreeMap;
use std::fmt;

use dcert_primitives::codec::{Decode, Encode, Reader};
use dcert_primitives::error::CodecError;
use dcert_primitives::hash::{hash_concat, Hash};

use crate::error::VmError;

/// Domain tag for state-key derivation (kept distinct from Merkle domains).
const STATE_KEY_DOMAIN: u8 = 0x20;

/// A 256-bit global-state key: the hash of `(contract, field)`.
///
/// State keys index the global sparse-Merkle state tree, so deriving them
/// by hashing gives uniformly distributed tree paths.
///
/// ```
/// use dcert_vm::StateKey;
///
/// let a = StateKey::new("kvstore", b"user-1");
/// assert_eq!(a, StateKey::new("kvstore", b"user-1"));
/// assert_ne!(a, StateKey::new("kvstore", b"user-2"));
/// assert_ne!(a, StateKey::new("bank", b"user-1"));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateKey(Hash);

impl StateKey {
    /// Derives the key for `field` of `contract`.
    pub fn new(contract: &str, field: &[u8]) -> Self {
        // Length-prefix the contract name so ("ab","c") != ("a","bc").
        let len = (contract.len() as u32).to_be_bytes();
        StateKey(hash_concat([
            &[STATE_KEY_DOMAIN][..],
            &len,
            contract.as_bytes(),
            field,
        ]))
    }

    /// The underlying 256-bit path in the state tree.
    pub fn as_hash(&self) -> &Hash {
        &self.0
    }
}

impl fmt::Debug for StateKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "StateKey({:?})", self.0)
    }
}

impl From<StateKey> for Hash {
    fn from(key: StateKey) -> Hash {
        key.0
    }
}

impl Encode for StateKey {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
}

impl Decode for StateKey {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(StateKey(Hash::decode(r)?))
    }
}

/// A read-only view of pre-block global state.
///
/// Two implementations matter:
///
/// - the full node's state tree (outside the enclave), and
/// - [`ReadSetState`], an authenticated read set (inside the enclave),
///   which *fails* on any read the set does not cover — detecting
///   incomplete read sets supplied by the untrusted pre-processor.
pub trait StateReader {
    /// Reads the pre-block value of `key`.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::ReadSetMiss`] when the backend cannot answer for
    /// this key (bounded backends only).
    fn read(&self, key: &StateKey) -> Result<Option<Vec<u8>>, VmError>;
}

/// A plain in-memory key-value state, useful as a test backend and as the
/// model state for workload generators.
#[derive(Debug, Clone, Default)]
pub struct InMemoryState {
    entries: BTreeMap<StateKey, Vec<u8>>,
}

impl InMemoryState {
    /// Creates an empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of keys present.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no keys are present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sets `key` to `value`.
    pub fn set(&mut self, key: StateKey, value: Vec<u8>) {
        self.entries.insert(key, value);
    }

    /// Removes `key`.
    pub fn delete(&mut self, key: &StateKey) {
        self.entries.remove(key);
    }

    /// Applies a block's write set.
    pub fn apply_writes<'a>(
        &mut self,
        writes: impl IntoIterator<Item = (&'a StateKey, &'a Option<Vec<u8>>)>,
    ) {
        for (key, value) in writes {
            match value {
                Some(v) => self.set(*key, v.clone()),
                None => self.delete(key),
            }
        }
    }
}

impl StateReader for InMemoryState {
    fn read(&self, key: &StateKey) -> Result<Option<Vec<u8>>, VmError> {
        Ok(self.entries.get(key).cloned())
    }
}

/// A bounded state backend serving reads only from an authenticated read
/// set — the enclave-side backend in Algorithm 2.
///
/// Any read outside the set returns [`VmError::ReadSetMiss`], which aborts
/// certificate construction (the untrusted pre-processor supplied an
/// incomplete `{r}_i`).
#[derive(Debug, Clone, Default)]
pub struct ReadSetState {
    entries: BTreeMap<StateKey, Option<Vec<u8>>>,
}

impl ReadSetState {
    /// Wraps an authenticated read set (`None` = key proven absent).
    pub fn new(entries: BTreeMap<StateKey, Option<Vec<u8>>>) -> Self {
        ReadSetState { entries }
    }

    /// The covered keys and their pre-state values.
    pub fn entries(&self) -> &BTreeMap<StateKey, Option<Vec<u8>>> {
        &self.entries
    }
}

impl StateReader for ReadSetState {
    fn read(&self, key: &StateKey) -> Result<Option<Vec<u8>>, VmError> {
        self.entries.get(key).cloned().ok_or(VmError::ReadSetMiss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_key_is_injective_on_boundaries() {
        // The length prefix prevents ("ab","c") colliding with ("a","bc").
        assert_ne!(StateKey::new("ab", b"c"), StateKey::new("a", b"bc"));
        assert_ne!(StateKey::new("", b"abc"), StateKey::new("abc", b""));
    }

    #[test]
    fn in_memory_state_round_trip() {
        let mut state = InMemoryState::new();
        let k = StateKey::new("c", b"f");
        assert_eq!(state.read(&k).unwrap(), None);
        state.set(k, b"v".to_vec());
        assert_eq!(state.read(&k).unwrap(), Some(b"v".to_vec()));
        state.delete(&k);
        assert_eq!(state.read(&k).unwrap(), None);
        assert!(state.is_empty());
    }

    #[test]
    fn read_set_state_misses_outside_set() {
        let k_in = StateKey::new("c", b"covered");
        let k_absent = StateKey::new("c", b"proven-absent");
        let k_out = StateKey::new("c", b"uncovered");
        let mut set = BTreeMap::new();
        set.insert(k_in, Some(b"v".to_vec()));
        set.insert(k_absent, None);
        let state = ReadSetState::new(set);
        assert_eq!(state.read(&k_in).unwrap(), Some(b"v".to_vec()));
        assert_eq!(state.read(&k_absent).unwrap(), None);
        assert_eq!(state.read(&k_out), Err(VmError::ReadSetMiss));
    }

    #[test]
    fn apply_writes_inserts_and_deletes() {
        let mut state = InMemoryState::new();
        let k1 = StateKey::new("c", b"1");
        let k2 = StateKey::new("c", b"2");
        state.set(k2, b"old".to_vec());
        let writes: Vec<(StateKey, Option<Vec<u8>>)> =
            vec![(k1, Some(b"new".to_vec())), (k2, None)];
        state.apply_writes(writes.iter().map(|(k, v)| (k, v)));
        assert_eq!(state.read(&k1).unwrap(), Some(b"new".to_vec()));
        assert_eq!(state.read(&k2).unwrap(), None);
    }
}
