//! Block execution: calls, contexts, and the executor.

use std::collections::BTreeMap;
use std::sync::Arc;

use dcert_primitives::codec::{Decode, Encode, Reader};
use dcert_primitives::error::CodecError;
use dcert_primitives::hash::Address;

use crate::contract::ContractRegistry;
use crate::error::VmError;
use crate::state::{StateKey, StateReader};

/// One contract invocation: the VM-level payload of a blockchain
/// transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Call {
    /// The calling account.
    pub sender: Address,
    /// The target contract's registry name.
    pub contract: String,
    /// Opaque contract-specific payload.
    pub payload: Vec<u8>,
}

impl Call {
    /// Creates a call.
    pub fn new(sender: Address, contract: impl Into<String>, payload: Vec<u8>) -> Self {
        Call {
            sender,
            contract: contract.into(),
            payload,
        }
    }
}

impl Encode for Call {
    fn encode(&self, out: &mut Vec<u8>) {
        self.sender.encode(out);
        self.contract.encode(out);
        self.payload.encode(out);
    }
}

impl Decode for Call {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Call {
            sender: Address::decode(r)?,
            contract: String::decode(r)?,
            payload: Vec::<u8>::decode(r)?,
        })
    }
}

/// The execution context handed to contracts.
///
/// Tracks, across a whole block:
///
/// - the **read set**: pre-block value of every key whose first access was
///   a read (what Algorithm 1 ships into the enclave as `{r}_i`),
/// - the **write buffer**: latest written value per key (becomes `{w}_i`),
/// - **compute units**: an abstract cost counter contracts burn to model
///   CPU-bound work.
///
/// Reads observe earlier writes in the same block (read-your-writes), so
/// replaying the block against just the read set reproduces identical
/// results.
pub struct ExecCtx<'a> {
    backend: &'a dyn StateReader,
    reads: BTreeMap<StateKey, Option<Vec<u8>>>,
    writes: BTreeMap<StateKey, Option<Vec<u8>>>,
    /// Writes of the current call only, so a revert can roll them back.
    call_writes: Vec<(StateKey, Option<Option<Vec<u8>>>)>,
    compute_units: u64,
}

impl<'a> ExecCtx<'a> {
    fn new(backend: &'a dyn StateReader) -> Self {
        ExecCtx {
            backend,
            reads: BTreeMap::new(),
            writes: BTreeMap::new(),
            call_writes: Vec::new(),
            compute_units: 0,
        }
    }

    /// Reads the current value of `(contract, field)`.
    ///
    /// # Errors
    ///
    /// Propagates [`VmError::ReadSetMiss`] from bounded backends.
    pub fn get(&mut self, contract: &str, field: &[u8]) -> Result<Option<Vec<u8>>, VmError> {
        let key = StateKey::new(contract, field);
        self.get_key(&key)
    }

    /// Reads a pre-derived state key.
    ///
    /// # Errors
    ///
    /// Propagates [`VmError::ReadSetMiss`] from bounded backends.
    pub fn get_key(&mut self, key: &StateKey) -> Result<Option<Vec<u8>>, VmError> {
        if let Some(buffered) = self.writes.get(key) {
            return Ok(buffered.clone());
        }
        if let Some(pre) = self.reads.get(key) {
            return Ok(pre.clone());
        }
        let value = self.backend.read(key)?;
        self.reads.insert(*key, value.clone());
        Ok(value)
    }

    /// Writes `(contract, field)` = `value`.
    pub fn set(&mut self, contract: &str, field: &[u8], value: Vec<u8>) {
        self.set_key(StateKey::new(contract, field), value);
    }

    /// Writes a pre-derived state key.
    pub fn set_key(&mut self, key: StateKey, value: Vec<u8>) {
        let prev = self.writes.insert(key, Some(value));
        self.call_writes.push((key, prev));
    }

    /// Deletes `(contract, field)`.
    pub fn delete(&mut self, contract: &str, field: &[u8]) {
        let key = StateKey::new(contract, field);
        let prev = self.writes.insert(key, None);
        self.call_writes.push((key, prev));
    }

    /// Burns `units` of abstract compute (CPU-bound contract work).
    pub fn burn(&mut self, units: u64) {
        self.compute_units = self.compute_units.saturating_add(units);
    }

    /// Compute units burned so far in this block.
    pub fn compute_units(&self) -> u64 {
        self.compute_units
    }

    fn begin_call(&mut self) {
        self.call_writes.clear();
    }

    fn revert_call(&mut self) {
        // Undo this call's writes in reverse order.
        while let Some((key, prev)) = self.call_writes.pop() {
            match prev {
                Some(value) => {
                    self.writes.insert(key, value);
                }
                None => {
                    self.writes.remove(&key);
                }
            }
        }
    }
}

/// Per-call outcome inside a [`BlockExecution`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallStatus {
    /// The call committed its writes.
    Ok,
    /// The call reverted with this error; its writes were discarded.
    Reverted(VmError),
}

/// The effect of executing a block of calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockExecution {
    /// Pre-block value of every key whose first access was a read
    /// (`None` = absent). This is `{r}_i` of Algorithm 1.
    pub reads: BTreeMap<StateKey, Option<Vec<u8>>>,
    /// Final value per written key (`None` = deleted). This is `{w}_i`.
    pub writes: BTreeMap<StateKey, Option<Vec<u8>>>,
    /// One status per call, in order.
    pub statuses: Vec<CallStatus>,
    /// Total compute units burned.
    pub compute_units: u64,
}

impl BlockExecution {
    /// Every key the block touched (reads ∪ writes) — the key set Merkle
    /// proofs must cover.
    pub fn touched_keys(&self) -> Vec<StateKey> {
        let mut keys: Vec<StateKey> = self
            .reads
            .keys()
            .chain(self.writes.keys())
            .copied()
            .collect();
        keys.sort_unstable();
        keys.dedup();
        keys
    }

    /// Number of calls that committed.
    pub fn committed(&self) -> usize {
        self.statuses
            .iter()
            .filter(|s| matches!(s, CallStatus::Ok))
            .count()
    }
}

/// Executes blocks of calls against a [`StateReader`] backend.
///
/// The same executor (and registry) is used by the miner, full nodes, the
/// CI's untrusted pre-processor, and the enclave's replay — determinism of
/// [`Contract`](crate::Contract) implementations guarantees they all
/// compute identical [`BlockExecution`]s.
#[derive(Debug, Clone)]
pub struct Executor {
    registry: Arc<ContractRegistry>,
}

impl Executor {
    /// Creates an executor over a contract registry.
    pub fn new(registry: Arc<ContractRegistry>) -> Self {
        Executor { registry }
    }

    /// The registry backing this executor.
    pub fn registry(&self) -> &Arc<ContractRegistry> {
        &self.registry
    }

    /// Executes `calls` sequentially as one block against the pre-block
    /// state served by `backend`.
    ///
    /// Failed calls revert individually (recorded in
    /// [`BlockExecution::statuses`]); a [`VmError::ReadSetMiss`] also
    /// reverts the offending call, which on the enclave side surfaces as a
    /// read/write-set mismatch against the claimed block.
    pub fn execute_block(&self, backend: &dyn StateReader, calls: &[Call]) -> BlockExecution {
        let mut ctx = ExecCtx::new(backend);
        let mut statuses = Vec::with_capacity(calls.len());
        for call in calls {
            ctx.begin_call();
            let status = match self.registry.get(&call.contract) {
                None => {
                    ctx.revert_call();
                    CallStatus::Reverted(VmError::ContractNotFound(call.contract.clone()))
                }
                Some(contract) => match contract.execute(&mut ctx, call.sender, &call.payload) {
                    Ok(()) => CallStatus::Ok,
                    Err(err) => {
                        ctx.revert_call();
                        CallStatus::Reverted(err)
                    }
                },
            };
            statuses.push(status);
        }
        BlockExecution {
            reads: ctx.reads,
            writes: ctx.writes,
            statuses,
            compute_units: ctx.compute_units,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::InMemoryState;
    use crate::testing::{CounterContract, FailingContract};

    fn executor() -> Executor {
        let mut registry = ContractRegistry::new();
        registry.register(Arc::new(CounterContract));
        registry.register(Arc::new(FailingContract));
        Executor::new(Arc::new(registry))
    }

    fn bump(sender: u64) -> Call {
        Call::new(Address::from_seed(sender), "counter", b"bump".to_vec())
    }

    #[test]
    fn single_call_records_read_and_write() {
        let exec = executor().execute_block(&InMemoryState::new(), &[bump(1)]);
        assert_eq!(exec.statuses, vec![CallStatus::Ok]);
        assert_eq!(exec.reads.len(), 1);
        assert_eq!(exec.writes.len(), 1);
        let key = StateKey::new("counter", b"value");
        assert_eq!(exec.reads[&key], None);
        assert_eq!(exec.writes[&key], Some(1u64.to_be_bytes().to_vec()));
    }

    #[test]
    fn read_your_writes_within_block() {
        // Two bumps in one block: the second sees the first's write, and the
        // read set still records the *pre-block* value only.
        let exec = executor().execute_block(&InMemoryState::new(), &[bump(1), bump(2)]);
        let key = StateKey::new("counter", b"value");
        assert_eq!(exec.reads[&key], None);
        assert_eq!(exec.writes[&key], Some(2u64.to_be_bytes().to_vec()));
    }

    #[test]
    fn pre_block_state_is_read() {
        let mut state = InMemoryState::new();
        state.set(
            StateKey::new("counter", b"value"),
            41u64.to_be_bytes().to_vec(),
        );
        let exec = executor().execute_block(&state, &[bump(1)]);
        let key = StateKey::new("counter", b"value");
        assert_eq!(exec.reads[&key], Some(41u64.to_be_bytes().to_vec()));
        assert_eq!(exec.writes[&key], Some(42u64.to_be_bytes().to_vec()));
    }

    #[test]
    fn failed_call_reverts_its_writes_only() {
        let calls = vec![
            bump(1),
            Call::new(
                Address::from_seed(9),
                "failing",
                b"write-then-fail".to_vec(),
            ),
            bump(2),
        ];
        let exec = executor().execute_block(&InMemoryState::new(), &calls);
        assert_eq!(exec.committed(), 2);
        assert!(matches!(exec.statuses[1], CallStatus::Reverted(_)));
        // The failing contract's key must not appear in the write set.
        let poison = StateKey::new("failing", b"poison");
        assert!(!exec.writes.contains_key(&poison));
        // Counter writes survive.
        let key = StateKey::new("counter", b"value");
        assert_eq!(exec.writes[&key], Some(2u64.to_be_bytes().to_vec()));
    }

    #[test]
    fn unknown_contract_reverts() {
        let calls = vec![Call::new(Address::from_seed(1), "ghost", Vec::new())];
        let exec = executor().execute_block(&InMemoryState::new(), &calls);
        assert!(matches!(
            &exec.statuses[0],
            CallStatus::Reverted(VmError::ContractNotFound(name)) if name == "ghost"
        ));
        assert!(exec.writes.is_empty());
    }

    #[test]
    fn replay_from_read_set_is_identical() {
        // Execute against full state; then replay against just the read set
        // (what the enclave does) and compare executions.
        let mut state = InMemoryState::new();
        state.set(
            StateKey::new("counter", b"value"),
            7u64.to_be_bytes().to_vec(),
        );
        let calls = vec![bump(1), bump(2), bump(3)];
        let exec = executor().execute_block(&state, &calls);

        let replay_backend = crate::state::ReadSetState::new(exec.reads.clone());
        let replay = executor().execute_block(&replay_backend, &calls);
        assert_eq!(replay, exec);
    }

    #[test]
    fn incomplete_read_set_reverts_calls() {
        let calls = vec![bump(1)];
        let empty = crate::state::ReadSetState::new(BTreeMap::new());
        let exec = executor().execute_block(&empty, &calls);
        assert!(matches!(
            exec.statuses[0],
            CallStatus::Reverted(VmError::ReadSetMiss)
        ));
    }

    #[test]
    fn touched_keys_union_is_sorted_unique() {
        let exec = executor().execute_block(&InMemoryState::new(), &[bump(1), bump(2)]);
        let touched = exec.touched_keys();
        assert_eq!(touched.len(), 1);
        assert!(touched.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn call_codec_round_trip() {
        let call = bump(5);
        let decoded = Call::decode_all(&call.to_encoded_bytes()).unwrap();
        assert_eq!(decoded, call);
    }
}
