//! VM error types.

use std::fmt;

/// An error raised while executing a contract call.
///
/// A failed call aborts with **no effect on state** (its buffered writes are
/// discarded), mirroring transaction revert semantics; the block itself
/// still commits the other calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// No contract is registered under the called name.
    ContractNotFound(String),
    /// The call payload failed to decode for the target contract.
    BadPayload(&'static str),
    /// The contract aborted with a domain error (e.g. insufficient funds).
    Aborted(&'static str),
    /// A read touched a key outside the provided read set — only possible
    /// when replaying against an authenticated read set with a hole, which
    /// means the untrusted pre-processor supplied an incomplete set.
    ReadSetMiss,
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::ContractNotFound(name) => write!(f, "contract not found: {name}"),
            VmError::BadPayload(what) => write!(f, "bad call payload: {what}"),
            VmError::Aborted(why) => write!(f, "contract aborted: {why}"),
            VmError::ReadSetMiss => write!(f, "read outside the provided read set"),
        }
    }
}

impl std::error::Error for VmError {}
