//! Tiny contracts for tests and documentation examples.
//!
//! Real workloads live in `dcert-workloads`; these exist so the VM (and
//! crates building on it) can be tested without a workload dependency.

use dcert_primitives::hash::Address;

use crate::contract::Contract;
use crate::error::VmError;
use crate::exec::ExecCtx;

/// A contract holding a single `u64` counter under the field `value`.
///
/// Payload `"bump"` increments it; anything else is rejected.
#[derive(Debug, Clone, Copy)]
pub struct CounterContract;

impl Contract for CounterContract {
    fn name(&self) -> &str {
        "counter"
    }

    fn execute(
        &self,
        ctx: &mut ExecCtx<'_>,
        _sender: Address,
        payload: &[u8],
    ) -> Result<(), VmError> {
        if payload != b"bump" {
            return Err(VmError::BadPayload("expected \"bump\""));
        }
        let current = match ctx.get("counter", b"value")? {
            None => 0u64,
            Some(bytes) => u64::from_be_bytes(
                bytes
                    .try_into()
                    .map_err(|_| VmError::Aborted("corrupt counter"))?,
            ),
        };
        ctx.set("counter", b"value", (current + 1).to_be_bytes().to_vec());
        ctx.burn(1);
        Ok(())
    }
}

/// A contract that writes a key and then aborts — used to test revert
/// semantics.
#[derive(Debug, Clone, Copy)]
pub struct FailingContract;

impl Contract for FailingContract {
    fn name(&self) -> &str {
        "failing"
    }

    fn execute(
        &self,
        ctx: &mut ExecCtx<'_>,
        _sender: Address,
        _payload: &[u8],
    ) -> Result<(), VmError> {
        ctx.set("failing", b"poison", b"must never commit".to_vec());
        Err(VmError::Aborted("always fails"))
    }
}
