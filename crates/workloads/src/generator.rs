//! Deterministic request generators for the five workloads.

use dcert_chain::Transaction;
use dcert_primitives::codec::Encode;
use dcert_primitives::keys::Keypair;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cpuheavy::CpuHeavyCall;
use crate::ioheavy::IoHeavyCall;
use crate::kvstore::KvCall;
use crate::smallbank::BankCall;

/// Which Blockbench workload to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// `DN` — empty transactions.
    DoNothing,
    /// `CPU` — sort arrays of the given size.
    CpuHeavy {
        /// Array length each transaction sorts.
        size: u32,
    },
    /// `IO` — batches of writes/reads of the given size.
    IoHeavy {
        /// Records per batch.
        batch: u32,
    },
    /// `KV` — uniform single-key put/get/delete mix.
    KvStore {
        /// Number of distinct keys.
        keyspace: u64,
    },
    /// `SB` — the SmallBank six-op mix.
    SmallBank {
        /// Number of customers.
        customers: u64,
    },
}

impl Workload {
    /// The short label the paper uses (DN/CPU/IO/KV/SB).
    pub fn label(&self) -> &'static str {
        match self {
            Workload::DoNothing => "DN",
            Workload::CpuHeavy { .. } => "CPU",
            Workload::IoHeavy { .. } => "IO",
            Workload::KvStore { .. } => "KV",
            Workload::SmallBank { .. } => "SB",
        }
    }

    /// The contract name targeted by this workload.
    pub fn contract(&self) -> &'static str {
        match self {
            Workload::DoNothing => "donothing",
            Workload::CpuHeavy { .. } => "cpuheavy",
            Workload::IoHeavy { .. } => "ioheavy",
            Workload::KvStore { .. } => "kvstore",
            Workload::SmallBank { .. } => "smallbank",
        }
    }

    /// Paper defaults for the five workloads (Fig. 8 setup).
    pub fn paper_defaults() -> [Workload; 5] {
        [
            Workload::DoNothing,
            Workload::CpuHeavy { size: 4096 },
            Workload::IoHeavy { batch: 32 },
            Workload::KvStore { keyspace: 500 },
            Workload::SmallBank { customers: 500 },
        ]
    }
}

/// A deterministic transaction-request generator.
///
/// Holds a pool of pre-generated sender keys (the paper uses 100 k sender
/// accounts; tests use smaller pools) and a seeded RNG, so the same seed
/// always produces the same transaction stream.
pub struct WorkloadGen {
    workload: Workload,
    senders: Vec<Keypair>,
    rng: StdRng,
    nonce: u64,
}

impl std::fmt::Debug for WorkloadGen {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkloadGen")
            .field("workload", &self.workload)
            .field("senders", &self.senders.len())
            .field("nonce", &self.nonce)
            .finish()
    }
}

impl WorkloadGen {
    /// Creates a generator with `senders` deterministic sender accounts.
    pub fn new(workload: Workload, senders: usize, seed: u64) -> Self {
        let mut key_rng = StdRng::seed_from_u64(seed ^ 0x5eed_acc0);
        let senders = (0..senders)
            .map(|_| {
                let mut key_seed = [0u8; 32];
                key_rng.fill(&mut key_seed);
                Keypair::from_seed(key_seed)
            })
            .collect();
        WorkloadGen {
            workload,
            senders,
            rng: StdRng::seed_from_u64(seed),
            nonce: 0,
        }
    }

    /// The generated workload.
    pub fn workload(&self) -> Workload {
        self.workload
    }

    /// Generates the next block's worth of `count` signed transactions.
    pub fn next_block(&mut self, count: usize) -> Vec<Transaction> {
        (0..count).map(|_| self.next_tx()).collect()
    }

    /// Generates one signed transaction.
    pub fn next_tx(&mut self) -> Transaction {
        let sender_idx = self.rng.gen_range(0..self.senders.len());
        let nonce = self.nonce;
        self.nonce += 1;
        let payload = self.next_payload();
        let contract = self.workload.contract();
        Transaction::sign(&self.senders[sender_idx], nonce, contract, payload)
    }

    fn next_payload(&mut self) -> Vec<u8> {
        match self.workload {
            Workload::DoNothing => Vec::new(),
            Workload::CpuHeavy { size } => CpuHeavyCall {
                seed: self.rng.gen(),
                size,
            }
            .to_encoded_bytes(),
            Workload::IoHeavy { batch } => {
                let start = self.rng.gen_range(0..4096u64);
                if self.rng.gen_bool(0.5) {
                    IoHeavyCall::WriteBatch {
                        start,
                        count: batch,
                    }
                } else {
                    IoHeavyCall::ReadBatch {
                        start,
                        count: batch,
                    }
                }
                .to_encoded_bytes()
            }
            Workload::KvStore { keyspace } => {
                let key = format!("key-{}", self.rng.gen_range(0..keyspace)).into_bytes();
                let roll: f64 = self.rng.gen();
                if roll < 0.5 {
                    let value = format!("value-{}", self.rng.gen::<u32>()).into_bytes();
                    KvCall::Put { key, value }
                } else if roll < 0.9 {
                    KvCall::Get { key }
                } else {
                    KvCall::Delete { key }
                }
                .to_encoded_bytes()
            }
            Workload::SmallBank { customers } => {
                let a = self.rng.gen_range(0..customers);
                let b = self.rng.gen_range(0..customers);
                let amount = self.rng.gen_range(1..100u64);
                match self.rng.gen_range(0..6u8) {
                    0 => BankCall::TransactSavings {
                        customer: a,
                        amount,
                    },
                    1 => BankCall::DepositChecking {
                        customer: a,
                        amount,
                    },
                    2 => BankCall::SendPayment {
                        from: a,
                        to: b,
                        amount,
                    },
                    3 => BankCall::WriteCheck {
                        customer: a,
                        amount,
                    },
                    4 => BankCall::Amalgamate { from: a, to: b },
                    _ => BankCall::GetBalance { customer: a },
                }
                .to_encoded_bytes()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blockbench_registry;
    use dcert_vm::{Executor, InMemoryState};
    use std::sync::Arc;

    #[test]
    fn generation_is_deterministic() {
        let mut a = WorkloadGen::new(Workload::KvStore { keyspace: 100 }, 8, 42);
        let mut b = WorkloadGen::new(Workload::KvStore { keyspace: 100 }, 8, 42);
        assert_eq!(a.next_block(20), b.next_block(20));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = WorkloadGen::new(Workload::KvStore { keyspace: 100 }, 8, 1);
        let mut b = WorkloadGen::new(Workload::KvStore { keyspace: 100 }, 8, 2);
        assert_ne!(a.next_block(20), b.next_block(20));
    }

    #[test]
    fn every_workload_produces_valid_executable_txs() {
        let executor = Executor::new(Arc::new(blockbench_registry()));
        for workload in [
            Workload::DoNothing,
            Workload::CpuHeavy { size: 64 },
            Workload::IoHeavy { batch: 4 },
            Workload::KvStore { keyspace: 16 },
            Workload::SmallBank { customers: 16 },
        ] {
            let mut gen = WorkloadGen::new(workload, 4, 7);
            let txs = gen.next_block(16);
            for tx in &txs {
                tx.verify()
                    .unwrap_or_else(|e| panic!("{}: invalid generated tx: {e}", workload.label()));
            }
            let calls: Vec<_> = txs.iter().map(|t| t.call.clone()).collect();
            let exec = executor.execute_block(&InMemoryState::new(), &calls);
            assert_eq!(
                exec.committed(),
                16,
                "{}: all generated txs must commit",
                workload.label()
            );
        }
    }

    #[test]
    fn nonces_are_unique() {
        let mut gen = WorkloadGen::new(Workload::DoNothing, 2, 3);
        let txs = gen.next_block(50);
        let mut nonces: Vec<u64> = txs.iter().map(|t| t.nonce).collect();
        nonces.sort_unstable();
        nonces.dedup();
        assert_eq!(nonces.len(), 50);
    }

    #[test]
    fn labels_and_contracts_are_consistent() {
        for w in Workload::paper_defaults() {
            assert!(!w.label().is_empty());
            assert!(!w.contract().is_empty());
        }
    }
}
