//! Blockbench `CPUHeavy`: in-contract sorting.
//!
//! The original contract allocates an integer array of parameterized size
//! and quicksorts it. Compute-bound: no state access, so in DCert's
//! Fig. 8 it shows long outside-enclave *and* inside-enclave execution
//! with almost no Merkle-proof traffic — which is why the relative enclave
//! overhead is smallest here.

use dcert_primitives::codec::{Decode, Encode, Reader};
use dcert_primitives::error::CodecError;
use dcert_primitives::hash::Address;
use dcert_vm::{Contract, ExecCtx, VmError};

/// Payload of a CPUHeavy call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuHeavyCall {
    /// Seed of the deterministic pseudo-random array.
    pub seed: u64,
    /// Array length to generate and sort.
    pub size: u32,
}

impl Encode for CpuHeavyCall {
    fn encode(&self, out: &mut Vec<u8>) {
        self.seed.encode(out);
        self.size.encode(out);
    }
}

impl Decode for CpuHeavyCall {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(CpuHeavyCall {
            seed: u64::decode(r)?,
            size: u32::decode(r)?,
        })
    }
}

/// Maximum accepted array size (keeps a single call bounded).
pub const MAX_SIZE: u32 = 1 << 20;

/// The CPUHeavy contract (`CPU`).
#[derive(Debug, Clone, Copy)]
pub struct CpuHeavy;

impl Contract for CpuHeavy {
    fn name(&self) -> &str {
        "cpuheavy"
    }

    fn execute(
        &self,
        ctx: &mut ExecCtx<'_>,
        _sender: Address,
        payload: &[u8],
    ) -> Result<(), VmError> {
        let call =
            CpuHeavyCall::decode_all(payload).map_err(|_| VmError::BadPayload("cpuheavy call"))?;
        if call.size > MAX_SIZE {
            return Err(VmError::Aborted("array too large"));
        }
        // Deterministic xorshift* sequence, then sort — same work pattern
        // as Blockbench's quicksort benchmark.
        let mut x = call.seed | 1;
        let mut data: Vec<u64> = (0..call.size)
            .map(|_| {
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                x.wrapping_mul(0x2545F4914F6CDD1D)
            })
            .collect();
        data.sort_unstable();
        // Burn compute units proportional to n log n.
        let n = call.size as u64;
        ctx.burn(n * (64 - n.leading_zeros() as u64));
        // Prevent the optimizer from discarding the sort.
        if data.first() > data.last() {
            return Err(VmError::Aborted("sort violated order"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcert_vm::{Call, ContractRegistry, Executor, InMemoryState};
    use std::sync::Arc;

    fn exec(payload: Vec<u8>) -> dcert_vm::BlockExecution {
        let mut registry = ContractRegistry::new();
        registry.register(Arc::new(CpuHeavy));
        let executor = Executor::new(Arc::new(registry));
        let calls = vec![Call::new(Address::from_seed(1), "cpuheavy", payload)];
        executor.execute_block(&InMemoryState::new(), &calls)
    }

    #[test]
    fn sorts_without_state_access() {
        let payload = CpuHeavyCall {
            seed: 7,
            size: 4096,
        }
        .to_encoded_bytes();
        let result = exec(payload);
        assert_eq!(result.committed(), 1);
        assert!(result.reads.is_empty());
        assert!(result.writes.is_empty());
        assert!(result.compute_units > 0);
    }

    #[test]
    fn rejects_bad_payload() {
        let result = exec(b"junk".to_vec());
        assert_eq!(result.committed(), 0);
    }

    #[test]
    fn rejects_oversized_array() {
        let payload = CpuHeavyCall {
            seed: 7,
            size: MAX_SIZE + 1,
        }
        .to_encoded_bytes();
        assert_eq!(exec(payload).committed(), 0);
    }

    #[test]
    fn payload_codec_round_trip() {
        let call = CpuHeavyCall { seed: 9, size: 128 };
        assert_eq!(
            CpuHeavyCall::decode_all(&call.to_encoded_bytes()).unwrap(),
            call
        );
    }
}
