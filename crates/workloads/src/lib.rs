//! Blockbench workload reimplementations.
//!
//! The paper evaluates DCert with Blockbench (Dinh et al., SIGMOD'17):
//! three micro-benchmarks — **DoNothing** (DN), **CPUHeavy** (CPU),
//! **IOHeavy** (IO) — and two macro-benchmarks — **KVStore** (KV) and
//! **SmallBank** (SB). Blockbench itself targets EVM/Hyperledger
//! deployments, so this crate reimplements the five contracts natively for
//! the `dcert-vm` with the same state-access and compute patterns, plus
//! deterministic request generators that drive them
//! ([`generator::WorkloadGen`]).
//!
//! | Contract | Pattern |
//! |---|---|
//! | [`DoNothing`] | no reads, no writes — pure protocol overhead |
//! | [`CpuHeavy`] | sorts a pseudo-random array in-contract — compute-bound |
//! | [`IoHeavy`] | batch writes/reads of keyed records — state-bound |
//! | [`KvStore`] | single-key get/put/delete, YCSB-style |
//! | [`SmallBank`] | the classic 6-op banking mix over (savings, checking) pairs |
//!
//! [`DoNothing`]: donothing::DoNothing
//! [`CpuHeavy`]: cpuheavy::CpuHeavy
//! [`IoHeavy`]: ioheavy::IoHeavy
//! [`KvStore`]: kvstore::KvStore
//! [`SmallBank`]: smallbank::SmallBank

#![forbid(unsafe_code)]

pub mod cpuheavy;
pub mod donothing;
pub mod generator;
pub mod ioheavy;
pub mod kvstore;
pub mod serveload;
pub mod smallbank;

pub use generator::{Workload, WorkloadGen};
pub use serveload::{ServeEvent, ServeLoadConfig, ServeLoadGen, ServeQueryKind};

use std::sync::Arc;

use dcert_vm::ContractRegistry;

/// A registry with all five Blockbench contracts installed — the shared
/// chain semantics used by miners, full nodes, the CI, and the enclave.
pub fn blockbench_registry() -> ContractRegistry {
    let mut registry = ContractRegistry::new();
    registry.register(Arc::new(donothing::DoNothing));
    registry.register(Arc::new(cpuheavy::CpuHeavy));
    registry.register(Arc::new(ioheavy::IoHeavy));
    registry.register(Arc::new(kvstore::KvStore));
    registry.register(Arc::new(smallbank::SmallBank));
    registry
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_contains_all_five() {
        let registry = blockbench_registry();
        for name in ["donothing", "cpuheavy", "ioheavy", "kvstore", "smallbank"] {
            assert!(registry.get(name).is_some(), "{name} missing");
        }
        assert_eq!(registry.len(), 5);
    }
}
