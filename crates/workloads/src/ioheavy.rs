//! Blockbench `IOHeavy`: batch state reads and writes.
//!
//! The original contract writes / reads / scans large batches of keyed
//! records. State-bound: in DCert's Figures 8–9 it produces the largest
//! read/write sets and Merkle proofs, maximizing enclave marshalling.

use dcert_primitives::codec::{Decode, Encode, Reader};
use dcert_primitives::error::CodecError;
use dcert_primitives::hash::Address;
use dcert_vm::{Contract, ExecCtx, VmError};

/// Payload of an IOHeavy call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoHeavyCall {
    /// Write `count` records starting at key index `start`.
    WriteBatch {
        /// First key index.
        start: u64,
        /// Number of keys.
        count: u32,
    },
    /// Read `count` records starting at key index `start`.
    ReadBatch {
        /// First key index.
        start: u64,
        /// Number of keys.
        count: u32,
    },
}

/// Maximum batch size accepted per call.
pub const MAX_BATCH: u32 = 4096;

impl Encode for IoHeavyCall {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            IoHeavyCall::WriteBatch { start, count } => {
                out.push(0);
                start.encode(out);
                count.encode(out);
            }
            IoHeavyCall::ReadBatch { start, count } => {
                out.push(1);
                start.encode(out);
                count.encode(out);
            }
        }
    }
}

impl Decode for IoHeavyCall {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.take_byte()? {
            0 => Ok(IoHeavyCall::WriteBatch {
                start: u64::decode(r)?,
                count: u32::decode(r)?,
            }),
            1 => Ok(IoHeavyCall::ReadBatch {
                start: u64::decode(r)?,
                count: u32::decode(r)?,
            }),
            other => Err(CodecError::InvalidTag(other)),
        }
    }
}

/// The IOHeavy contract (`IO`).
#[derive(Debug, Clone, Copy)]
pub struct IoHeavy;

fn record_field(index: u64) -> Vec<u8> {
    let mut field = b"rec-".to_vec();
    field.extend_from_slice(&index.to_be_bytes());
    field
}

impl Contract for IoHeavy {
    fn name(&self) -> &str {
        "ioheavy"
    }

    fn execute(
        &self,
        ctx: &mut ExecCtx<'_>,
        sender: Address,
        payload: &[u8],
    ) -> Result<(), VmError> {
        let call =
            IoHeavyCall::decode_all(payload).map_err(|_| VmError::BadPayload("ioheavy call"))?;
        match call {
            IoHeavyCall::WriteBatch { start, count } => {
                if count > MAX_BATCH {
                    return Err(VmError::Aborted("batch too large"));
                }
                for i in 0..count as u64 {
                    let mut value = sender.as_bytes().to_vec();
                    value.extend_from_slice(&(start + i).to_be_bytes());
                    ctx.set("ioheavy", &record_field(start + i), value);
                }
            }
            IoHeavyCall::ReadBatch { start, count } => {
                if count > MAX_BATCH {
                    return Err(VmError::Aborted("batch too large"));
                }
                let mut found = 0u64;
                for i in 0..count as u64 {
                    if ctx.get("ioheavy", &record_field(start + i))?.is_some() {
                        found += 1;
                    }
                }
                ctx.burn(found);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcert_vm::{Call, ContractRegistry, Executor, InMemoryState, StateKey};
    use std::sync::Arc;

    fn executor() -> Executor {
        let mut registry = ContractRegistry::new();
        registry.register(Arc::new(IoHeavy));
        Executor::new(Arc::new(registry))
    }

    #[test]
    fn write_batch_touches_count_keys() {
        let calls = vec![Call::new(
            Address::from_seed(1),
            "ioheavy",
            IoHeavyCall::WriteBatch {
                start: 0,
                count: 50,
            }
            .to_encoded_bytes(),
        )];
        let exec = executor().execute_block(&InMemoryState::new(), &calls);
        assert_eq!(exec.committed(), 1);
        assert_eq!(exec.writes.len(), 50);
    }

    #[test]
    fn read_batch_records_reads() {
        let mut state = InMemoryState::new();
        for i in 0..10u64 {
            state.set(StateKey::new("ioheavy", &record_field(i)), vec![1]);
        }
        let calls = vec![Call::new(
            Address::from_seed(1),
            "ioheavy",
            IoHeavyCall::ReadBatch {
                start: 0,
                count: 20,
            }
            .to_encoded_bytes(),
        )];
        let exec = executor().execute_block(&state, &calls);
        assert_eq!(exec.committed(), 1);
        assert_eq!(exec.reads.len(), 20);
        assert!(exec.writes.is_empty());
        assert_eq!(exec.compute_units, 10);
    }

    #[test]
    fn oversized_batch_rejected() {
        let calls = vec![Call::new(
            Address::from_seed(1),
            "ioheavy",
            IoHeavyCall::WriteBatch {
                start: 0,
                count: MAX_BATCH + 1,
            }
            .to_encoded_bytes(),
        )];
        let exec = executor().execute_block(&InMemoryState::new(), &calls);
        assert_eq!(exec.committed(), 0);
        assert!(exec.writes.is_empty());
    }

    #[test]
    fn payload_codec_round_trip() {
        for call in [
            IoHeavyCall::WriteBatch { start: 5, count: 9 },
            IoHeavyCall::ReadBatch { start: 0, count: 1 },
        ] {
            assert_eq!(
                IoHeavyCall::decode_all(&call.to_encoded_bytes()).unwrap(),
                call
            );
        }
    }
}
