//! Blockbench `DoNothing`: the empty contract.
//!
//! Measures pure per-transaction protocol overhead — no state access, no
//! compute. In DCert's Fig. 8 this isolates the fixed cost of certificate
//! construction (signature verification, proof handling, ECall overhead).

use dcert_primitives::hash::Address;
use dcert_vm::{Contract, ExecCtx, VmError};

/// The DoNothing contract (`DN`).
#[derive(Debug, Clone, Copy)]
pub struct DoNothing;

impl Contract for DoNothing {
    fn name(&self) -> &str {
        "donothing"
    }

    fn execute(
        &self,
        _ctx: &mut ExecCtx<'_>,
        _sender: Address,
        _payload: &[u8],
    ) -> Result<(), VmError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcert_vm::{Call, ContractRegistry, Executor, InMemoryState};
    use std::sync::Arc;

    #[test]
    fn touches_nothing() {
        let mut registry = ContractRegistry::new();
        registry.register(Arc::new(DoNothing));
        let executor = Executor::new(Arc::new(registry));
        let calls = vec![Call::new(Address::from_seed(1), "donothing", Vec::new())];
        let exec = executor.execute_block(&InMemoryState::new(), &calls);
        assert_eq!(exec.committed(), 1);
        assert!(exec.reads.is_empty());
        assert!(exec.writes.is_empty());
        assert_eq!(exec.compute_units, 0);
    }
}
