//! Blockbench `KVStore`: a YCSB-style key-value contract.
//!
//! Single-key gets, puts, and deletes over string keys — the `KV` macro
//! benchmark. The paper's verifiable-query experiments also build on this
//! state shape ("500 key-value tuples, then continuous updates").

use dcert_primitives::codec::{Decode, Encode, Reader};
use dcert_primitives::error::CodecError;
use dcert_primitives::hash::Address;
use dcert_vm::{Contract, ExecCtx, VmError};

/// Payload of a KVStore call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvCall {
    /// Set `key` to `value`.
    Put {
        /// The record key.
        key: Vec<u8>,
        /// The value to store.
        value: Vec<u8>,
    },
    /// Read `key` (burns one unit if present; result is observational).
    Get {
        /// The record key.
        key: Vec<u8>,
    },
    /// Remove `key`.
    Delete {
        /// The record key.
        key: Vec<u8>,
    },
}

impl Encode for KvCall {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            KvCall::Put { key, value } => {
                out.push(0);
                key.encode(out);
                value.encode(out);
            }
            KvCall::Get { key } => {
                out.push(1);
                key.encode(out);
            }
            KvCall::Delete { key } => {
                out.push(2);
                key.encode(out);
            }
        }
    }
}

impl Decode for KvCall {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.take_byte()? {
            0 => Ok(KvCall::Put {
                key: Vec::<u8>::decode(r)?,
                value: Vec::<u8>::decode(r)?,
            }),
            1 => Ok(KvCall::Get {
                key: Vec::<u8>::decode(r)?,
            }),
            2 => Ok(KvCall::Delete {
                key: Vec::<u8>::decode(r)?,
            }),
            other => Err(CodecError::InvalidTag(other)),
        }
    }
}

/// The KVStore contract (`KV`).
#[derive(Debug, Clone, Copy)]
pub struct KvStore;

impl Contract for KvStore {
    fn name(&self) -> &str {
        "kvstore"
    }

    fn execute(
        &self,
        ctx: &mut ExecCtx<'_>,
        _sender: Address,
        payload: &[u8],
    ) -> Result<(), VmError> {
        let call = KvCall::decode_all(payload).map_err(|_| VmError::BadPayload("kv call"))?;
        match call {
            KvCall::Put { key, value } => ctx.set("kvstore", &key, value),
            KvCall::Get { key } => {
                if ctx.get("kvstore", &key)?.is_some() {
                    ctx.burn(1);
                }
            }
            KvCall::Delete { key } => ctx.delete("kvstore", &key),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcert_vm::{Call, ContractRegistry, Executor, InMemoryState, StateKey};
    use std::sync::Arc;

    fn executor() -> Executor {
        let mut registry = ContractRegistry::new();
        registry.register(Arc::new(KvStore));
        Executor::new(Arc::new(registry))
    }

    fn call(op: KvCall) -> Call {
        Call::new(Address::from_seed(1), "kvstore", op.to_encoded_bytes())
    }

    #[test]
    fn put_get_delete_cycle() {
        let exec = executor().execute_block(
            &InMemoryState::new(),
            &[
                call(KvCall::Put {
                    key: b"k".to_vec(),
                    value: b"v".to_vec(),
                }),
                call(KvCall::Get { key: b"k".to_vec() }),
                call(KvCall::Delete { key: b"k".to_vec() }),
            ],
        );
        assert_eq!(exec.committed(), 3);
        let key = StateKey::new("kvstore", b"k");
        // Net effect: key deleted.
        assert_eq!(exec.writes[&key], None);
        // Read-your-writes: the Get saw the in-block Put.
        assert_eq!(exec.compute_units, 1);
    }

    #[test]
    fn get_of_missing_key_reads_pre_state() {
        let exec = executor().execute_block(
            &InMemoryState::new(),
            &[call(KvCall::Get {
                key: b"nope".to_vec(),
            })],
        );
        assert_eq!(exec.committed(), 1);
        assert_eq!(exec.reads.len(), 1);
        assert_eq!(exec.compute_units, 0);
    }

    #[test]
    fn payload_codec_round_trip() {
        for op in [
            KvCall::Put {
                key: b"a".to_vec(),
                value: b"b".to_vec(),
            },
            KvCall::Get { key: b"a".to_vec() },
            KvCall::Delete { key: b"a".to_vec() },
        ] {
            assert_eq!(KvCall::decode_all(&op.to_encoded_bytes()).unwrap(), op);
        }
    }
}
