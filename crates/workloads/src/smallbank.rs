//! Blockbench `SmallBank`: the classic banking transaction mix.
//!
//! Each customer holds a *savings* and a *checking* balance; six operation
//! types (H-Store's SmallBank, as adopted by Blockbench) mix reads and
//! small read-modify-writes across one or two customers. Accounts are
//! lazily initialized with [`INITIAL_BALANCE`] on first touch (Blockbench
//! pre-creates them with a loader phase; lazy defaults produce the same
//! per-transaction access pattern without a separate loading stage).

use dcert_primitives::codec::{Decode, Encode, Reader};
use dcert_primitives::error::CodecError;
use dcert_primitives::hash::Address;
use dcert_vm::{Contract, ExecCtx, VmError};

/// Balance every account starts with.
pub const INITIAL_BALANCE: u64 = 10_000;

/// Payload of a SmallBank call. `customer` ids index the account space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankCall {
    /// Add `amount` to savings.
    TransactSavings {
        /// Customer id.
        customer: u64,
        /// Amount to add.
        amount: u64,
    },
    /// Add `amount` to checking.
    DepositChecking {
        /// Customer id.
        customer: u64,
        /// Amount to add.
        amount: u64,
    },
    /// Move `amount` of checking from `from` to `to`.
    SendPayment {
        /// Payer.
        from: u64,
        /// Payee.
        to: u64,
        /// Amount to move.
        amount: u64,
    },
    /// Deduct a check of `amount` from checking.
    WriteCheck {
        /// Customer id.
        customer: u64,
        /// Check amount.
        amount: u64,
    },
    /// Fold savings+checking of `from` into `to`'s checking.
    Amalgamate {
        /// Source customer.
        from: u64,
        /// Destination customer.
        to: u64,
    },
    /// Read both balances (observational).
    GetBalance {
        /// Customer id.
        customer: u64,
    },
}

impl Encode for BankCall {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            BankCall::TransactSavings { customer, amount } => {
                out.push(0);
                customer.encode(out);
                amount.encode(out);
            }
            BankCall::DepositChecking { customer, amount } => {
                out.push(1);
                customer.encode(out);
                amount.encode(out);
            }
            BankCall::SendPayment { from, to, amount } => {
                out.push(2);
                from.encode(out);
                to.encode(out);
                amount.encode(out);
            }
            BankCall::WriteCheck { customer, amount } => {
                out.push(3);
                customer.encode(out);
                amount.encode(out);
            }
            BankCall::Amalgamate { from, to } => {
                out.push(4);
                from.encode(out);
                to.encode(out);
            }
            BankCall::GetBalance { customer } => {
                out.push(5);
                customer.encode(out);
            }
        }
    }
}

impl Decode for BankCall {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.take_byte()? {
            0 => Ok(BankCall::TransactSavings {
                customer: u64::decode(r)?,
                amount: u64::decode(r)?,
            }),
            1 => Ok(BankCall::DepositChecking {
                customer: u64::decode(r)?,
                amount: u64::decode(r)?,
            }),
            2 => Ok(BankCall::SendPayment {
                from: u64::decode(r)?,
                to: u64::decode(r)?,
                amount: u64::decode(r)?,
            }),
            3 => Ok(BankCall::WriteCheck {
                customer: u64::decode(r)?,
                amount: u64::decode(r)?,
            }),
            4 => Ok(BankCall::Amalgamate {
                from: u64::decode(r)?,
                to: u64::decode(r)?,
            }),
            5 => Ok(BankCall::GetBalance {
                customer: u64::decode(r)?,
            }),
            other => Err(CodecError::InvalidTag(other)),
        }
    }
}

/// The SmallBank contract (`SB`).
#[derive(Debug, Clone, Copy)]
pub struct SmallBank;

fn savings_field(customer: u64) -> Vec<u8> {
    let mut f = b"sav-".to_vec();
    f.extend_from_slice(&customer.to_be_bytes());
    f
}

fn checking_field(customer: u64) -> Vec<u8> {
    let mut f = b"chk-".to_vec();
    f.extend_from_slice(&customer.to_be_bytes());
    f
}

fn load(ctx: &mut ExecCtx<'_>, field: &[u8]) -> Result<u64, VmError> {
    match ctx.get("smallbank", field)? {
        None => Ok(INITIAL_BALANCE),
        Some(bytes) => Ok(u64::from_be_bytes(
            bytes
                .try_into()
                .map_err(|_| VmError::Aborted("corrupt balance"))?,
        )),
    }
}

fn store(ctx: &mut ExecCtx<'_>, field: &[u8], value: u64) {
    ctx.set("smallbank", field, value.to_be_bytes().to_vec());
}

impl Contract for SmallBank {
    fn name(&self) -> &str {
        "smallbank"
    }

    fn execute(
        &self,
        ctx: &mut ExecCtx<'_>,
        _sender: Address,
        payload: &[u8],
    ) -> Result<(), VmError> {
        let call =
            BankCall::decode_all(payload).map_err(|_| VmError::BadPayload("smallbank call"))?;
        match call {
            BankCall::TransactSavings { customer, amount } => {
                let balance = load(ctx, &savings_field(customer))?;
                store(
                    ctx,
                    &savings_field(customer),
                    balance.saturating_add(amount),
                );
            }
            BankCall::DepositChecking { customer, amount } => {
                let balance = load(ctx, &checking_field(customer))?;
                store(
                    ctx,
                    &checking_field(customer),
                    balance.saturating_add(amount),
                );
            }
            BankCall::SendPayment { from, to, amount } => {
                let src = load(ctx, &checking_field(from))?;
                if src < amount {
                    return Err(VmError::Aborted("insufficient funds"));
                }
                let dst = load(ctx, &checking_field(to))?;
                store(ctx, &checking_field(from), src - amount);
                store(ctx, &checking_field(to), dst.saturating_add(amount));
            }
            BankCall::WriteCheck { customer, amount } => {
                let balance = load(ctx, &checking_field(customer))?;
                if balance < amount {
                    return Err(VmError::Aborted("insufficient funds"));
                }
                store(ctx, &checking_field(customer), balance - amount);
            }
            BankCall::Amalgamate { from, to } => {
                let savings = load(ctx, &savings_field(from))?;
                let checking = load(ctx, &checking_field(from))?;
                let dst = load(ctx, &checking_field(to))?;
                store(ctx, &savings_field(from), 0);
                store(ctx, &checking_field(from), 0);
                store(
                    ctx,
                    &checking_field(to),
                    dst.saturating_add(savings).saturating_add(checking),
                );
            }
            BankCall::GetBalance { customer } => {
                let total = load(ctx, &savings_field(customer))?
                    .saturating_add(load(ctx, &checking_field(customer))?);
                ctx.burn(1 + (total > 0) as u64);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcert_vm::{Call, ContractRegistry, Executor, InMemoryState, StateKey};
    use std::sync::Arc;

    fn executor() -> Executor {
        let mut registry = ContractRegistry::new();
        registry.register(Arc::new(SmallBank));
        Executor::new(Arc::new(registry))
    }

    fn call(op: BankCall) -> Call {
        Call::new(Address::from_seed(0), "smallbank", op.to_encoded_bytes())
    }

    fn checking(exec: &dcert_vm::BlockExecution, customer: u64) -> Option<u64> {
        exec.writes
            .get(&StateKey::new("smallbank", &checking_field(customer)))
            .and_then(|v| v.as_ref())
            .map(|b| u64::from_be_bytes(b.as_slice().try_into().unwrap()))
    }

    #[test]
    fn send_payment_moves_funds() {
        let exec = executor().execute_block(
            &InMemoryState::new(),
            &[call(BankCall::SendPayment {
                from: 1,
                to: 2,
                amount: 100,
            })],
        );
        assert_eq!(exec.committed(), 1);
        assert_eq!(checking(&exec, 1), Some(INITIAL_BALANCE - 100));
        assert_eq!(checking(&exec, 2), Some(INITIAL_BALANCE + 100));
    }

    #[test]
    fn overdraft_reverts() {
        let exec = executor().execute_block(
            &InMemoryState::new(),
            &[call(BankCall::SendPayment {
                from: 1,
                to: 2,
                amount: INITIAL_BALANCE + 1,
            })],
        );
        assert_eq!(exec.committed(), 0);
        assert!(exec.writes.is_empty());
    }

    #[test]
    fn amalgamate_zeroes_source() {
        let exec = executor().execute_block(
            &InMemoryState::new(),
            &[
                call(BankCall::TransactSavings {
                    customer: 1,
                    amount: 500,
                }),
                call(BankCall::Amalgamate { from: 1, to: 2 }),
            ],
        );
        assert_eq!(exec.committed(), 2);
        assert_eq!(checking(&exec, 1), Some(0));
        assert_eq!(
            checking(&exec, 2),
            Some(INITIAL_BALANCE + INITIAL_BALANCE + 500 + INITIAL_BALANCE)
        );
    }

    #[test]
    fn write_check_deducts() {
        let exec = executor().execute_block(
            &InMemoryState::new(),
            &[call(BankCall::WriteCheck {
                customer: 3,
                amount: 42,
            })],
        );
        assert_eq!(checking(&exec, 3), Some(INITIAL_BALANCE - 42));
    }

    #[test]
    fn get_balance_is_read_only() {
        let exec = executor().execute_block(
            &InMemoryState::new(),
            &[call(BankCall::GetBalance { customer: 5 })],
        );
        assert_eq!(exec.committed(), 1);
        assert!(exec.writes.is_empty());
        assert_eq!(exec.reads.len(), 2);
    }

    #[test]
    fn payload_codec_round_trip() {
        for op in [
            BankCall::TransactSavings {
                customer: 1,
                amount: 2,
            },
            BankCall::DepositChecking {
                customer: 1,
                amount: 2,
            },
            BankCall::SendPayment {
                from: 1,
                to: 2,
                amount: 3,
            },
            BankCall::WriteCheck {
                customer: 1,
                amount: 2,
            },
            BankCall::Amalgamate { from: 1, to: 2 },
            BankCall::GetBalance { customer: 1 },
        ] {
            assert_eq!(BankCall::decode_all(&op.to_encoded_bytes()).unwrap(), op);
        }
    }
}
