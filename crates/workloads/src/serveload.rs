//! Deterministic serving-load scenario: many clients, few hot keys.
//!
//! Generates the client-side arrival schedule the `dcert-serve` suites
//! and the `fig_serve` bench replay against a `ServeFront`:
//!
//! - **Zipfian keys** — queries concentrate on a small hot set drawn
//!   from a precomputed Zipf CDF, the regime where coalescing and proof
//!   caching pay.
//! - **Bursty arrivals** — requests land in bursts of `burst` on one
//!   virtual tick, separated by `gap_ticks` of quiet; a burst larger
//!   than the front's queue exercises typed shedding.
//! - **Slow-loris readers** — a configured fraction of requests is
//!   marked `abandon`: the client parks as a waiter and walks away
//!   before the pump, exercising the coalescing-slot release path.
//!
//! Everything is a pure function of the seed (`StdRng` + IEEE-754 CDF
//! arithmetic, no ambient clock or entropy), so two generators built
//! with the same seed and config emit byte-identical schedules — the
//! replay-stability assertions in `tests/serve_load.rs` depend on it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which query family a [`ServeEvent`] issues. The consumer maps this
/// plus the key index to a concrete `dcert-serve` `QuerySpec`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeQueryKind {
    /// Time-window history query.
    History,
    /// Conjunctive keyword query.
    Keywords,
    /// Window aggregation query.
    Aggregate,
    /// Time-window history query with the op-stream proof encoding;
    /// carries an explicit [`ServeEvent::window`], drawn from a nested
    /// family so contained windows recur (the front's window-containment
    /// cache regime).
    HistoryOp,
    /// Window aggregation with the op-stream proof encoding.
    AggregateOp,
}

/// One client arrival in the schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeEvent {
    /// Virtual tick the request arrives on.
    pub tick: u64,
    /// Submitting client id (uniform over the client population).
    pub client: u64,
    /// Query family.
    pub kind: ServeQueryKind,
    /// Zipfian-chosen hot-key index in `0..keyspace`.
    pub key: u64,
    /// The query's time window. For the op-stream kinds this is drawn
    /// from a nested family (`[10d, 100 − 10d]` for depth `d`), so a
    /// burst of op queries on one hot key produces containment chains;
    /// other kinds carry the widest window and may ignore it.
    pub window: (u64, u64),
    /// Slow-loris marker: the client abandons this request before it is
    /// served (cancels its waiter after admission).
    pub abandon: bool,
}

/// Scenario shape. `Default` is the smoke-scale profile the CI job runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeLoadConfig {
    /// Client population size.
    pub clients: u64,
    /// Total requests to emit.
    pub requests: u64,
    /// Distinct hot keys.
    pub keyspace: u64,
    /// Zipf exponent `s` (1.0 ≈ classic web-cache skew; larger = hotter).
    pub zipf_exponent: f64,
    /// Requests arriving on each burst tick.
    pub burst: u64,
    /// Quiet ticks between bursts.
    pub gap_ticks: u64,
    /// Per-mille of requests marked as slow-loris abandons.
    pub slow_loris_permille: u64,
    /// Per-mille of requests re-issued as op-stream queries
    /// ([`ServeQueryKind::HistoryOp`] / [`ServeQueryKind::AggregateOp`]
    /// with nested windows). Zero (the default) leaves the emitted
    /// schedule identical to pre-op-stream generators for the same seed:
    /// the op draws only happen when this knob is enabled.
    pub op_query_permille: u64,
}

impl Default for ServeLoadConfig {
    fn default() -> Self {
        ServeLoadConfig {
            clients: 100_000,
            requests: 50_000,
            keyspace: 256,
            zipf_exponent: 1.1,
            burst: 512,
            gap_ticks: 3,
            slow_loris_permille: 20,
            op_query_permille: 0,
        }
    }
}

/// Iterator over the deterministic arrival schedule.
#[derive(Debug)]
pub struct ServeLoadGen {
    config: ServeLoadConfig,
    rng: StdRng,
    /// Cumulative Zipf distribution over `0..keyspace`, normalized to 1.
    cdf: Vec<f64>,
    issued: u64,
    tick: u64,
    in_burst: u64,
}

impl ServeLoadGen {
    /// Builds the schedule generator for `config` under `seed`.
    pub fn new(config: ServeLoadConfig, seed: u64) -> Self {
        let keyspace = config.keyspace.max(1) as usize;
        let mut weights = Vec::with_capacity(keyspace);
        let mut total = 0.0f64;
        for rank in 0..keyspace {
            let w = 1.0 / ((rank as f64) + 1.0).powf(config.zipf_exponent);
            total += w;
            weights.push(total);
        }
        let cdf = weights.iter().map(|w| w / total).collect();
        ServeLoadGen {
            config,
            rng: StdRng::seed_from_u64(seed),
            cdf,
            issued: 0,
            tick: 0,
            in_burst: 0,
        }
    }

    /// The configured scenario shape.
    pub fn config(&self) -> ServeLoadConfig {
        self.config
    }

    /// Draws one key index from the Zipf CDF.
    fn zipf_key(&mut self) -> u64 {
        // Integer draw scaled to [0, 1): float-range sampling differs
        // across rand versions, a plain u64 draw does not.
        let u = (self.rng.gen_range(0..u64::MAX) as f64) / (u64::MAX as f64);
        // Binary search for the first CDF entry >= u.
        let idx = self.cdf.partition_point(|&c| c < u);
        idx.min(self.cdf.len() - 1) as u64
    }
}

impl Iterator for ServeLoadGen {
    type Item = ServeEvent;

    fn next(&mut self) -> Option<ServeEvent> {
        if self.issued >= self.config.requests {
            return None;
        }
        if self.in_burst >= self.config.burst.max(1) {
            self.in_burst = 0;
            self.tick += 1 + self.config.gap_ticks;
        }
        self.in_burst += 1;
        self.issued += 1;

        let client = self.rng.gen_range(0..self.config.clients.max(1));
        let key = self.zipf_key();
        let kind = match self.rng.gen_range(0..3u8) {
            0 => ServeQueryKind::History,
            1 => ServeQueryKind::Keywords,
            _ => ServeQueryKind::Aggregate,
        };
        let abandon = self.rng.gen_range(0..1000u64) < self.config.slow_loris_permille;
        // Op-stream rewrite draws happen strictly after (and only on top
        // of) the base draws, so disabling the knob reproduces the
        // pre-op-stream schedule bit-for-bit under the same seed.
        let (kind, window) = if self.config.op_query_permille > 0
            && self.rng.gen_range(0..1000u64) < self.config.op_query_permille
        {
            let depth = self.rng.gen_range(0..4u64);
            let window = (10 * depth, 100 - 10 * depth);
            let kind = if self.rng.gen_range(0..4u64) == 0 {
                ServeQueryKind::AggregateOp
            } else {
                ServeQueryKind::HistoryOp
            };
            (kind, window)
        } else {
            (kind, (0, 100))
        };
        Some(ServeEvent {
            tick: self.tick,
            client,
            kind,
            key,
            window,
            abandon,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let config = ServeLoadConfig {
            requests: 2_000,
            ..ServeLoadConfig::default()
        };
        let a: Vec<ServeEvent> = ServeLoadGen::new(config, 42).collect();
        let b: Vec<ServeEvent> = ServeLoadGen::new(config, 42).collect();
        assert_eq!(a, b, "schedules are a pure function of the seed");
        let c: Vec<ServeEvent> = ServeLoadGen::new(config, 43).collect();
        assert_ne!(a, c, "different seeds diverge");
    }

    #[test]
    fn bursts_share_ticks_with_gaps_between() {
        let config = ServeLoadConfig {
            requests: 100,
            burst: 10,
            gap_ticks: 4,
            ..ServeLoadConfig::default()
        };
        let events: Vec<ServeEvent> = ServeLoadGen::new(config, 7).collect();
        assert_eq!(events.len(), 100);
        for pair in events.chunks(10) {
            assert!(
                pair.iter().all(|e| e.tick == pair[0].tick),
                "a burst lands on one tick"
            );
        }
        assert_eq!(
            events[10].tick - events[9].tick,
            5,
            "gap + 1 between bursts"
        );
    }

    #[test]
    fn zipf_concentrates_on_low_ranks() {
        let config = ServeLoadConfig {
            requests: 10_000,
            keyspace: 100,
            zipf_exponent: 1.2,
            ..ServeLoadConfig::default()
        };
        let events: Vec<ServeEvent> = ServeLoadGen::new(config, 1).collect();
        let hot = events.iter().filter(|e| e.key < 10).count();
        assert!(
            hot > events.len() / 2,
            "top-10 keys should draw most traffic, got {hot}/10000"
        );
        assert!(events.iter().all(|e| e.key < 100));
    }

    #[test]
    fn op_queries_carry_nested_windows() {
        let config = ServeLoadConfig {
            requests: 10_000,
            op_query_permille: 500,
            ..ServeLoadConfig::default()
        };
        let events: Vec<ServeEvent> = ServeLoadGen::new(config, 11).collect();
        let ops: Vec<&ServeEvent> = events
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    ServeQueryKind::HistoryOp | ServeQueryKind::AggregateOp
                )
            })
            .collect();
        assert!(
            (3500..6500).contains(&ops.len()),
            "~half the schedule should be op queries, got {}",
            ops.len()
        );
        // Every op window nests inside the widest one, and more than one
        // depth actually occurs — the containment-cache regime.
        let depths: std::collections::BTreeSet<(u64, u64)> = ops.iter().map(|e| e.window).collect();
        assert!(depths.len() > 1, "nested window family has several depths");
        for (lo, hi) in depths {
            assert!(lo <= hi && hi <= 100, "window ({lo},{hi}) nests in [0,100]");
        }
        assert!(
            ops.iter().any(|e| e.kind == ServeQueryKind::HistoryOp)
                && ops.iter().any(|e| e.kind == ServeQueryKind::AggregateOp),
            "both op families appear"
        );
    }

    #[test]
    fn disabled_op_knob_emits_no_op_queries() {
        let events: Vec<ServeEvent> = ServeLoadGen::new(
            ServeLoadConfig {
                requests: 2_000,
                ..ServeLoadConfig::default()
            },
            42,
        )
        .collect();
        assert!(events.iter().all(|e| !matches!(
            e.kind,
            ServeQueryKind::HistoryOp | ServeQueryKind::AggregateOp
        )));
        assert!(events.iter().all(|e| e.window == (0, 100)));
    }

    #[test]
    fn slow_loris_fraction_tracks_config() {
        let config = ServeLoadConfig {
            requests: 10_000,
            slow_loris_permille: 100,
            ..ServeLoadConfig::default()
        };
        let abandons = ServeLoadGen::new(config, 9).filter(|e| e.abandon).count();
        assert!(
            (500..1500).contains(&abandons),
            "~10% of 10k requests should abandon, got {abandons}"
        );
    }
}
