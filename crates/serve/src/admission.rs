//! Admission control: per-client token buckets on the virtual clock.
//!
//! Buckets are integer-only and refill lazily — a client touched at tick
//! `t` gains `(t - last_refill) * tokens_per_tick` tokens capped at
//! `burst`, so 10⁵ clients cost one `HashMap` entry each and zero work
//! per tick. All arithmetic is saturating: a client parked for 2⁶⁴ ticks
//! is simply full, never wrapped. No wall-clock anywhere (`dcert-lint`
//! R3): ticks come from the caller, who reads them off `SimNet::now` or
//! any other deterministic clock.

use std::collections::HashMap;

/// Rate-limit policy applied to every client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateLimit {
    /// Tokens granted per virtual tick.
    pub tokens_per_tick: u64,
    /// Bucket capacity: the largest burst a quiet client can send.
    pub burst: u64,
}

impl RateLimit {
    /// A policy that never refuses (useful for tests and as a default).
    pub fn unlimited() -> Self {
        RateLimit {
            tokens_per_tick: u64::MAX,
            burst: u64::MAX,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens: u64,
    last_refill: u64,
}

/// Lazily-populated per-client token buckets.
#[derive(Debug)]
pub struct TokenBuckets {
    limit: RateLimit,
    buckets: HashMap<u64, Bucket>,
}

/// The outcome of asking for one admission token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenGrant {
    /// A token was consumed; the request proceeds.
    Granted,
    /// The bucket is empty; retry after this many virtual ticks.
    Refused {
        /// Ticks until one token accrues (never 0).
        retry_after_ticks: u64,
    },
}

impl TokenBuckets {
    /// Creates the bucket table under one shared policy.
    pub fn new(limit: RateLimit) -> Self {
        TokenBuckets {
            limit,
            buckets: HashMap::new(),
        }
    }

    /// The shared policy.
    pub fn limit(&self) -> RateLimit {
        self.limit
    }

    /// Number of clients that have ever been admitted or refused.
    pub fn tracked_clients(&self) -> usize {
        self.buckets.len()
    }

    /// Takes one token for `client` at virtual time `now`.
    pub fn take(&mut self, client: u64, now: u64) -> TokenGrant {
        let limit = self.limit;
        let bucket = self.buckets.entry(client).or_insert(Bucket {
            tokens: limit.burst,
            last_refill: now,
        });
        // Lazy refill since the last touch; clocks only move forward in
        // the simulation, but saturate anyway so a replayed past tick
        // cannot wrap.
        let elapsed = now.saturating_sub(bucket.last_refill);
        bucket.tokens = bucket
            .tokens
            .saturating_add(elapsed.saturating_mul(limit.tokens_per_tick))
            .min(limit.burst);
        bucket.last_refill = bucket.last_refill.max(now);
        if bucket.tokens == 0 {
            // Ticks until at least one token accrues. tokens_per_tick == 0
            // means "never": report the largest representable wait.
            let retry = if limit.tokens_per_tick == 0 {
                u64::MAX
            } else {
                1
            };
            return TokenGrant::Refused {
                retry_after_ticks: retry,
            };
        }
        bucket.tokens -= 1;
        TokenGrant::Granted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_refusal_then_refill() {
        let mut buckets = TokenBuckets::new(RateLimit {
            tokens_per_tick: 1,
            burst: 3,
        });
        for _ in 0..3 {
            assert_eq!(buckets.take(7, 0), TokenGrant::Granted);
        }
        assert!(matches!(buckets.take(7, 0), TokenGrant::Refused { .. }));
        // Two ticks later the bucket has two tokens again.
        assert_eq!(buckets.take(7, 2), TokenGrant::Granted);
        assert_eq!(buckets.take(7, 2), TokenGrant::Granted);
        assert!(matches!(buckets.take(7, 2), TokenGrant::Refused { .. }));
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut buckets = TokenBuckets::new(RateLimit {
            tokens_per_tick: 10,
            burst: 2,
        });
        assert_eq!(buckets.take(1, 0), TokenGrant::Granted);
        // A long quiet period still yields only `burst` tokens.
        assert_eq!(buckets.take(1, 1_000_000), TokenGrant::Granted);
        assert_eq!(buckets.take(1, 1_000_000), TokenGrant::Granted);
        assert!(matches!(
            buckets.take(1, 1_000_000),
            TokenGrant::Refused { .. }
        ));
    }

    #[test]
    fn clients_are_independent() {
        let mut buckets = TokenBuckets::new(RateLimit {
            tokens_per_tick: 0,
            burst: 1,
        });
        assert_eq!(buckets.take(1, 5), TokenGrant::Granted);
        assert_eq!(buckets.take(2, 5), TokenGrant::Granted);
        assert!(matches!(buckets.take(1, 5), TokenGrant::Refused { .. }));
        assert_eq!(buckets.tracked_clients(), 2);
    }

    #[test]
    fn zero_rate_reports_unbounded_retry() {
        let mut buckets = TokenBuckets::new(RateLimit {
            tokens_per_tick: 0,
            burst: 1,
        });
        assert_eq!(buckets.take(9, 0), TokenGrant::Granted);
        assert_eq!(
            buckets.take(9, 100),
            TokenGrant::Refused {
                retry_after_ticks: u64::MAX
            }
        );
    }

    #[test]
    fn unlimited_never_refuses() {
        let mut buckets = TokenBuckets::new(RateLimit::unlimited());
        for i in 0..10_000u64 {
            assert_eq!(buckets.take(3, 0), TokenGrant::Granted, "call {i}");
        }
    }
}
