//! The serving front-end: one deterministic scheduler in front of the SP.
//!
//! [`ServeFront`] owns a [`ServiceProvider`] and turns the one-caller-
//! at-a-time `serve_*` methods into a multi-client admission pipeline:
//!
//! 1. **Admission** ([`ServeFront::submit`]): a per-client token bucket
//!    on the virtual clock sheds abusive clients, then the proof cache
//!    answers hot queries without touching the queue, then the request
//!    either *coalesces* onto an identical in-flight query or claims a
//!    new slot in the fixed-capacity queue. Every shed is a typed
//!    [`ServeRefusal`] returned synchronously — never a silent drop.
//! 2. **Execution** ([`ServeFront::pump`]): the caller drains the queue
//!    at its own pace. Each distinct query costs exactly one backend
//!    call regardless of how many waiters coalesced onto it; the
//!    canonical payload is fanned out to every waiter and inserted into
//!    the cache.
//! 3. **Invalidation**: the chain-advancing passthroughs
//!    ([`ServeFront::stage_block`], [`ServeFront::record_certs`],
//!    [`ServeFront::advance_staged`]) bump the cache generation and
//!    clear it wholesale, so no pre-advance proof can survive a height
//!    advance by construction.
//!
//! The front is intentionally synchronous and single-threaded: all
//! scheduling is driven by explicit virtual-clock ticks the caller reads
//! off `SimNet::now` (or any deterministic clock), which is what makes
//! the chaos suite's replay-stability assertions possible. The only
//! wall-clock measurement is the `serve.serve_ns` timer around backend
//! calls, taken through `dcert_sgx::cost::timed` (the workspace's one
//! sanctioned clock) and stripped from replay comparisons by naming
//! convention.

use std::collections::{HashMap, VecDeque};

use dcert_chain::{Block, ChainError};
use dcert_core::{Certificate, IndexInput};
use dcert_obs::Registry;
use dcert_query::ServiceProvider;
use dcert_sgx::cost::timed;

use dcert_vm::StateKey;

use crate::admission::{RateLimit, TokenBuckets, TokenGrant};
use crate::cache::ProofCache;
use crate::metrics::ServeMetrics;
use crate::wire::{
    decode_history_op_payload, encode_aggregate_op_payload, encode_aggregate_payload,
    encode_history_op_payload, encode_history_payload, encode_keyword_payload, QuerySpec,
    RefusalReason, ServeRefusal, ServeRequest, ServeResponse, ServeWire,
};

/// Capacity and rate-limit policy for a [`ServeFront`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Maximum distinct queries pending at once (the coalescing makes
    /// this a bound on *backend work*, not on client count).
    pub queue_capacity: usize,
    /// Maximum waiters parked across all pending queries.
    pub max_waiters: usize,
    /// Proof-cache entries retained per certified-height generation.
    pub cache_capacity: usize,
    /// Per-client token-bucket policy.
    pub rate_limit: RateLimit,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 64,
            max_waiters: 4096,
            cache_capacity: 1024,
            rate_limit: RateLimit::unlimited(),
        }
    }
}

/// What [`ServeFront::submit`] did with an admitted request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Submitted {
    /// Answered immediately from the proof cache.
    CacheHit(ServeResponse),
    /// Parked; the response arrives from a later [`ServeFront::pump`].
    Enqueued {
        /// True when the request attached to an already-pending
        /// identical query instead of claiming a new queue slot.
        coalesced: bool,
    },
}

#[derive(Debug, Clone)]
struct Waiter {
    client: u64,
    id: u64,
    admitted_at: u64,
}

#[derive(Debug)]
struct PendingEntry {
    spec: QuerySpec,
    waiters: Vec<Waiter>,
}

/// One op-stream history window the cache holds an answer for. A later
/// [`QuerySpec::HistoryOp`] whose window is *contained* in this one is
/// answered by narrowing the cached answer: the op-stream proof for
/// `[t1, t2]` verifies any sub-window, so only the result rows need
/// filtering — no backend call, no new proof. (Aggregate op answers are
/// deliberately not window-narrowed: their proofs prune `Inside`
/// subtrees to bare annotations, which do not re-verify for a narrower
/// window.)
#[derive(Debug, Clone)]
struct OpWindow {
    index: String,
    key: StateKey,
    t1: u64,
    t2: u64,
    /// The cache key the covering answer lives under.
    spec_key: Vec<u8>,
}

/// The request scheduler. See the module docs for the pipeline shape.
#[derive(Debug)]
pub struct ServeFront {
    sp: ServiceProvider,
    config: ServeConfig,
    cache: ProofCache,
    buckets: TokenBuckets,
    /// Arrival order of pending spec keys. May contain stale keys whose
    /// entry was released by waiter abandonment; [`ServeFront::pump`]
    /// skips those.
    arrival_order: VecDeque<Vec<u8>>,
    pending: HashMap<Vec<u8>, PendingEntry>,
    parked_waiters: usize,
    /// Windows of op-stream history answers in the cache, in insertion
    /// order. Cleared wholesale with every cache invalidation: a window
    /// entry must never outlive the generation its answer was served in.
    op_windows: Vec<OpWindow>,
    metrics: ServeMetrics,
}

impl ServeFront {
    /// Wraps `sp` under `config` with detached metrics (call
    /// [`ServeFront::attach_obs`] to register `serve.*`).
    pub fn new(sp: ServiceProvider, config: ServeConfig) -> Self {
        ServeFront {
            sp,
            config,
            cache: ProofCache::new(config.cache_capacity),
            buckets: TokenBuckets::new(config.rate_limit),
            arrival_order: VecDeque::new(),
            pending: HashMap::new(),
            parked_waiters: 0,
            op_windows: Vec::new(),
            metrics: ServeMetrics::disabled(),
        }
    }

    /// Registers the `serve.*` metrics in `registry`.
    pub fn attach_obs(&mut self, registry: &Registry) {
        self.metrics = ServeMetrics::register(registry);
    }

    /// The wrapped Service Provider (read-only: mutations must go
    /// through the invalidating passthroughs).
    pub fn sp(&self) -> &ServiceProvider {
        &self.sp
    }

    /// Unwraps the front, returning the Service Provider.
    pub fn into_sp(self) -> ServiceProvider {
        self.sp
    }

    /// The configured capacities and rate limit.
    pub fn config(&self) -> ServeConfig {
        self.config
    }

    /// Distinct queries currently pending (live coalescing entries).
    pub fn inflight_entries(&self) -> usize {
        self.pending.len()
    }

    /// Waiters currently parked across all pending queries.
    pub fn parked_waiters(&self) -> usize {
        self.parked_waiters
    }

    /// Cached responses live in the current generation.
    pub fn cached_entries(&self) -> usize {
        self.cache.len()
    }

    /// The cache generation (bumps on every invalidating passthrough).
    pub fn cache_generation(&self) -> u64 {
        self.cache.generation()
    }

    // -----------------------------------------------------------------
    // Admission.
    // -----------------------------------------------------------------

    /// Submits one request at virtual time `now`.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ServeRefusal`] when the request is shed by the
    /// rate limiter, a full queue, or a full waiter table. Refusals are
    /// terminal: the request holds no slot and produces no later reply.
    pub fn submit(&mut self, now: u64, request: ServeRequest) -> Result<Submitted, ServeRefusal> {
        self.metrics.requests.inc();

        if let TokenGrant::Refused { retry_after_ticks } = self.buckets.take(request.client, now) {
            self.metrics.shed_rate_limited.inc();
            return Err(ServeRefusal {
                id: request.id,
                reason: RefusalReason::RateLimited { retry_after_ticks },
            });
        }

        let spec_key = request.query.cache_key();
        if let Some(cached) = self.cache.get(&spec_key) {
            self.metrics.cache_hits.inc();
            self.metrics.wait_ticks.observe(0);
            self.metrics
                .payload_bytes
                .observe(cached.payload.len() as u64);
            return Ok(Submitted::CacheHit(ServeResponse {
                id: request.id,
                certified_height: cached.certified_height,
                payload: cached.payload.clone(),
            }));
        }

        if let QuerySpec::HistoryOp { index, key, t1, t2 } = &request.query {
            if let Some(narrowed) = self.answer_from_covering_window(index, key, *t1, *t2) {
                self.metrics.window_hits.inc();
                self.metrics.wait_ticks.observe(0);
                self.metrics
                    .payload_bytes
                    .observe(narrowed.payload.len() as u64);
                // The narrowed answer is a first-class cache entry: the
                // next identical request hits it directly.
                self.cache.insert(spec_key, narrowed.clone());
                return Ok(Submitted::CacheHit(ServeResponse {
                    id: request.id,
                    certified_height: narrowed.certified_height,
                    payload: narrowed.payload,
                }));
            }
        }

        if self.parked_waiters >= self.config.max_waiters {
            self.metrics.shed_backlogged.inc();
            return Err(ServeRefusal {
                id: request.id,
                reason: RefusalReason::Backlogged {
                    waiters: self.parked_waiters as u64,
                },
            });
        }

        let waiter = Waiter {
            client: request.client,
            id: request.id,
            admitted_at: now,
        };
        if let Some(entry) = self.pending.get_mut(&spec_key) {
            entry.waiters.push(waiter);
            self.parked_waiters += 1;
            self.metrics.coalesce_hits.inc();
            self.record_occupancy();
            return Ok(Submitted::Enqueued { coalesced: true });
        }

        if self.pending.len() >= self.config.queue_capacity {
            self.metrics.shed_queue_full.inc();
            return Err(ServeRefusal {
                id: request.id,
                reason: RefusalReason::QueueFull {
                    depth: self.pending.len() as u64,
                },
            });
        }

        self.pending.insert(
            spec_key.clone(),
            PendingEntry {
                spec: request.query,
                waiters: vec![waiter],
            },
        );
        self.arrival_order.push_back(spec_key);
        self.parked_waiters += 1;
        self.record_occupancy();
        Ok(Submitted::Enqueued { coalesced: false })
    }

    /// Removes one parked waiter (a client abandoning its request — the
    /// slow-loris case). When the last waiter leaves, the whole pending
    /// entry is released immediately: its queue slot frees for admission
    /// and [`ServeFront::pump`] will never spend a backend call on it.
    /// Returns true when the waiter was found.
    pub fn cancel(&mut self, client: u64, id: u64) -> bool {
        let mut hit: Option<(Vec<u8>, bool)> = None;
        for (key, entry) in &mut self.pending {
            if let Some(pos) = entry
                .waiters
                .iter()
                .position(|w| w.client == client && w.id == id)
            {
                entry.waiters.remove(pos);
                hit = Some((key.clone(), entry.waiters.is_empty()));
                break;
            }
        }
        let Some((key, emptied)) = hit else {
            return false;
        };
        self.parked_waiters -= 1;
        if emptied {
            self.pending.remove(&key);
            self.metrics.waiters_released.inc();
        }
        self.record_occupancy();
        true
    }

    /// Removes every parked waiter belonging to `client` (a dropped
    /// connection). Returns how many waiters were removed.
    pub fn disconnect(&mut self, client: u64) -> usize {
        let mut removed = 0;
        let mut released: Vec<Vec<u8>> = Vec::new();
        for (key, entry) in &mut self.pending {
            let before = entry.waiters.len();
            entry.waiters.retain(|w| w.client != client);
            removed += before - entry.waiters.len();
            if before > 0 && entry.waiters.is_empty() {
                released.push(key.clone());
            }
        }
        self.parked_waiters -= removed;
        for key in released {
            self.pending.remove(&key);
            self.metrics.waiters_released.inc();
        }
        if removed > 0 {
            self.record_occupancy();
        }
        removed
    }

    // -----------------------------------------------------------------
    // Execution.
    // -----------------------------------------------------------------

    /// Executes up to `max_queries` distinct pending queries in arrival
    /// order at virtual time `now`, returning every reply to deliver:
    /// one [`ServeWire::Response`] per waiter of an answered query, or
    /// one [`ServeWire::Refusal`] per waiter of a query naming an
    /// unknown index.
    pub fn pump(&mut self, now: u64, max_queries: usize) -> Vec<(u64, ServeWire)> {
        let mut deliveries = Vec::new();
        let mut executed = 0;
        while executed < max_queries {
            let Some(key) = self.arrival_order.pop_front() else {
                break;
            };
            // Stale key: its entry was released by waiter abandonment.
            let Some(entry) = self.pending.remove(&key) else {
                continue;
            };
            self.parked_waiters -= entry.waiters.len();
            executed += 1;

            let (answer, took) = timed(|| self.execute(&entry.spec));
            self.metrics.serve_ns.record(took);
            match answer {
                Some(payload) => {
                    self.metrics.backend_calls.inc();
                    let certified_height = self.sp.index_height();
                    self.metrics.payload_bytes.observe(payload.len() as u64);
                    if let QuerySpec::HistoryOp {
                        index,
                        key: state_key,
                        t1,
                        t2,
                    } = &entry.spec
                    {
                        if self.op_windows.len() >= self.config.cache_capacity {
                            self.op_windows.remove(0);
                        }
                        self.op_windows.push(OpWindow {
                            index: index.clone(),
                            key: *state_key,
                            t1: *t1,
                            t2: *t2,
                            spec_key: key.clone(),
                        });
                    }
                    self.cache.insert(
                        key,
                        ServeResponse {
                            id: 0,
                            certified_height,
                            payload: payload.clone(),
                        },
                    );
                    for waiter in &entry.waiters {
                        self.metrics
                            .wait_ticks
                            .observe(now.saturating_sub(waiter.admitted_at));
                        self.metrics.fanout.inc();
                        deliveries.push((
                            waiter.client,
                            ServeWire::Response(ServeResponse {
                                id: waiter.id,
                                certified_height,
                                payload: payload.clone(),
                            }),
                        ));
                    }
                }
                None => {
                    for waiter in &entry.waiters {
                        self.metrics.shed_unknown_index.inc();
                        deliveries.push((
                            waiter.client,
                            ServeWire::Refusal(ServeRefusal {
                                id: waiter.id,
                                reason: RefusalReason::UnknownIndex,
                            }),
                        ));
                    }
                }
            }
        }
        self.record_occupancy();
        deliveries
    }

    fn execute(&self, spec: &QuerySpec) -> Option<Vec<u8>> {
        match spec {
            QuerySpec::History { index, key, t1, t2 } => self
                .sp
                .serve_history(index, key, *t1, *t2)
                .map(|(results, proof)| encode_history_payload(&results, &proof)),
            QuerySpec::Keywords { index, keywords } => {
                let words: Vec<&str> = keywords.iter().map(String::as_str).collect();
                self.sp
                    .serve_keywords(index, &words)
                    .map(|(results, proof)| encode_keyword_payload(&results, &proof))
            }
            QuerySpec::Aggregate { index, key, t1, t2 } => self
                .sp
                .serve_aggregate(index, key, *t1, *t2)
                .map(|(aggregate, proof)| encode_aggregate_payload(&aggregate, &proof)),
            QuerySpec::HistoryOp { index, key, t1, t2 } => self
                .sp
                .serve_history_ops(index, key, *t1, *t2)
                .map(|(results, proof)| encode_history_op_payload(&results, &proof)),
            QuerySpec::AggregateOp { index, key, t1, t2 } => self
                .sp
                .serve_aggregate_ops(index, key, *t1, *t2)
                .map(|(aggregate, proof)| encode_aggregate_op_payload(&aggregate, &proof)),
        }
    }

    /// Answers a `HistoryOp` window from a cached answer whose window
    /// contains it, if one is alive in the current cache generation.
    /// Result rows are filtered to the requested window — byte-identical
    /// to what a direct backend call would return — and the covering
    /// op-stream proof is reused as-is (it verifies every sub-window).
    fn answer_from_covering_window(
        &self,
        index: &str,
        key: &StateKey,
        t1: u64,
        t2: u64,
    ) -> Option<ServeResponse> {
        for window in &self.op_windows {
            if window.index != index || window.key != *key || window.t1 > t1 || window.t2 < t2 {
                continue;
            }
            let Some(cached) = self.cache.get(&window.spec_key) else {
                continue; // evicted: the window record outlived its answer
            };
            let Ok((results, proof)) = decode_history_op_payload(&cached.payload) else {
                continue; // never narrow what we cannot re-derive
            };
            let narrowed: Vec<_> = results
                .into_iter()
                .filter(|(ts, _)| t1 <= *ts && *ts <= t2)
                .collect();
            return Some(ServeResponse {
                id: 0,
                certified_height: cached.certified_height,
                payload: encode_history_op_payload(&narrowed, &proof),
            });
        }
        None
    }

    // -----------------------------------------------------------------
    // Invalidating passthroughs.
    // -----------------------------------------------------------------

    /// Stages a block into the SP (advancing the index height) and
    /// invalidates the proof cache.
    ///
    /// # Errors
    ///
    /// Propagates block-validation errors; the cache is only invalidated
    /// when the block was actually applied.
    pub fn stage_block(&mut self, block: &Block) -> Result<Vec<IndexInput>, ChainError> {
        let inputs = self.sp.stage_block(block)?;
        self.invalidate();
        Ok(inputs)
    }

    /// Records certificates for the last staged block and invalidates
    /// the proof cache (the certified digests moved).
    pub fn record_certs(&mut self, certs: &[Certificate]) {
        self.sp.record_certs(certs);
        self.invalidate();
    }

    /// Advances the staged digests without certificates (pipelined mode)
    /// and invalidates the proof cache.
    pub fn advance_staged(&mut self) {
        self.sp.advance_staged();
        self.invalidate();
    }

    fn invalidate(&mut self) {
        self.cache.invalidate();
        // The window records index into the invalidated generation; a
        // survivor here would let a pre-advance proof answer a
        // post-advance query.
        self.op_windows.clear();
        self.metrics.invalidations.inc();
    }

    fn record_occupancy(&self) {
        let depth = i64::try_from(self.pending.len()).unwrap_or(i64::MAX);
        let waiters = i64::try_from(self.parked_waiters).unwrap_or(i64::MAX);
        self.metrics.queue_depth.set(depth);
        self.metrics.queue_high_water.record_max(depth);
        self.metrics.waiter_high_water.record_max(waiters);
    }
}
