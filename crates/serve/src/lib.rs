//! `dcert-serve` — the multi-client serving front-end.
//!
//! The paper's Service Provider answers one verifiable query at a time;
//! this crate is the tier that makes that answer *many* clients: a
//! request scheduler that *coalesces* identical in-flight queries into
//! one backend call fanned out to every waiter, *caches* hot canonical
//! `(results, proof)` payloads keyed by the query spec and invalidated
//! wholesale whenever the certified height moves, and *bounds admission*
//! with a fixed-capacity queue, a waiter-table cap, and per-client
//! token-bucket rate limits — all on the simulation's virtual clock, so
//! every scheduling decision replays bit-for-bit under a fixed seed.
//!
//! The correctness contract, pinned by `tests/serve_equivalence.rs`, is
//! **byte equivalence**: every response the front serves — coalesced,
//! cached, or fresh — is byte-identical to a direct uncached
//! `ServiceProvider::serve_*` call at the same certified height, and no
//! cached proof survives a height advance. The load and chaos contracts,
//! pinned by `tests/serve_load.rs` and `tests/chaos_network.rs`, are
//! that queues never exceed their bound, every shed request gets a typed
//! [`ServeRefusal`] (never a silent drop), and the `serve.*` metric
//! snapshots are replay-stable on the chaos seed matrix.
//!
//! Layout: [`wire`] (canonical request/response/refusal codecs, held to
//! `dcert-lint` R2 panic-freedom), [`cache`] (generation-keyed FIFO
//! proof cache), [`admission`] (lazy per-client token buckets),
//! [`metrics`] (`serve.*` handles), [`front`] (the scheduler).

#![forbid(unsafe_code)]

pub mod admission;
pub mod cache;
pub mod front;
pub mod metrics;
pub mod wire;

pub use admission::{RateLimit, TokenBuckets, TokenGrant};
pub use cache::ProofCache;
pub use front::{ServeConfig, ServeFront, Submitted};
pub use metrics::ServeMetrics;
pub use wire::{
    decode_aggregate_op_payload, decode_aggregate_payload, decode_history_op_payload,
    decode_history_payload, decode_keyword_payload, encode_aggregate_op_payload,
    encode_aggregate_payload, encode_history_op_payload, encode_history_payload,
    encode_keyword_payload, QuerySpec, RefusalReason, ServeRefusal, ServeRequest, ServeResponse,
    ServeWire,
};

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use dcert_chain::{ConsensusEngine, FullNode, GenesisBuilder, ProofOfWork};
    use dcert_query::sp::IndexKind;
    use dcert_query::ServiceProvider;
    use dcert_vm::{ContractRegistry, Executor, StateKey};

    use crate::admission::RateLimit;
    use crate::front::{ServeConfig, ServeFront, Submitted};
    use crate::wire::{QuerySpec, RefusalReason, ServeRequest, ServeWire};

    /// An SP over a short empty-block chain with all three index kinds.
    fn front_with(config: ServeConfig, blocks: u64) -> ServeFront {
        let executor = Executor::new(Arc::new(ContractRegistry::new()));
        let engine: Arc<dyn ConsensusEngine> = Arc::new(ProofOfWork::new(1));
        let (genesis, state) = GenesisBuilder::new().timestamp(1_700_000_000).build();
        let mut miner = FullNode::new(
            &genesis,
            state.clone(),
            executor.clone(),
            engine.clone(),
            dcert_primitives::hash::Address::from_seed(0xF00D),
        );
        let mut sp = ServiceProvider::new(&genesis, state, executor, engine);
        sp.add_index(IndexKind::History, "history");
        sp.add_index(IndexKind::Inverted, "inverted");
        sp.add_index(IndexKind::Aggregate, "agg");
        let mut front = ServeFront::new(sp, config);
        for height in 1..=blocks {
            let block = miner.mine(Vec::new(), height).expect("mines");
            front.stage_block(&block).expect("stages");
            front.advance_staged();
        }
        front
    }

    fn history_request(client: u64, id: u64) -> ServeRequest {
        ServeRequest {
            client,
            id,
            query: QuerySpec::History {
                index: "history".into(),
                key: StateKey::new("kvstore", b"acct"),
                t1: 0,
                t2: 10,
            },
        }
    }

    fn history_op_request(client: u64, id: u64, t1: u64, t2: u64) -> ServeRequest {
        ServeRequest {
            client,
            id,
            query: QuerySpec::HistoryOp {
                index: "history".into(),
                key: StateKey::new("kvstore", b"acct"),
                t1,
                t2,
            },
        }
    }

    #[test]
    fn contained_op_window_is_answered_without_a_backend_call() {
        let mut front = front_with(ServeConfig::default(), 2);
        let registry = dcert_obs::Registry::new();
        front.attach_obs(&registry);

        front
            .submit(0, history_op_request(1, 1, 0, 100))
            .expect("admitted");
        let deliveries = front.pump(1, 16);
        assert_eq!(deliveries.len(), 1);

        // A strictly narrower window is a synchronous answer derived from
        // the covering cached one — no queue slot, no backend call.
        let hit = front
            .submit(2, history_op_request(2, 9, 10, 50))
            .expect("admitted");
        let Submitted::CacheHit(resp) = hit else {
            panic!("expected window-containment hit, got {hit:?}");
        };
        assert_eq!(resp.id, 9);
        let (results, _proof) =
            crate::wire::decode_history_op_payload(&resp.payload).expect("payload decodes");
        assert!(results.is_empty(), "empty chain has no versions");

        // The narrowed answer became a first-class cache entry.
        let again = front
            .submit(3, history_op_request(3, 10, 10, 50))
            .expect("admitted");
        assert!(matches!(again, Submitted::CacheHit(_)));

        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("serve.window_hits"), 1);
        assert_eq!(snapshot.counter("serve.backend_calls"), 1);
        assert_eq!(snapshot.counter("serve.cache_hits"), 1);
    }

    /// Regression: every height-moving passthrough must clear the
    /// op-window records along with the cache — a surviving record would
    /// let a pre-advance proof answer a post-advance query.
    #[test]
    fn op_window_records_die_with_every_invalidation() {
        let mut front = front_with(ServeConfig::default(), 2);
        front
            .submit(0, history_op_request(1, 1, 0, 100))
            .expect("admitted");
        front.pump(1, 16);

        front.advance_staged();
        let after = front
            .submit(2, history_op_request(2, 2, 10, 50))
            .expect("admitted");
        assert_eq!(
            after,
            Submitted::Enqueued { coalesced: false },
            "a stale covering window must not answer after advance_staged"
        );
        front.pump(3, 16);

        // Same contract across record_certs (no certs staged → no-op on
        // the SP, still a height-consistency barrier for the cache).
        front
            .submit(4, history_op_request(3, 3, 20, 40))
            .expect("admitted");
        front.pump(5, 16);
        front.record_certs(&[]);
        let after = front
            .submit(6, history_op_request(4, 4, 25, 30))
            .expect("admitted");
        assert_eq!(after, Submitted::Enqueued { coalesced: false });
    }

    #[test]
    fn aggregate_op_queries_execute_through_the_pump() {
        let mut front = front_with(ServeConfig::default(), 1);
        front
            .submit(0, {
                ServeRequest {
                    client: 1,
                    id: 5,
                    query: QuerySpec::AggregateOp {
                        index: "agg".into(),
                        key: StateKey::new("kvstore", b"acct"),
                        t1: 0,
                        t2: 50,
                    },
                }
            })
            .expect("admitted");
        let deliveries = front.pump(1, 16);
        assert_eq!(deliveries.len(), 1);
        let ServeWire::Response(resp) = &deliveries[0].1 else {
            panic!("expected response");
        };
        let (agg, _proof) =
            crate::wire::decode_aggregate_op_payload(&resp.payload).expect("payload decodes");
        assert_eq!(agg, dcert_merkle::aggmb::Aggregate::EMPTY);
    }

    #[test]
    fn identical_queries_coalesce_into_one_backend_call() {
        let mut front = front_with(ServeConfig::default(), 2);
        assert_eq!(
            front.submit(0, history_request(1, 100)),
            Ok(Submitted::Enqueued { coalesced: false })
        );
        assert_eq!(
            front.submit(0, history_request(2, 200)),
            Ok(Submitted::Enqueued { coalesced: true })
        );
        assert_eq!(front.inflight_entries(), 1);
        assert_eq!(front.parked_waiters(), 2);

        let deliveries = front.pump(3, 16);
        assert_eq!(deliveries.len(), 2, "one reply per waiter");
        let ServeWire::Response(a) = &deliveries[0].1 else {
            panic!("expected response");
        };
        let ServeWire::Response(b) = &deliveries[1].1 else {
            panic!("expected response");
        };
        assert_eq!(a.payload, b.payload, "fanned-out payloads are identical");
        assert_eq!((a.id, b.id), (100, 200), "ids are per-waiter");
        assert_eq!(front.inflight_entries(), 0);
        assert_eq!(front.parked_waiters(), 0);
    }

    #[test]
    fn second_round_is_a_cache_hit_until_invalidated() {
        let mut front = front_with(ServeConfig::default(), 2);
        front.submit(0, history_request(1, 1)).expect("admitted");
        let first = front.pump(1, 16);
        let ServeWire::Response(fresh) = &first[0].1 else {
            panic!("expected response");
        };
        let hit = front.submit(2, history_request(3, 9)).expect("admitted");
        match hit {
            Submitted::CacheHit(resp) => {
                assert_eq!(resp.payload, fresh.payload);
                assert_eq!(resp.certified_height, fresh.certified_height);
                assert_eq!(resp.id, 9, "cache hits are re-stamped per request");
            }
            other => panic!("expected cache hit, got {other:?}"),
        }
        let generation = front.cache_generation();
        front.advance_staged();
        assert_eq!(front.cache_generation(), generation + 1);
        assert_eq!(front.cached_entries(), 0, "invalidation clears the cache");
        assert_eq!(
            front.submit(3, history_request(4, 10)),
            Ok(Submitted::Enqueued { coalesced: false }),
            "post-invalidation lookups miss"
        );
    }

    #[test]
    fn queue_and_waiter_bounds_shed_with_typed_reasons() {
        let mut front = front_with(
            ServeConfig {
                queue_capacity: 1,
                max_waiters: 2,
                ..ServeConfig::default()
            },
            1,
        );
        front.submit(0, history_request(1, 1)).expect("admitted");
        // Distinct query, queue full.
        let refused = front
            .submit(0, {
                let mut r = history_request(2, 2);
                if let QuerySpec::History { t2, .. } = &mut r.query {
                    *t2 = 99;
                }
                r
            })
            .expect_err("queue is full");
        assert!(matches!(refused.reason, RefusalReason::QueueFull { .. }));
        // Identical query coalesces despite the full queue.
        front.submit(0, history_request(3, 3)).expect("coalesces");
        // Waiter table now full; even a coalescible request is refused.
        let refused = front
            .submit(0, history_request(4, 4))
            .expect_err("waiter table is full");
        assert!(matches!(refused.reason, RefusalReason::Backlogged { .. }));
    }

    #[test]
    fn rate_limit_sheds_with_retry_hint() {
        let mut front = front_with(
            ServeConfig {
                rate_limit: RateLimit {
                    tokens_per_tick: 1,
                    burst: 1,
                },
                ..ServeConfig::default()
            },
            1,
        );
        front.submit(5, history_request(7, 1)).expect("admitted");
        let refused = front
            .submit(5, history_request(7, 2))
            .expect_err("bucket empty");
        assert_eq!(
            refused.reason,
            RefusalReason::RateLimited {
                retry_after_ticks: 1
            }
        );
        // One tick later the bucket has a token again.
        front.submit(6, history_request(7, 3)).expect("refilled");
    }

    /// Regression (slow-loris fix): a pending entry whose every waiter
    /// abandoned it releases its coalescing slot — no leaked in-flight
    /// entries, and no backend call is spent on it.
    #[test]
    fn abandoned_waiters_release_their_coalescing_slot() {
        let mut front = front_with(ServeConfig::default(), 1);
        front.submit(0, history_request(1, 10)).expect("admitted");
        front.submit(0, history_request(2, 20)).expect("coalesces");
        assert_eq!(front.inflight_entries(), 1);
        assert_eq!(front.parked_waiters(), 2);

        assert!(front.cancel(1, 10), "first waiter leaves");
        assert_eq!(front.inflight_entries(), 1, "entry lives while waited on");
        assert!(front.cancel(2, 20), "last waiter leaves");
        assert_eq!(front.inflight_entries(), 0, "entry released with it");
        assert_eq!(front.parked_waiters(), 0);
        assert!(!front.cancel(2, 20), "double-cancel finds nothing");

        assert!(
            front.pump(1, 16).is_empty(),
            "no backend reply for an abandoned query"
        );
    }

    #[test]
    fn disconnect_releases_every_waiter_of_a_client() {
        let mut front = front_with(ServeConfig::default(), 1);
        front.submit(0, history_request(9, 1)).expect("admitted");
        front.submit(0, history_request(9, 2)).expect("coalesces");
        front.submit(0, history_request(8, 3)).expect("coalesces");
        assert_eq!(front.disconnect(9), 2);
        assert_eq!(front.parked_waiters(), 1);
        assert_eq!(front.inflight_entries(), 1, "client 8 still waits");
        let deliveries = front.pump(1, 16);
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].0, 8);
    }

    #[test]
    fn unknown_index_refuses_at_pump_time() {
        let mut front = front_with(ServeConfig::default(), 1);
        front
            .submit(0, {
                let mut r = history_request(1, 77);
                if let QuerySpec::History { index, .. } = &mut r.query {
                    *index = "nope".into();
                }
                r
            })
            .expect("admission cannot know the index set");
        let deliveries = front.pump(1, 16);
        assert_eq!(deliveries.len(), 1);
        match &deliveries[0].1 {
            ServeWire::Refusal(refusal) => {
                assert_eq!(refusal.id, 77);
                assert_eq!(refusal.reason, RefusalReason::UnknownIndex);
            }
            other => panic!("expected typed refusal, got {other:?}"),
        }
    }
}
