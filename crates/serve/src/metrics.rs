//! `serve.*` metric handles.
//!
//! Everything except `serve.serve_ns` is deterministic for a fixed seed
//! and workload: counters count scheduling decisions the virtual clock
//! fully determines, `serve.wait_ticks` measures *simulated* queueing
//! delay, and the gauges track queue occupancy. `serve.serve_ns` is the
//! one wall-clock series (backend call duration via `dcert_sgx::cost`);
//! `Snapshot::without_wall_clock` strips it by the `_ns` naming
//! convention, so the replay suites compare the rest byte-for-byte.

use dcert_obs::{Buckets, Counter, Gauge, Histogram, Registry};

/// Registered handles for every serve metric.
#[derive(Debug, Clone)]
pub struct ServeMetrics {
    /// Requests submitted (admitted or not).
    pub requests: Counter,
    /// Answered straight from the proof cache.
    pub cache_hits: Counter,
    /// Attached as waiters to an already-pending identical query.
    pub coalesce_hits: Counter,
    /// Backend `serve_*` calls actually executed.
    pub backend_calls: Counter,
    /// Responses fanned out to waiters (one per waiter, not per call).
    pub fanout: Counter,
    /// Typed refusals: queue at capacity.
    pub shed_queue_full: Counter,
    /// Typed refusals: client out of tokens.
    pub shed_rate_limited: Counter,
    /// Typed refusals: waiter table at capacity.
    pub shed_backlogged: Counter,
    /// Typed refusals: no such index (delivered at pump time).
    pub shed_unknown_index: Counter,
    /// Pending entries dropped because every waiter had abandoned them.
    pub waiters_released: Counter,
    /// Op-stream queries answered by narrowing a cached covering window
    /// (no backend call, no new proof).
    pub window_hits: Counter,
    /// Cache invalidations (generation bumps).
    pub invalidations: Counter,
    /// Distinct queries pending right now (`_depth`: stripped from
    /// replay comparisons by convention, though it is deterministic
    /// here).
    pub queue_depth: Gauge,
    /// High-water mark of distinct pending queries.
    pub queue_high_water: Gauge,
    /// High-water mark of parked waiters.
    pub waiter_high_water: Gauge,
    /// Simulated ticks a request waited from admission to fanout.
    pub wait_ticks: Histogram,
    /// Canonical payload sizes served (hits and misses alike).
    pub payload_bytes: Histogram,
    /// Wall-clock backend serve time (stripped from replay comparisons).
    pub serve_ns: Histogram,
}

impl ServeMetrics {
    /// Registers every handle in `registry` (or hands out detached
    /// handles when given [`Registry::disabled`]).
    pub fn register(registry: &Registry) -> Self {
        ServeMetrics {
            requests: registry.counter("serve.requests"),
            cache_hits: registry.counter("serve.cache_hits"),
            coalesce_hits: registry.counter("serve.coalesce_hits"),
            backend_calls: registry.counter("serve.backend_calls"),
            fanout: registry.counter("serve.fanout"),
            shed_queue_full: registry.counter("serve.shed_queue_full"),
            shed_rate_limited: registry.counter("serve.shed_rate_limited"),
            shed_backlogged: registry.counter("serve.shed_backlogged"),
            shed_unknown_index: registry.counter("serve.shed_unknown_index"),
            waiters_released: registry.counter("serve.waiters_released"),
            window_hits: registry.counter("serve.window_hits"),
            invalidations: registry.counter("serve.invalidations"),
            queue_depth: registry.gauge("serve.queue_depth"),
            queue_high_water: registry.gauge("serve.queue_high_water"),
            waiter_high_water: registry.gauge("serve.waiter_high_water"),
            wait_ticks: registry.histogram("serve.wait_ticks", Buckets::exponential(1, 2, 16)),
            payload_bytes: registry.histogram("serve.payload_bytes", Buckets::bytes()),
            serve_ns: registry.timer("serve.serve_ns"),
        }
    }

    /// Detached handles: every update is a no-op.
    pub fn disabled() -> Self {
        Self::register(&Registry::disabled())
    }
}
