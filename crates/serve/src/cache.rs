//! Generation-keyed proof cache.
//!
//! Entries are keyed by the canonical [`QuerySpec`](crate::QuerySpec)
//! bytes and are valid only for the **generation** they were inserted
//! under. The front-end bumps the generation whenever anything that can
//! change an answer moves — `stage_block` advances the index height,
//! `record_certs`/`advance_staged` move the certified digests — and a
//! bump clears the cache wholesale. That makes "no stale proof survives
//! a height advance" a structural property rather than a bookkeeping
//! discipline: there is no code path that can return a pre-advance entry
//! afterwards, because no pre-advance entry exists.
//!
//! Eviction is deterministic: entries carry an insertion sequence number
//! and the oldest insertion is evicted first (FIFO). No wall-clock, no
//! access-time LRU — the replay suites compare hit/miss counters across
//! same-seed runs byte-for-byte.

use std::collections::{HashMap, VecDeque};

use crate::wire::ServeResponse;

/// A fixed-capacity FIFO cache of canonical response payloads.
#[derive(Debug)]
pub struct ProofCache {
    capacity: usize,
    generation: u64,
    entries: HashMap<Vec<u8>, ServeResponse>,
    insertion_order: VecDeque<Vec<u8>>,
}

impl ProofCache {
    /// Creates a cache holding at most `capacity` entries (0 disables
    /// caching entirely — every lookup misses).
    pub fn new(capacity: usize) -> Self {
        ProofCache {
            capacity,
            generation: 0,
            entries: HashMap::new(),
            insertion_order: VecDeque::new(),
        }
    }

    /// The current generation (bumped by [`ProofCache::invalidate`]).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up the cached response for a spec key. The `id` of the
    /// returned response is the *original* requester's; callers re-stamp
    /// it with the current request id.
    pub fn get(&self, spec_key: &[u8]) -> Option<&ServeResponse> {
        self.entries.get(spec_key)
    }

    /// Inserts a response under `spec_key`, evicting the oldest insertion
    /// if the cache is full. Keys already present keep their original
    /// insertion rank (the payload for a key cannot change within a
    /// generation, so a re-insert is a no-op in value terms).
    pub fn insert(&mut self, spec_key: Vec<u8>, response: ServeResponse) {
        if self.capacity == 0 {
            return;
        }
        if self.entries.contains_key(&spec_key) {
            return;
        }
        while self.entries.len() >= self.capacity {
            match self.insertion_order.pop_front() {
                Some(oldest) => {
                    self.entries.remove(&oldest);
                }
                None => break,
            }
        }
        self.insertion_order.push_back(spec_key.clone());
        self.entries.insert(spec_key, response);
    }

    /// Clears every entry and bumps the generation: nothing cached before
    /// this call can ever be served after it.
    pub fn invalidate(&mut self) {
        self.generation = self.generation.saturating_add(1);
        self.entries.clear();
        self.insertion_order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn response(height: u64, byte: u8) -> ServeResponse {
        ServeResponse {
            id: 0,
            certified_height: height,
            payload: vec![byte],
        }
    }

    #[test]
    fn fifo_eviction_is_deterministic() {
        let mut cache = ProofCache::new(2);
        cache.insert(b"a".to_vec(), response(1, 0xA));
        cache.insert(b"b".to_vec(), response(1, 0xB));
        cache.insert(b"c".to_vec(), response(1, 0xC));
        assert!(cache.get(b"a").is_none(), "oldest insertion evicted");
        assert!(cache.get(b"b").is_some());
        assert!(cache.get(b"c").is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn invalidate_clears_everything_and_bumps_generation() {
        let mut cache = ProofCache::new(4);
        cache.insert(b"a".to_vec(), response(1, 0xA));
        let before = cache.generation();
        cache.invalidate();
        assert!(cache.is_empty());
        assert_eq!(cache.generation(), before + 1);
        assert!(cache.get(b"a").is_none());
    }

    #[test]
    fn zero_capacity_never_caches() {
        let mut cache = ProofCache::new(0);
        cache.insert(b"a".to_vec(), response(1, 0xA));
        assert!(cache.get(b"a").is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn reinsert_keeps_first_value_and_rank() {
        let mut cache = ProofCache::new(2);
        cache.insert(b"a".to_vec(), response(1, 0xA));
        cache.insert(b"a".to_vec(), response(9, 0xF));
        assert_eq!(cache.get(b"a").map(|r| r.certified_height), Some(1));
        assert_eq!(cache.len(), 1);
    }
}
