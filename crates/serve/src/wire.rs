//! Canonical wire types for the serving front-end.
//!
//! Clients talk to a [`ServeFront`](crate::ServeFront) with exactly three
//! message shapes: a [`ServeRequest`] naming a query, a [`ServeResponse`]
//! carrying the canonical `(results, proof)` bytes at a certified height,
//! or a [`ServeRefusal`] with a typed reason (sheds are never silent).
//! [`ServeWire`] is the envelope carried opaquely inside
//! `NetMessage::Serve` so the gossip fabric needs no knowledge of query
//! semantics.
//!
//! Everything here decodes attacker-supplied bytes, so this module is held
//! to `dcert-lint` R2 panic-freedom (no unwrap/expect/indexing/truncating
//! casts) and is swept by `tests/decode_no_panic.rs`.

use dcert_merkle::aggmb::Aggregate;
use dcert_primitives::codec::{decode_seq, encode_seq, Decode, Encode, Reader};
use dcert_primitives::error::CodecError;
use dcert_primitives::hash::Hash;
use dcert_query::history::Version;
use dcert_query::{AggOpQueryProof, AggQueryProof, HistoryOpProof, HistoryProof, KeywordProof};
use dcert_vm::StateKey;

/// One verifiable query, exactly as the `ServiceProvider` serve methods
/// take it. The canonical encoding of a spec doubles as the coalescing
/// and cache key: two requests coalesce iff their specs encode to the
/// same bytes, which is precisely when the backend would answer them
/// with byte-identical `(results, proof)` pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuerySpec {
    /// Time-window history query against a named history index.
    History {
        /// Registered index name.
        index: String,
        /// Account/state key whose versions are requested.
        key: StateKey,
        /// Window start height (inclusive).
        t1: u64,
        /// Window end height (inclusive).
        t2: u64,
    },
    /// Conjunctive keyword query against a named inverted index.
    Keywords {
        /// Registered index name.
        index: String,
        /// Keywords, in the client's order (order is part of the proof's
        /// argument vector, so it is deliberately *not* canonicalized).
        keywords: Vec<String>,
    },
    /// Verifiable window aggregation against a named aggregate index.
    Aggregate {
        /// Registered index name.
        index: String,
        /// Account/state key whose window aggregate is requested.
        key: StateKey,
        /// Window start height (inclusive).
        t1: u64,
        /// Window end height (inclusive).
        t2: u64,
    },
    /// Time-window history query answered with the op-stream proof
    /// encoding ([`dcert_merkle::ProofEncoding::OpStream`]). Results are
    /// byte-identical to [`QuerySpec::History`] over the same window;
    /// only the proof encoding differs — and the front-end may answer a
    /// contained window from a cached covering op-stream answer.
    HistoryOp {
        /// Registered index name.
        index: String,
        /// Account/state key whose versions are requested.
        key: StateKey,
        /// Window start height (inclusive).
        t1: u64,
        /// Window end height (inclusive).
        t2: u64,
    },
    /// Verifiable window aggregation answered with the op-stream proof
    /// encoding.
    AggregateOp {
        /// Registered index name.
        index: String,
        /// Account/state key whose window aggregate is requested.
        key: StateKey,
        /// Window start height (inclusive).
        t1: u64,
        /// Window end height (inclusive).
        t2: u64,
    },
}

impl QuerySpec {
    /// The registered index name this spec targets.
    pub fn index(&self) -> &str {
        match self {
            QuerySpec::History { index, .. }
            | QuerySpec::Keywords { index, .. }
            | QuerySpec::Aggregate { index, .. }
            | QuerySpec::HistoryOp { index, .. }
            | QuerySpec::AggregateOp { index, .. } => index,
        }
    }

    /// The canonical spec key: the coalescing and cache-lookup identity.
    pub fn cache_key(&self) -> Vec<u8> {
        self.to_encoded_bytes()
    }
}

impl Encode for QuerySpec {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            QuerySpec::History { index, key, t1, t2 } => {
                out.push(0);
                index.encode(out);
                key.encode(out);
                t1.encode(out);
                t2.encode(out);
            }
            QuerySpec::Keywords { index, keywords } => {
                out.push(1);
                index.encode(out);
                encode_seq(keywords, out);
            }
            QuerySpec::Aggregate { index, key, t1, t2 } => {
                out.push(2);
                index.encode(out);
                key.encode(out);
                t1.encode(out);
                t2.encode(out);
            }
            QuerySpec::HistoryOp { index, key, t1, t2 } => {
                out.push(3);
                index.encode(out);
                key.encode(out);
                t1.encode(out);
                t2.encode(out);
            }
            QuerySpec::AggregateOp { index, key, t1, t2 } => {
                out.push(4);
                index.encode(out);
                key.encode(out);
                t1.encode(out);
                t2.encode(out);
            }
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            QuerySpec::History { index, key, t1, t2 }
            | QuerySpec::Aggregate { index, key, t1, t2 }
            | QuerySpec::HistoryOp { index, key, t1, t2 }
            | QuerySpec::AggregateOp { index, key, t1, t2 } => {
                index.encoded_len() + key.encoded_len() + t1.encoded_len() + t2.encoded_len()
            }
            QuerySpec::Keywords { index, keywords } => {
                index.encoded_len() + 4 + keywords.iter().map(Encode::encoded_len).sum::<usize>()
            }
        }
    }
}

impl Decode for QuerySpec {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.take_byte()? {
            0 => Ok(QuerySpec::History {
                index: String::decode(r)?,
                key: StateKey::decode(r)?,
                t1: u64::decode(r)?,
                t2: u64::decode(r)?,
            }),
            1 => Ok(QuerySpec::Keywords {
                index: String::decode(r)?,
                keywords: decode_seq(r)?,
            }),
            2 => Ok(QuerySpec::Aggregate {
                index: String::decode(r)?,
                key: StateKey::decode(r)?,
                t1: u64::decode(r)?,
                t2: u64::decode(r)?,
            }),
            3 => Ok(QuerySpec::HistoryOp {
                index: String::decode(r)?,
                key: StateKey::decode(r)?,
                t1: u64::decode(r)?,
                t2: u64::decode(r)?,
            }),
            4 => Ok(QuerySpec::AggregateOp {
                index: String::decode(r)?,
                key: StateKey::decode(r)?,
                t1: u64::decode(r)?,
                t2: u64::decode(r)?,
            }),
            other => Err(CodecError::InvalidTag(other)),
        }
    }
}

/// One client request: who is asking, their request id (for matching the
/// reply), and what they ask.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeRequest {
    /// Client identity the admission layer rate-limits on.
    pub client: u64,
    /// Client-chosen request id, echoed verbatim in the reply.
    pub id: u64,
    /// The query itself.
    pub query: QuerySpec,
}

impl Encode for ServeRequest {
    fn encode(&self, out: &mut Vec<u8>) {
        self.client.encode(out);
        self.id.encode(out);
        self.query.encode(out);
    }

    fn encoded_len(&self) -> usize {
        self.client.encoded_len() + self.id.encoded_len() + self.query.encoded_len()
    }
}

impl Decode for ServeRequest {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(ServeRequest {
            client: u64::decode(r)?,
            id: u64::decode(r)?,
            query: QuerySpec::decode(r)?,
        })
    }
}

/// A successful reply: the canonical `(results, proof)` encoding served
/// at `certified_height`. The payload is byte-identical to what a direct
/// uncached `ServiceProvider::serve_*` call at the same height would
/// produce through the [`encode_history_payload`]-family helpers — the
/// equivalence suite pins this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeResponse {
    /// The request id this answers.
    pub id: u64,
    /// The index height the answer (and its proofs) reflect.
    pub certified_height: u64,
    /// Canonical `(results, proof)` bytes; see the payload helpers.
    pub payload: Vec<u8>,
}

impl Encode for ServeResponse {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
        self.certified_height.encode(out);
        self.payload.encode(out);
    }

    fn encoded_len(&self) -> usize {
        self.id.encoded_len() + self.certified_height.encoded_len() + self.payload.encoded_len()
    }
}

impl Decode for ServeResponse {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(ServeResponse {
            id: u64::decode(r)?,
            certified_height: u64::decode(r)?,
            payload: Vec::<u8>::decode(r)?,
        })
    }
}

/// Why a request was refused. Every shed path produces one of these —
/// the front-end never drops a request silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefusalReason {
    /// The pending-query queue is at capacity; retry after a drain.
    QueueFull {
        /// Distinct queries pending when the request arrived.
        depth: u64,
    },
    /// The client exhausted its token bucket.
    RateLimited {
        /// Virtual ticks until the bucket refills by one token.
        retry_after_ticks: u64,
    },
    /// The total number of parked waiters is at capacity.
    Backlogged {
        /// Waiters parked when the request arrived.
        waiters: u64,
    },
    /// No index is registered under the requested name.
    UnknownIndex,
}

impl Encode for RefusalReason {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            RefusalReason::QueueFull { depth } => {
                out.push(0);
                depth.encode(out);
            }
            RefusalReason::RateLimited { retry_after_ticks } => {
                out.push(1);
                retry_after_ticks.encode(out);
            }
            RefusalReason::Backlogged { waiters } => {
                out.push(2);
                waiters.encode(out);
            }
            RefusalReason::UnknownIndex => out.push(3),
        }
    }

    fn encoded_len(&self) -> usize {
        match self {
            RefusalReason::UnknownIndex => 1,
            _ => 9,
        }
    }
}

impl Decode for RefusalReason {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.take_byte()? {
            0 => Ok(RefusalReason::QueueFull {
                depth: u64::decode(r)?,
            }),
            1 => Ok(RefusalReason::RateLimited {
                retry_after_ticks: u64::decode(r)?,
            }),
            2 => Ok(RefusalReason::Backlogged {
                waiters: u64::decode(r)?,
            }),
            3 => Ok(RefusalReason::UnknownIndex),
            other => Err(CodecError::InvalidTag(other)),
        }
    }
}

impl std::fmt::Display for RefusalReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RefusalReason::QueueFull { depth } => {
                write!(f, "queue full ({depth} queries pending)")
            }
            RefusalReason::RateLimited { retry_after_ticks } => {
                write!(f, "rate limited (retry in {retry_after_ticks} ticks)")
            }
            RefusalReason::Backlogged { waiters } => {
                write!(f, "backlogged ({waiters} waiters parked)")
            }
            RefusalReason::UnknownIndex => write!(f, "unknown index"),
        }
    }
}

/// A typed refusal: the request id plus the reason it was shed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeRefusal {
    /// The request id this refuses.
    pub id: u64,
    /// Why.
    pub reason: RefusalReason,
}

impl Encode for ServeRefusal {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
        self.reason.encode(out);
    }

    fn encoded_len(&self) -> usize {
        self.id.encoded_len() + self.reason.encoded_len()
    }
}

impl Decode for ServeRefusal {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(ServeRefusal {
            id: u64::decode(r)?,
            reason: RefusalReason::decode(r)?,
        })
    }
}

impl std::fmt::Display for ServeRefusal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "request {} refused: {}", self.id, self.reason)
    }
}

impl std::error::Error for ServeRefusal {}

/// The envelope carried inside `NetMessage::Serve`: either direction of
/// the serve protocol in one decodable shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeWire {
    /// Client → front-end.
    Request(ServeRequest),
    /// Front-end → client: success.
    Response(ServeResponse),
    /// Front-end → client: typed shed.
    Refusal(ServeRefusal),
}

impl Encode for ServeWire {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ServeWire::Request(m) => {
                out.push(0);
                m.encode(out);
            }
            ServeWire::Response(m) => {
                out.push(1);
                m.encode(out);
            }
            ServeWire::Refusal(m) => {
                out.push(2);
                m.encode(out);
            }
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            ServeWire::Request(m) => m.encoded_len(),
            ServeWire::Response(m) => m.encoded_len(),
            ServeWire::Refusal(m) => m.encoded_len(),
        }
    }
}

impl Decode for ServeWire {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.take_byte()? {
            0 => Ok(ServeWire::Request(ServeRequest::decode(r)?)),
            1 => Ok(ServeWire::Response(ServeResponse::decode(r)?)),
            2 => Ok(ServeWire::Refusal(ServeRefusal::decode(r)?)),
            other => Err(CodecError::InvalidTag(other)),
        }
    }
}

// ---------------------------------------------------------------------------
// Canonical payload encodings.
//
// The response payload is the `(results, proof)` pair exactly as the
// backend produced it, under the one canonical encoding both the serving
// path and the direct path share — byte equality of payloads is the
// equivalence suite's oracle.
// ---------------------------------------------------------------------------

/// Encodes a history answer as the canonical response payload.
pub fn encode_history_payload(results: &[(u64, Version)], proof: &HistoryProof) -> Vec<u8> {
    let mut out = Vec::new();
    encode_seq(results, &mut out);
    proof.encode(&mut out);
    out
}

/// Decodes a history response payload.
///
/// # Errors
///
/// Returns a [`CodecError`] on malformed or trailing bytes.
pub fn decode_history_payload(
    bytes: &[u8],
) -> Result<(Vec<(u64, Version)>, HistoryProof), CodecError> {
    let mut r = Reader::new(bytes);
    let results = decode_seq(&mut r)?;
    let proof = HistoryProof::decode(&mut r)?;
    finish(r)?;
    Ok((results, proof))
}

/// Encodes a keyword answer as the canonical response payload.
pub fn encode_keyword_payload(results: &[Hash], proof: &KeywordProof) -> Vec<u8> {
    let mut out = Vec::new();
    encode_seq(results, &mut out);
    proof.encode(&mut out);
    out
}

/// Decodes a keyword response payload.
///
/// # Errors
///
/// Returns a [`CodecError`] on malformed or trailing bytes.
pub fn decode_keyword_payload(bytes: &[u8]) -> Result<(Vec<Hash>, KeywordProof), CodecError> {
    let mut r = Reader::new(bytes);
    let results = decode_seq(&mut r)?;
    let proof = KeywordProof::decode(&mut r)?;
    finish(r)?;
    Ok((results, proof))
}

/// Encodes an aggregate answer as the canonical response payload.
pub fn encode_aggregate_payload(aggregate: &Aggregate, proof: &AggQueryProof) -> Vec<u8> {
    let mut out = Vec::new();
    aggregate.encode(&mut out);
    proof.encode(&mut out);
    out
}

/// Decodes an aggregate response payload.
///
/// # Errors
///
/// Returns a [`CodecError`] on malformed or trailing bytes.
pub fn decode_aggregate_payload(bytes: &[u8]) -> Result<(Aggregate, AggQueryProof), CodecError> {
    let mut r = Reader::new(bytes);
    let aggregate = Aggregate::decode(&mut r)?;
    let proof = AggQueryProof::decode(&mut r)?;
    finish(r)?;
    Ok((aggregate, proof))
}

/// Encodes an op-stream history answer as the canonical response payload.
pub fn encode_history_op_payload(results: &[(u64, Version)], proof: &HistoryOpProof) -> Vec<u8> {
    let mut out = Vec::new();
    encode_seq(results, &mut out);
    proof.encode(&mut out);
    out
}

/// Decodes an op-stream history response payload.
///
/// # Errors
///
/// Returns a [`CodecError`] on malformed or trailing bytes.
pub fn decode_history_op_payload(
    bytes: &[u8],
) -> Result<(Vec<(u64, Version)>, HistoryOpProof), CodecError> {
    let mut r = Reader::new(bytes);
    let results = decode_seq(&mut r)?;
    let proof = HistoryOpProof::decode(&mut r)?;
    finish(r)?;
    Ok((results, proof))
}

/// Encodes an op-stream aggregate answer as the canonical response payload.
pub fn encode_aggregate_op_payload(aggregate: &Aggregate, proof: &AggOpQueryProof) -> Vec<u8> {
    let mut out = Vec::new();
    aggregate.encode(&mut out);
    proof.encode(&mut out);
    out
}

/// Decodes an op-stream aggregate response payload.
///
/// # Errors
///
/// Returns a [`CodecError`] on malformed or trailing bytes.
pub fn decode_aggregate_op_payload(
    bytes: &[u8],
) -> Result<(Aggregate, AggOpQueryProof), CodecError> {
    let mut r = Reader::new(bytes);
    let aggregate = Aggregate::decode(&mut r)?;
    let proof = AggOpQueryProof::decode(&mut r)?;
    finish(r)?;
    Ok((aggregate, proof))
}

fn finish(r: Reader<'_>) -> Result<(), CodecError> {
    if r.remaining() != 0 {
        return Err(CodecError::TrailingBytes(r.remaining()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs() -> Vec<QuerySpec> {
        vec![
            QuerySpec::History {
                index: "history".into(),
                key: StateKey::new("kvstore", b"acct-1"),
                t1: 3,
                t2: 17,
            },
            QuerySpec::Keywords {
                index: "inverted".into(),
                keywords: vec!["stock".into(), "bank".into()],
            },
            QuerySpec::Aggregate {
                index: "agg".into(),
                key: StateKey::new("kvstore", b"acct-2"),
                t1: 0,
                t2: u64::MAX,
            },
            QuerySpec::HistoryOp {
                index: "history".into(),
                key: StateKey::new("kvstore", b"acct-1"),
                t1: 3,
                t2: 17,
            },
            QuerySpec::AggregateOp {
                index: "agg".into(),
                key: StateKey::new("kvstore", b"acct-2"),
                t1: 0,
                t2: u64::MAX,
            },
        ]
    }

    #[test]
    fn wire_round_trips() {
        for (i, spec) in specs().into_iter().enumerate() {
            let request = ServeRequest {
                client: 42,
                id: i as u64,
                query: spec,
            };
            for wire in [
                ServeWire::Request(request.clone()),
                ServeWire::Response(ServeResponse {
                    id: request.id,
                    certified_height: 9,
                    payload: vec![1, 2, 3],
                }),
                ServeWire::Refusal(ServeRefusal {
                    id: request.id,
                    reason: RefusalReason::QueueFull { depth: 8 },
                }),
            ] {
                let bytes = wire.to_encoded_bytes();
                assert_eq!(bytes.len(), wire.encoded_len());
                assert_eq!(ServeWire::decode_all(&bytes).unwrap(), wire);
            }
        }
    }

    #[test]
    fn refusal_reasons_round_trip() {
        for reason in [
            RefusalReason::QueueFull { depth: 3 },
            RefusalReason::RateLimited {
                retry_after_ticks: 7,
            },
            RefusalReason::Backlogged { waiters: 1000 },
            RefusalReason::UnknownIndex,
        ] {
            let bytes = reason.to_encoded_bytes();
            assert_eq!(bytes.len(), reason.encoded_len());
            assert_eq!(RefusalReason::decode_all(&bytes).unwrap(), reason);
        }
    }

    #[test]
    fn cache_key_is_injective_across_kinds() {
        let keys: Vec<Vec<u8>> = specs().iter().map(QuerySpec::cache_key).collect();
        for (i, a) in keys.iter().enumerate() {
            for b in keys.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn bad_tags_are_rejected() {
        assert!(QuerySpec::decode_all(&[9]).is_err());
        assert!(ServeWire::decode_all(&[7]).is_err());
        assert!(RefusalReason::decode_all(&[200]).is_err());
    }
}
