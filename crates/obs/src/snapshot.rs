//! Point-in-time metric snapshots and their deterministic JSON encoding.

use std::collections::BTreeMap;

/// One histogram bucket: observations `<= le` (cumulative per bucket, not
/// across buckets). `le == None` is the overflow bucket (+∞).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketCount {
    /// Inclusive upper bound; `None` = +∞.
    pub le: Option<u64>,
    /// Observations that landed in this bucket.
    pub count: u64,
}

/// A histogram's exported state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of observed values (wrapping).
    pub sum: u64,
    /// Smallest observation, if any.
    pub min: Option<u64>,
    /// Largest observation, if any.
    pub max: Option<u64>,
    /// Per-bucket counts, in bound order, overflow last.
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    /// Mean observed value, if any observations were recorded.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }
}

/// Every metric in a registry at one instant, in name order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// A counter's value (0 if absent — absent and never-incremented are
    /// indistinguishable to assertions by design).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge's value (0 if absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// The snapshot with every replay-variant metric removed: by
    /// convention, names ending in `_ns` measure elapsed real time and
    /// names ending in `_depth` sample live queue occupancy — both
    /// legitimately differ between replays of the same seed (wall clock
    /// and thread scheduling respectively). What remains must be
    /// bit-identical across same-seed runs — the determinism oracle
    /// `tests/obs_layer.rs` pins.
    pub fn without_wall_clock(&self) -> Snapshot {
        let keep = |name: &String| !name.ends_with("_ns") && !name.ends_with("_depth");
        Snapshot {
            counters: self
                .counters
                .iter()
                .filter(|(name, _)| keep(name))
                .map(|(name, value)| (name.clone(), *value))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .filter(|(name, _)| keep(name))
                .map(|(name, value)| (name.clone(), *value))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .filter(|(name, _)| keep(name))
                .map(|(name, value)| (name.clone(), value.clone()))
                .collect(),
        }
    }

    /// Deterministic JSON: keys in name order, two-space indent, no
    /// timestamps. Two equal snapshots encode to byte-identical strings.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"schema\": \"dcert-obs/v1\",\n  \"counters\": {");
        push_scalar_map(
            &mut out,
            self.counters.iter().map(|(k, v)| (k, v.to_string())),
        );
        out.push_str("},\n  \"gauges\": {");
        push_scalar_map(
            &mut out,
            self.gauges.iter().map(|(k, v)| (k, v.to_string())),
        );
        out.push_str("},\n  \"histograms\": {");
        let mut first = true;
        for (name, hist) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n    ");
            push_json_string(&mut out, name);
            out.push_str(": ");
            push_histogram(&mut out, hist);
        }
        if !first {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Writes [`Snapshot::to_json`] to a file.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

fn push_scalar_map<'a>(out: &mut String, entries: impl Iterator<Item = (&'a String, String)>) {
    let mut first = true;
    for (name, value) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n    ");
        push_json_string(out, name);
        out.push_str(": ");
        out.push_str(&value);
    }
    if !first {
        out.push_str("\n  ");
    }
}

fn push_histogram(out: &mut String, hist: &HistogramSnapshot) {
    out.push_str(&format!(
        "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": [",
        hist.count,
        hist.sum,
        hist.min.map_or("null".to_owned(), |v| v.to_string()),
        hist.max.map_or("null".to_owned(), |v| v.to_string()),
    ));
    let mut first = true;
    for bucket in &hist.buckets {
        if !first {
            out.push_str(", ");
        }
        first = false;
        out.push_str(&format!(
            "[{}, {}]",
            bucket.le.map_or("null".to_owned(), |v| v.to_string()),
            bucket.count
        ));
    }
    out.push_str("]}");
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{Buckets, Registry};

    fn sample() -> Registry {
        let registry = Registry::new();
        registry.counter("net.published").add(3);
        registry.gauge("pipeline.queue.depth").set(-2);
        registry
            .histogram("cert.bytes", Buckets::from_bounds(vec![100, 1000]))
            .observe(150);
        registry.timer("stage.issue_ns").observe(5_000);
        registry
    }

    #[test]
    fn json_is_deterministic_and_parseable_shape() {
        let a = sample().snapshot().to_json();
        let b = sample().snapshot().to_json();
        assert_eq!(a, b, "same registry contents must encode identically");
        assert!(a.contains("\"schema\": \"dcert-obs/v1\""));
        assert!(a.contains("\"net.published\": 3"));
        assert!(a.contains("\"pipeline.queue.depth\": -2"));
        assert!(a.contains("\"cert.bytes\""));
        // Balanced braces/brackets — a cheap well-formedness check.
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        assert_eq!(a.matches('[').count(), a.matches(']').count());
    }

    #[test]
    fn without_wall_clock_strips_replay_variant_metrics() {
        let registry = sample();
        registry.gauge("pipeline.issue.reorder_depth").record_max(4);
        let snapshot = registry.snapshot();
        assert!(snapshot.histograms.contains_key("stage.issue_ns"));
        let stripped = snapshot.without_wall_clock();
        assert!(!stripped.histograms.contains_key("stage.issue_ns"));
        assert!(!stripped.gauges.contains_key("pipeline.issue.reorder_depth"));
        assert!(stripped.histograms.contains_key("cert.bytes"));
        assert_eq!(stripped.counter("net.published"), 3);
        assert_eq!(
            stripped.gauge("pipeline.queue.depth"),
            -2,
            "only the `_depth` suffix is stripped, not substrings"
        );
    }

    #[test]
    fn empty_snapshot_encodes_cleanly() {
        let json = Snapshot::default().to_json();
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"histograms\": {}"));
    }

    #[test]
    fn strings_are_escaped() {
        let mut out = String::new();
        push_json_string(&mut out, "a\"b\\c\nd");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn histogram_mean() {
        let snap = HistogramSnapshot {
            count: 4,
            sum: 10,
            min: Some(1),
            max: Some(4),
            buckets: Vec::new(),
        };
        assert_eq!(snap.mean(), Some(2.5));
        let empty = HistogramSnapshot {
            count: 0,
            sum: 0,
            min: None,
            max: None,
            buckets: Vec::new(),
        };
        assert_eq!(empty.mean(), None);
    }
}
