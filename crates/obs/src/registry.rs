//! The metric registry and its handle types.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::snapshot::{BucketCount, HistogramSnapshot, Snapshot};

/// Sorted inclusive upper bounds for a [`Histogram`]'s buckets. A value
/// `v` lands in the first bucket with `v <= bound`; values above every
/// bound land in the implicit overflow bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Buckets(Vec<u64>);

impl Buckets {
    /// Buckets from explicit bounds (sorted and deduplicated).
    pub fn from_bounds(mut bounds: Vec<u64>) -> Self {
        bounds.sort_unstable();
        bounds.dedup();
        Buckets(bounds)
    }

    /// `count` bounds starting at `first`, each `factor`× the previous.
    pub fn exponential(first: u64, factor: u64, count: usize) -> Self {
        let mut bounds = Vec::with_capacity(count);
        let mut bound = first.max(1);
        for _ in 0..count {
            bounds.push(bound);
            bound = bound.saturating_mul(factor.max(2));
        }
        Buckets::from_bounds(bounds)
    }

    /// `count` bounds `start, start+step, start+2·step, …`.
    pub fn linear(start: u64, step: u64, count: usize) -> Self {
        let step = step.max(1);
        Buckets::from_bounds(
            (0..count as u64)
                .map(|i| start.saturating_add(i.saturating_mul(step)))
                .collect(),
        )
    }

    /// Nanosecond latency grid: 1 µs to ~68 s in powers of four. The
    /// default for `*_ns` timers.
    pub fn latency() -> Self {
        Buckets::exponential(1_000, 4, 13)
    }

    /// Byte-size grid: 64 B to 4 GB in powers of four. The default for
    /// payload/proof/certificate size histograms.
    pub fn bytes() -> Self {
        Buckets::exponential(64, 4, 14)
    }

    /// The sorted inclusive upper bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.0
    }
}

/// A monotonically increasing `u64` metric.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    fn detached() -> Self {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable signed metric (queue depths, residency levels).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    fn detached() -> Self {
        Gauge(Arc::new(AtomicI64::new(0)))
    }

    /// Sets the value.
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative via [`Gauge::sub`]).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Records `value` if it exceeds the current value (high-water mark).
    pub fn record_max(&self, value: i64) {
        self.0.fetch_max(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Sorted inclusive upper bounds; `counts` has one extra overflow slot.
    bounds: Box<[u64]>,
    counts: Box<[AtomicU64]>,
    total: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// A fixed-bucket distribution metric. Observation is lock-free and
/// allocation-free: one linear scan over the (small, fixed) bound table
/// plus a handful of relaxed atomic updates.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    fn with_buckets(buckets: &Buckets) -> Self {
        let bounds: Box<[u64]> = buckets.bounds().into();
        let counts: Box<[AtomicU64]> = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistogramCore {
            bounds,
            counts,
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }))
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        let core = &*self.0;
        let idx = core
            .bounds
            .iter()
            .position(|bound| value <= *bound)
            .unwrap_or(core.bounds.len());
        if let Some(slot) = core.counts.get(idx) {
            slot.fetch_add(1, Ordering::Relaxed);
        }
        core.total.fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(value, Ordering::Relaxed);
        core.min.fetch_min(value, Ordering::Relaxed);
        core.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (the `*_ns` timer convention).
    pub fn record(&self, duration: Duration) {
        self.observe(u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.total.load(Ordering::Relaxed)
    }

    /// Sum of all observed values (wrapping at `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let core = &*self.0;
        let count = core.total.load(Ordering::Relaxed);
        let mut buckets: Vec<BucketCount> = core
            .bounds
            .iter()
            .zip(core.counts.iter())
            .map(|(bound, slot)| BucketCount {
                le: Some(*bound),
                count: slot.load(Ordering::Relaxed),
            })
            .collect();
        buckets.push(BucketCount {
            le: None,
            count: core
                .counts
                .last()
                .map(|slot| slot.load(Ordering::Relaxed))
                .unwrap_or(0),
        });
        HistogramSnapshot {
            count,
            sum: core.sum.load(Ordering::Relaxed),
            min: (count > 0).then(|| core.min.load(Ordering::Relaxed)),
            max: (count > 0).then(|| core.max.load(Ordering::Relaxed)),
            buckets,
        }
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug)]
struct Inner {
    enabled: bool,
    metrics: Mutex<BTreeMap<String, Metric>>,
}

/// A shareable registry of named metrics.
///
/// Cloning is cheap (`Arc`); every clone sees the same metrics. Handles
/// returned by [`Registry::counter`] / [`Registry::gauge`] /
/// [`Registry::histogram`] stay valid for the registry's lifetime and are
/// the hot-path interface — hold them, don't re-look-up names per event.
///
/// Registering the same name twice returns a handle onto the *same*
/// metric (so independently wired subsystems can share a counter); a
/// name re-registered as a different kind yields a detached handle that
/// records nowhere rather than corrupting the original.
#[derive(Debug, Clone)]
pub struct Registry(Arc<Inner>);

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An enabled, empty registry.
    pub fn new() -> Self {
        Registry(Arc::new(Inner {
            enabled: true,
            metrics: Mutex::new(BTreeMap::new()),
        }))
    }

    /// A disabled registry: hands out detached handles, exports nothing.
    /// The inert default for production paths that are not being measured.
    pub fn disabled() -> Self {
        Registry(Arc::new(Inner {
            enabled: false,
            metrics: Mutex::new(BTreeMap::new()),
        }))
    }

    /// Whether this registry records and exports anything.
    pub fn is_enabled(&self) -> bool {
        self.0.enabled
    }

    fn with_metrics<T>(&self, f: impl FnOnce(&mut BTreeMap<String, Metric>) -> T) -> T {
        // A poisoned lock only means another thread panicked mid-insert;
        // the map itself is still structurally sound — keep serving.
        let mut metrics = match self.0.metrics.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        f(&mut metrics)
    }

    /// Registers (or re-fetches) a counter.
    pub fn counter(&self, name: &str) -> Counter {
        if !self.0.enabled {
            return Counter::detached();
        }
        self.with_metrics(|metrics| {
            match metrics
                .entry(name.to_owned())
                .or_insert_with(|| Metric::Counter(Counter::detached()))
            {
                Metric::Counter(counter) => counter.clone(),
                _ => Counter::detached(),
            }
        })
    }

    /// Registers (or re-fetches) a gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        if !self.0.enabled {
            return Gauge::detached();
        }
        self.with_metrics(|metrics| {
            match metrics
                .entry(name.to_owned())
                .or_insert_with(|| Metric::Gauge(Gauge::detached()))
            {
                Metric::Gauge(gauge) => gauge.clone(),
                _ => Gauge::detached(),
            }
        })
    }

    /// Registers (or re-fetches) a histogram. `buckets` only takes effect
    /// on first registration; later calls return the existing histogram
    /// unchanged.
    pub fn histogram(&self, name: &str, buckets: Buckets) -> Histogram {
        if !self.0.enabled {
            return Histogram::with_buckets(&buckets);
        }
        self.with_metrics(|metrics| {
            match metrics
                .entry(name.to_owned())
                .or_insert_with(|| Metric::Histogram(Histogram::with_buckets(&buckets)))
            {
                Metric::Histogram(histogram) => histogram.clone(),
                _ => Histogram::with_buckets(&buckets),
            }
        })
    }

    /// A latency histogram with the default [`Buckets::latency`] grid.
    /// By convention timer names end in `_ns` (wall-clock fields, stripped
    /// by [`Snapshot::without_wall_clock`] for determinism comparisons).
    pub fn timer(&self, name: &str) -> Histogram {
        self.histogram(name, Buckets::latency())
    }

    /// A point-in-time copy of every metric, in name order.
    pub fn snapshot(&self) -> Snapshot {
        let mut snapshot = Snapshot::default();
        if !self.0.enabled {
            return snapshot;
        }
        self.with_metrics(|metrics| {
            for (name, metric) in metrics.iter() {
                match metric {
                    Metric::Counter(counter) => {
                        snapshot.counters.insert(name.clone(), counter.get());
                    }
                    Metric::Gauge(gauge) => {
                        snapshot.gauges.insert(name.clone(), gauge.get());
                    }
                    Metric::Histogram(histogram) => {
                        snapshot
                            .histograms
                            .insert(name.clone(), histogram.snapshot());
                    }
                }
            }
        });
        snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let registry = Registry::new();
        let counter = registry.counter("a.count");
        counter.inc();
        counter.add(4);
        assert_eq!(counter.get(), 5);
        let gauge = registry.gauge("a.depth");
        gauge.set(7);
        gauge.sub(2);
        gauge.add(1);
        assert_eq!(gauge.get(), 6);
        gauge.record_max(3);
        assert_eq!(gauge.get(), 6, "record_max never lowers");
        gauge.record_max(11);
        assert_eq!(gauge.get(), 11);
    }

    #[test]
    fn same_name_shares_the_metric() {
        let registry = Registry::new();
        registry.counter("shared").add(2);
        registry.counter("shared").add(3);
        assert_eq!(registry.counter("shared").get(), 5);
    }

    #[test]
    fn kind_mismatch_detaches_instead_of_corrupting() {
        let registry = Registry::new();
        registry.counter("name").add(9);
        let gauge = registry.gauge("name");
        gauge.set(-1);
        assert_eq!(registry.counter("name").get(), 9);
        assert_eq!(registry.snapshot().gauges.get("name"), None);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive() {
        let hist = Histogram::with_buckets(&Buckets::from_bounds(vec![10, 100]));
        hist.observe(0); // first bucket
        hist.observe(10); // exactly on the bound → first bucket
        hist.observe(11); // second bucket
        hist.observe(100); // exactly on the bound → second bucket
        hist.observe(101); // overflow
        hist.observe(u64::MAX); // overflow
        let snap = hist.snapshot();
        let counts: Vec<u64> = snap.buckets.iter().map(|b| b.count).collect();
        assert_eq!(counts, vec![2, 2, 2]);
        assert_eq!(snap.count, 6);
        assert_eq!(snap.min, Some(0));
        assert_eq!(snap.max, Some(u64::MAX));
    }

    #[test]
    fn empty_histogram_has_no_min_max() {
        let hist = Histogram::with_buckets(&Buckets::latency());
        let snap = hist.snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.min, None);
        assert_eq!(snap.max, None);
        assert!(snap.buckets.iter().all(|b| b.count == 0));
    }

    #[test]
    fn bucket_presets_are_sorted_and_nonempty() {
        for buckets in [
            Buckets::latency(),
            Buckets::bytes(),
            Buckets::exponential(1, 2, 8),
            Buckets::linear(0, 5, 4),
        ] {
            assert!(!buckets.bounds().is_empty());
            assert!(buckets.bounds().windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn record_converts_durations_to_nanos() {
        let registry = Registry::new();
        let timer = registry.timer("t_ns");
        timer.record(Duration::from_micros(3));
        assert_eq!(timer.sum(), 3_000);
        assert_eq!(timer.count(), 1);
    }

    #[test]
    fn disabled_registry_exports_nothing() {
        let registry = Registry::disabled();
        let counter = registry.counter("x");
        counter.add(100); // harmless: detached
        registry.gauge("y").set(1);
        registry.timer("z_ns").observe(5);
        let snapshot = registry.snapshot();
        assert!(snapshot.counters.is_empty());
        assert!(snapshot.gauges.is_empty());
        assert!(snapshot.histograms.is_empty());
        assert!(!registry.is_enabled());
    }

    #[test]
    fn handles_are_shared_across_clones_and_threads() {
        let registry = Registry::new();
        let counter = registry.counter("threads");
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let counter = counter.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        counter.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("thread finishes");
        }
        assert_eq!(registry.clone().counter("threads").get(), 4000);
    }
}
