//! `dcert-obs` — the workspace's observability layer.
//!
//! The paper's evaluation (Figs. 7–11, Table 1) is a story about *where
//! time and bytes go*: enclave transitions, EPC pressure, certificate
//! sizes, query proof overhead. This crate gives every cost center one
//! common place to put those numbers — a [`Registry`] of named
//! [`Counter`]s, [`Gauge`]s, and fixed-bucket [`Histogram`]s — and one
//! common way to get them out: a deterministic, machine-readable
//! [`Snapshot`] (see [`Snapshot::to_json`]).
//!
//! Design constraints, in order:
//!
//! 1. **Zero dependencies.** Only `std`. The registry is infrastructure
//!    for measuring everything else; it must not drag in (or skew) what
//!    it measures.
//! 2. **Allocation-free hot path.** Handles are `Arc`-backed atomics:
//!    [`Counter::inc`], [`Gauge::set`], and [`Histogram::observe`] touch
//!    no lock and allocate nothing. Registration (name lookup) is the
//!    only locked, allocating operation — do it once at setup.
//! 3. **Deterministic export.** Snapshots iterate metrics in name order
//!    (`BTreeMap`) and contain no ambient timestamps, so two runs with
//!    the same seed export byte-identical JSON — modulo metrics that
//!    *measure* wall-clock time, which by convention end in `_ns` and can
//!    be stripped with [`Snapshot::without_wall_clock`] for replay
//!    comparisons.
//! 4. **Behaviorally inert.** A [`Registry::disabled`] registry hands out
//!    detached handles: recording into them is harmless and nothing is
//!    exported. Instrumented code paths must be byte-identical in output
//!    to uninstrumented ones (`tests/pipeline_equivalence.rs` pins this
//!    for the certification pipeline).
//!
//! This crate deliberately has no clock: durations are measured by
//! callers with the sanctioned `dcert_sgx::cost::timed` closure clock (or
//! the simulators' virtual clocks) and recorded via
//! [`Histogram::record`], keeping the determinism lint's clock allowlist
//! unchanged.
//!
//! # Example
//!
//! ```
//! use dcert_obs::{Buckets, Registry};
//!
//! let registry = Registry::new();
//! let ecalls = registry.counter("enclave.ecalls");
//! let bytes = registry.histogram("enclave.crossing_bytes", Buckets::bytes());
//! ecalls.inc();
//! bytes.observe(1024);
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.counters.get("enclave.ecalls"), Some(&1));
//! assert!(snapshot.to_json().contains("enclave.crossing_bytes"));
//! ```

#![forbid(unsafe_code)]

pub mod registry;
pub mod snapshot;

pub use registry::{Buckets, Counter, Gauge, Histogram, Registry};
pub use snapshot::{BucketCount, HistogramSnapshot, Snapshot};
