//! Acceptance suite for the op-stream proof encoding: the stack-machine
//! program and the per-path encoding are *observationally equivalent* —
//! the same certified digest verifies both, and the result rows they
//! authenticate are byte-identical — while the op stream alone supports
//! range completeness, non-membership brackets, and aggregate windows in
//! one shared-structure proof. The rejection side is proptested: omission,
//! tampering, and boundary truncation all fail typed for every family.
//!
//! The serve-level tests drive real certified data (kvstore workload,
//! staged + certified through the full pipeline) and pin the
//! window-containment fast path: a narrowed answer carved from a cached
//! covering op proof must agree row-for-row with direct backend serving
//! and still verify against the certified digest.

mod common;

use common::World;
use dcert::chain::Block;
use dcert::merkle::MbTree;
use dcert::primitives::codec::{Decode, Encode};
use dcert::query::aggregate::{verify_aggregate, verify_aggregate_op, AggregateIndex};
use dcert::query::history::{verify_history, verify_history_op, HistoryIndex};
use dcert::query::sp::IndexKind;
use dcert::serve::{
    decode_history_op_payload, QuerySpec, ServeConfig, ServeFront, ServeRequest, ServeWire,
    Submitted,
};
use dcert::vm::StateKey;
use dcert::workloads::Workload;
use proptest::prelude::*;

fn key(i: u64) -> StateKey {
    StateKey::new("kvstore", format!("key-{i}").as_bytes())
}

/// Deterministic twin indexes over the same write stream: key `k` writes
/// at height `h` unless `(h + k) % 3 == 0`, so every window mixes present
/// and absent heights and some keys stay untracked entirely.
fn build_indexes(heights: u64, keys: u64) -> (HistoryIndex, AggregateIndex) {
    let mut history = HistoryIndex::new("history");
    let mut aggregate = AggregateIndex::new("agg");
    for h in 1..=heights {
        let mut writes: Vec<(StateKey, Option<Vec<u8>>)> = Vec::new();
        for k in 0..keys {
            if (h + k) % 3 != 0 {
                writes.push((key(k), Some((h * 10 + k).to_be_bytes().to_vec())));
            }
        }
        writes.sort_by_key(|(k, _)| *k.as_hash());
        history.apply_block(h, &writes);
        aggregate.apply_block(h, &writes);
    }
    (history, aggregate)
}

/// One equivalence check for one `(key, window)` pair against both
/// indexes; factored out so the seed-matrix entry can reuse it at scale.
fn check_pair(history: &HistoryIndex, aggregate: &AggregateIndex, k: u64, t1: u64, t2: u64) {
    let hd = history.digest();
    let ad = aggregate.digest();

    // History: identical rows, both encodings verify, sizes are exact.
    let (pp_results, pp_proof) = history.query(&key(k), t1, t2);
    let (op_results, op_proof) = history.query_ops(&key(k), t1, t2);
    assert_eq!(pp_results, op_results, "row sets must be byte-identical");
    verify_history(&hd, &key(k), t1, t2, &pp_results, &pp_proof).expect("per-path verifies");
    verify_history_op(&hd, &key(k), t1, t2, &op_results, &op_proof).expect("op stream verifies");
    assert_eq!(pp_proof.size_bytes(), pp_proof.to_encoded_bytes().len());
    assert_eq!(op_proof.size_bytes(), op_proof.to_encoded_bytes().len());
    let decoded = dcert::query::HistoryOpProof::decode_all(&op_proof.to_encoded_bytes())
        .expect("op proof round-trips");
    verify_history_op(&hd, &key(k), t1, t2, &op_results, &decoded).expect("round-trip verifies");

    // Aggregate: same value under both encodings, both verify.
    let (pp_agg, pp_agg_proof) = aggregate.query(&key(k), t1, t2);
    let (op_agg, op_agg_proof) = aggregate.query_ops(&key(k), t1, t2);
    assert_eq!(pp_agg, op_agg, "aggregates must agree across encodings");
    verify_aggregate(&ad, &key(k), t1, t2, &pp_agg, &pp_agg_proof).expect("per-path verifies");
    verify_aggregate_op(&ad, &key(k), t1, t2, &op_agg, &op_agg_proof).expect("op stream verifies");
    assert_eq!(
        pp_agg_proof.size_bytes(),
        pp_agg_proof.to_encoded_bytes().len()
    );
    assert_eq!(
        op_agg_proof.size_bytes(),
        op_agg_proof.to_encoded_bytes().len()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// **Tentpole equivalence.** For arbitrary windows and keys (tracked
    /// and untracked), both encodings authenticate the same rows against
    /// the same digest, and every `size_bytes()` equals the real encoded
    /// length.
    #[test]
    fn prop_both_encodings_agree_and_verify(
        heights in 3u64..24,
        keys in 1u64..6,
        probe in 0u64..8,
        (a, b) in (1u64..30, 1u64..30),
    ) {
        let (history, aggregate) = build_indexes(heights, keys);
        let (t1, t2) = (a.min(b), a.max(b));
        check_pair(&history, &aggregate, probe, t1, t2);
        // Degenerate and clamped windows ride along.
        check_pair(&history, &aggregate, probe, t1, t1);
        check_pair(&history, &aggregate, probe, 0, u64::MAX);
    }

    /// **Rejection.** Omitting a row (middle or window edge), tampering
    /// with a value, or shifting a timestamp makes the op-stream proof
    /// fail — the verifier cannot be talked into a truncated tail.
    #[test]
    fn prop_op_stream_rejects_omission_and_tampering(
        heights in 6u64..20,
        probe in 0u64..3,
        drop_at in 0usize..32,
    ) {
        let (history, _) = build_indexes(heights, 3);
        let digest = history.digest();
        let (results, proof) = history.query_ops(&key(probe), 1, heights);
        prop_assume!(!results.is_empty());

        // Omission at an arbitrary position, including the window edge.
        let mut omitted = results.clone();
        omitted.remove(drop_at % results.len());
        prop_assert!(
            verify_history_op(&digest, &key(probe), 1, heights, &omitted, &proof).is_err(),
            "an omitted row must be detected"
        );
        // The provably-empty claim is just total omission.
        if !results.is_empty() {
            prop_assert!(
                verify_history_op(&digest, &key(probe), 1, heights, &[], &proof).is_err(),
                "claiming emptiness over a populated window must fail"
            );
        }
        // Value tampering.
        let mut tampered = results.clone();
        if let Some(v) = tampered[0].1.as_mut() {
            v.push(0xFF);
        } else {
            tampered[0].1 = Some(vec![0xFF]);
        }
        prop_assert!(
            verify_history_op(&digest, &key(probe), 1, heights, &tampered, &proof).is_err(),
            "a tampered value must be detected"
        );
        // Timestamp shifting.
        let mut shifted = results.clone();
        shifted[0].0 = shifted[0].0.wrapping_add(1_000_000);
        prop_assert!(
            verify_history_op(&digest, &key(probe), 1, heights, &shifted, &proof).is_err(),
            "a shifted timestamp must be detected"
        );
    }

    /// **Non-membership.** For any key set and probe, the bracket proof
    /// verifies exactly when the probe is absent, and the proven bracket
    /// is the true adjacent pair.
    #[test]
    fn prop_non_membership_brackets_are_adjacent(
        members in proptest::collection::btree_set(0u64..200, 1..20),
        probe in 0u64..200,
    ) {
        let mut tree = MbTree::new(4);
        for &ts in &members {
            tree.insert(ts, ts.to_be_bytes().to_vec());
        }
        let root = tree.root();
        let proof = tree.prove_non_membership(probe);
        if members.contains(&probe) {
            prop_assert!(
                proof.verify_non_membership(&root, probe).is_err(),
                "a present key can never prove its own absence"
            );
        } else {
            let (pred, succ) = proof
                .verify_non_membership(&root, probe)
                .expect("absence verifies");
            prop_assert_eq!(pred, members.range(..probe).next_back().copied());
            prop_assert_eq!(succ, members.range(probe + 1..).next().copied());
        }
    }
}

/// Stages `block` through the front and records its augmented
/// certificates — the full invalidating write path.
fn certify_into(world: &mut World, front: &mut ServeFront, block: &Block) {
    let inputs = front.stage_block(block).expect("block stages");
    let (certs, _) = world
        .ci
        .certify_augmented(block, &inputs)
        .expect("block certifies");
    front.record_certs(&certs);
}

/// Submits one op spec and pumps it through the backend, returning the
/// response payload.
fn pump_one(front: &mut ServeFront, spec: QuerySpec, id: u64) -> Vec<u8> {
    match front
        .submit(
            id,
            ServeRequest {
                client: id,
                id,
                query: spec,
            },
        )
        .expect("admitted")
    {
        Submitted::Enqueued { .. } => {}
        Submitted::CacheHit(r) => return r.payload,
    }
    let replies = front.pump(id, usize::MAX);
    assert_eq!(replies.len(), 1, "one waiter, one reply");
    match replies.into_iter().next().map(|(_, wire)| wire) {
        Some(ServeWire::Response(r)) => r.payload,
        other => panic!("expected a response, got {other:?}"),
    }
}

/// **Serve narrowing.** On real certified kvstore data, a narrowed window
/// served from a cached covering op proof agrees row-for-row with direct
/// backend serving and verifies against the certified digest — for
/// tracked and untracked keys alike.
#[test]
fn narrowed_windows_match_direct_serving_on_certified_data() {
    let (mut world, sp) = World::deterministic(vec![
        (IndexKind::History, "history"),
        (IndexKind::Aggregate, "agg"),
    ]);
    let blocks = world.mine_blocks(Workload::KvStore { keyspace: 8 }, 3, 6, 99);
    let mut front = ServeFront::new(sp, ServeConfig::default());
    for block in &blocks {
        certify_into(&mut world, &mut front, block);
    }
    let digest = front.sp().certified_digest("history").expect("certified");

    let mut window_hits = 0u64;
    for probe in 0..10u64 {
        // Prime the widest window through the pump (cached + recorded).
        let wide = QuerySpec::HistoryOp {
            index: "history".to_owned(),
            key: key(probe),
            t1: 1,
            t2: 3,
        };
        let wide_payload = pump_one(&mut front, wide, 100 + probe);
        let (wide_results, wide_proof) =
            decode_history_op_payload(&wide_payload).expect("wide payload decodes");
        verify_history_op(&digest, &key(probe), 1, 3, &wide_results, &wide_proof)
            .expect("wide answer verifies");

        // Every contained window must now be answerable without a backend
        // call, and the carved answer must match direct serving.
        for (t1, t2) in [(1u64, 2u64), (2, 2), (2, 3), (3, 3)] {
            let narrow = QuerySpec::HistoryOp {
                index: "history".to_owned(),
                key: key(probe),
                t1,
                t2,
            };
            let submitted = front
                .submit(
                    500 + probe,
                    ServeRequest {
                        client: 500 + 10 * probe + t1,
                        id: 500 + 10 * probe + t1,
                        query: narrow,
                    },
                )
                .expect("admitted");
            let Submitted::CacheHit(response) = submitted else {
                panic!("key {probe} window [{t1},{t2}]: contained window must hit");
            };
            window_hits += 1;
            let (rows, proof) =
                decode_history_op_payload(&response.payload).expect("narrowed payload decodes");
            let (direct_rows, _) = front
                .sp()
                .serve_history_ops("history", &key(probe), t1, t2)
                .expect("index registered");
            assert_eq!(rows, direct_rows, "narrowed rows == direct backend rows");
            verify_history_op(&digest, &key(probe), t1, t2, &rows, &proof)
                .expect("covering proof verifies for the narrowed window");
        }
    }
    assert!(window_hits > 0);
}

/// The CI seed-matrix entry: `CHAOS_SEED=<n> cargo test --test
/// op_proof_equivalence -- --include-ignored` sweeps the equivalence
/// check across a dense window grid under the matrix seed.
#[test]
#[ignore = "seed-matrix scale; run via CHAOS_SEED in CI"]
fn seed_matrix_entry() {
    let seed = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1u64);
    let heights = 16 + seed % 17;
    let (history, aggregate) = build_indexes(heights, 5);
    for k in 0..7u64 {
        for t1 in 1..=heights {
            for t2 in t1..=heights {
                check_pair(&history, &aggregate, k.wrapping_add(seed) % 7, t1, t2);
            }
        }
    }
}
