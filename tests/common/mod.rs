//! Shared fixtures for the integration tests: a mined chain, a Certificate
//! Issuer, a Service Provider, the simulated IAS, and a superlight client,
//! all wired to the same genesis and Blockbench contract semantics.

use std::sync::Arc;

use dcert::chain::{Block, ChainState, ConsensusEngine, FullNode, GenesisBuilder, ProofOfWork};
use dcert::core::{expected_measurement, CertificateIssuer, SuperlightClient};
use dcert::primitives::hash::Address;
use dcert::query::sp::IndexKind;
use dcert::query::ServiceProvider;
use dcert::sgx::{AttestationService, CostModel};
use dcert::vm::Executor;
use dcert::workloads::{blockbench_registry, Workload, WorkloadGen};

/// Difficulty used by integration tests (fast to mine, non-trivial to
/// fake).
pub const TEST_POW_BITS: u8 = 4;

/// Platform seed for [`World::deterministic`] worlds: CIs booted with it
/// share a platform identity (and therefore attestation quotes).
#[allow(dead_code)] // not every test binary uses the deterministic world
pub const TEST_PLATFORM_SEED: [u8; 32] = [0xC1; 32];

/// Enclave signing-key seed for [`World::deterministic`] worlds: ed25519
/// signing is deterministic, so CIs booted with it issue byte-identical
/// certificates — what the pipeline-equivalence suite compares.
#[allow(dead_code)]
pub const TEST_SIGNING_SEED: [u8; 32] = [0x51; 32];

/// Everything a test needs to drive the full DCert pipeline.
#[allow(dead_code)] // different integration tests use different fields
pub struct World {
    pub executor: Executor,
    pub engine: Arc<dyn ConsensusEngine>,
    pub genesis: Block,
    pub genesis_state: ChainState,
    pub miner: FullNode,
    pub ias: AttestationService,
    pub ci: CertificateIssuer,
    pub client: SuperlightClient,
}

impl World {
    /// Builds a world without SP indexes.
    #[allow(dead_code)] // not every test binary uses both constructors
    pub fn new() -> Self {
        Self::with_setup(Vec::new()).0
    }

    /// Builds a world plus a Service Provider with the given indexes.
    pub fn with_setup(indexes: Vec<(IndexKind, &str)>) -> (Self, ServiceProvider) {
        Self::build(indexes, None)
    }

    /// Builds a fully deterministic world: fixed genesis, fixed IAS seed,
    /// and a CI with pinned platform **and** enclave-signing seeds. Two
    /// worlds built by this constructor produce byte-identical
    /// certificates for the same blocks; tests assert on counts, bytes,
    /// and digests — never wall-clock (the enclave runs
    /// [`CostModel::zero`]).
    #[allow(dead_code)]
    pub fn deterministic(indexes: Vec<(IndexKind, &str)>) -> (Self, ServiceProvider) {
        Self::build(indexes, Some((TEST_PLATFORM_SEED, TEST_SIGNING_SEED)))
    }

    fn build(
        indexes: Vec<(IndexKind, &str)>,
        seeds: Option<([u8; 32], [u8; 32])>,
    ) -> (Self, ServiceProvider) {
        let executor = Executor::new(Arc::new(blockbench_registry()));
        let engine: Arc<dyn ConsensusEngine> = Arc::new(ProofOfWork::new(TEST_POW_BITS));
        let (genesis, genesis_state) = GenesisBuilder::new().timestamp(1_700_000_000).build();

        let miner = FullNode::new(
            &genesis,
            genesis_state.clone(),
            executor.clone(),
            engine.clone(),
            Address::from_seed(0xBEEF),
        );

        let mut sp = ServiceProvider::new(
            &genesis,
            genesis_state.clone(),
            executor.clone(),
            engine.clone(),
        );
        for (kind, name) in indexes {
            sp.add_index(kind, name);
        }

        let mut ias = AttestationService::with_seed([0xA5; 32]);
        let ci = match seeds {
            Some((platform_seed, signing_seed)) => CertificateIssuer::new_deterministic(
                platform_seed,
                signing_seed,
                &genesis,
                genesis_state.clone(),
                executor.clone(),
                engine.clone(),
                sp.verifiers(),
                &mut ias,
                CostModel::zero(),
            ),
            None => CertificateIssuer::new(
                &genesis,
                genesis_state.clone(),
                executor.clone(),
                engine.clone(),
                sp.verifiers(),
                &mut ias,
                CostModel::zero(),
            ),
        }
        .expect("CI boots");

        let client = SuperlightClient::new(ias.public_key(), expected_measurement());
        (
            World {
                executor,
                engine,
                genesis,
                genesis_state,
                miner,
                ias,
                ci,
                client,
            },
            sp,
        )
    }

    /// Mines `count` blocks of `workload` with `txs` transactions each on
    /// this world's miner (heights double as timestamps, keeping the
    /// chain fully seed-determined).
    #[allow(dead_code)] // not every test binary mines through the world
    pub fn mine_blocks(
        &mut self,
        workload: Workload,
        count: usize,
        txs: usize,
        seed: u64,
    ) -> Vec<Block> {
        let mut gen = WorkloadGen::new(workload, 8, seed);
        (0..count)
            .map(|_| {
                let height = self.miner.height() + 1;
                self.miner.mine(gen.next_block(txs), height).expect("mines")
            })
            .collect()
    }
}

/// Creates a unique, empty temp directory for an integration test.
/// Uniqueness comes from the process id plus a counter — no ambient
/// randomness, so test runs stay fully seed-determined.
#[allow(dead_code)] // only the persistence suites need scratch directories
pub fn temp_dir(label: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("dcert-it-{}-{}-{label}", std::process::id(), n));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("stale temp dir removable");
    }
    std::fs::create_dir_all(&dir).expect("temp dir creatable");
    dir
}
