//! Security tests: every forgery path of Definition 1 (block certificate
//! security) must be rejected, at the layer that is supposed to catch it.
//!
//! The trusted program is exercised directly (`CertProgram::handle`) so
//! assertions can match *typed* errors; client-side attacks go through
//! `SuperlightClient`.

mod common;

use std::sync::Arc;

use common::{World, TEST_POW_BITS};
use dcert::chain::consensus::ConsensusProof;
use dcert::chain::{ChainError, GenesisBuilder, ProofOfWork};
use dcert::core::{
    expected_measurement, BlockInput, CertError, CertProgram, Certificate, EcallRequest,
    EcallResponse, FaultConfig, NetMessage, SimNet, SuperlightClient, SyncOutcome, Transport,
};
use dcert::primitives::codec::Decode;
use dcert::primitives::hash::hash_bytes;
use dcert::primitives::keys::Keypair;
use dcert::sgx::AttestationService;
use dcert::vm::Executor;
use dcert::workloads::{blockbench_registry, Workload, WorkloadGen};

/// A trusted program outside any enclave, plus a valid `BlockInput` for
/// block 1 — the raw material for request-level attacks.
fn program_and_input() -> (CertProgram, BlockInput) {
    let executor = Executor::new(Arc::new(blockbench_registry()));
    let engine = Arc::new(ProofOfWork::new(TEST_POW_BITS));
    let (genesis, state) = GenesisBuilder::new().timestamp(1_700_000_000).build();
    let ias = AttestationService::with_seed([0xA5; 32]);

    let miner = dcert::chain::FullNode::new(
        &genesis,
        state.clone(),
        executor.clone(),
        engine.clone(),
        dcert::primitives::hash::Address::from_seed(1),
    );
    let mut gen = WorkloadGen::new(Workload::KvStore { keyspace: 16 }, 4, 11);
    let txs = gen.next_block(4);
    let block = miner.propose(txs, 1).unwrap();

    let execution = {
        let calls: Vec<_> = block.txs.iter().map(|t| t.call.clone()).collect();
        executor.execute_block(state_reader(&state), &calls)
    };
    let touched = execution.touched_keys();
    let state_proof = state.prove(&touched);
    let input = BlockInput {
        prev_header: genesis.header.clone(),
        prev_cert: None,
        block,
        reads: execution
            .reads
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect(),
        state_proof,
    };

    let mut program = CertProgram::new(
        genesis.hash(),
        ias.public_key(),
        executor,
        engine,
        Vec::new(),
    );
    program.handle(EcallRequest::Init).unwrap();
    (program, input)
}

fn state_reader(state: &dcert::chain::ChainState) -> &dcert::chain::ChainState {
    state
}

fn expect_sig(program: &mut CertProgram, input: BlockInput) -> Result<(), CertError> {
    match program.handle(EcallRequest::SigGen(input))? {
        EcallResponse::Signature(_) => Ok(()),
        other => panic!("unexpected response {other:?}"),
    }
}

#[test]
fn honest_input_is_signed() {
    let (mut program, input) = program_and_input();
    expect_sig(&mut program, input).unwrap();
}

#[test]
fn tampered_state_root_rejected() {
    let (mut program, mut input) = program_and_input();
    input.block.header.state_root = hash_bytes(b"forged");
    // Reseal so the consensus check passes and the state check trips.
    let engine = ProofOfWork::new(TEST_POW_BITS);
    dcert::chain::ConsensusEngine::seal(&engine, &mut input.block.header).unwrap();
    assert_eq!(
        expect_sig(&mut program, input),
        Err(CertError::StateRootMismatch)
    );
}

#[test]
fn broken_parent_link_rejected() {
    let (mut program, mut input) = program_and_input();
    input.block.header.prev_hash = hash_bytes(b"elsewhere");
    let engine = ProofOfWork::new(TEST_POW_BITS);
    dcert::chain::ConsensusEngine::seal(&engine, &mut input.block.header).unwrap();
    assert!(matches!(
        expect_sig(&mut program, input),
        Err(CertError::Chain(ChainError::BrokenLink { .. }))
    ));
}

#[test]
fn wrong_height_rejected() {
    let (mut program, mut input) = program_and_input();
    input.block.header.height = 7;
    let engine = ProofOfWork::new(TEST_POW_BITS);
    dcert::chain::ConsensusEngine::seal(&engine, &mut input.block.header).unwrap();
    assert!(matches!(
        expect_sig(&mut program, input),
        Err(CertError::Chain(ChainError::BadHeight { .. }))
    ));
}

#[test]
fn unsealed_block_rejected() {
    let (mut program, mut input) = program_and_input();
    input.block.header.state_root = hash_bytes(b"changed-without-resealing");
    // Old nonce, new content: the consensus check must trip first.
    assert!(matches!(
        expect_sig(&mut program, input),
        Err(CertError::Chain(ChainError::BadConsensus(_)))
    ));
}

#[test]
fn weak_difficulty_claim_rejected() {
    let (mut program, mut input) = program_and_input();
    input.block.header.consensus = ConsensusProof::Pow {
        difficulty_bits: 0,
        nonce: 0,
    };
    assert!(matches!(
        expect_sig(&mut program, input),
        Err(CertError::Chain(ChainError::BadConsensus(_)))
    ));
}

#[test]
fn tampered_tx_body_rejected() {
    let (mut program, mut input) = program_and_input();
    input.block.txs[0].call.payload = b"evil".to_vec();
    assert!(matches!(
        expect_sig(&mut program, input),
        Err(CertError::Chain(ChainError::TxRootMismatch))
    ));
}

#[test]
fn forged_read_value_rejected() {
    let (mut program, mut input) = program_and_input();
    if input.reads.is_empty() {
        panic!("fixture must produce reads");
    }
    input.reads[0].1 = Some(b"lies about pre-state".to_vec());
    assert_eq!(
        expect_sig(&mut program, input),
        Err(CertError::ReadSetMismatch)
    );
}

#[test]
fn incomplete_read_set_rejected() {
    let (mut program, mut input) = program_and_input();
    input.reads.clear();
    // With no reads provided, replay reverts with ReadSetMiss.
    assert_eq!(
        expect_sig(&mut program, input),
        Err(CertError::ReadSetMismatch)
    );
}

#[test]
fn wrong_genesis_rejected() {
    let (mut program, mut input) = program_and_input();
    // Present a different "genesis" as the parent.
    let (other_genesis, _) = GenesisBuilder::new().timestamp(1).build();
    input.prev_header = other_genesis.header;
    assert_eq!(
        expect_sig(&mut program, input),
        Err(CertError::GenesisMismatch)
    );
}

#[test]
fn missing_prev_cert_rejected() {
    let (mut program, mut input) = program_and_input();
    // Claim the parent is height 3 (non-genesis) without a certificate.
    input.prev_header.height = 3;
    input.block.header.height = 4;
    assert_eq!(
        expect_sig(&mut program, input),
        Err(CertError::MissingPrevCert)
    );
}

#[test]
fn self_signed_prev_cert_rejected() {
    // An attacker fabricates a parent "certificate" with their own key;
    // the report binding cannot be faked.
    let (mut program, mut input) = program_and_input();
    let attacker = Keypair::from_seed([66; 32]);
    let fake_ias = AttestationService::with_seed([66; 32]);
    let mut attacker_ias = fake_ias;
    let platform = Keypair::from_seed([67; 32]);
    attacker_ias.register_platform(platform.public());
    let quote = dcert::sgx::Quote::sign(
        &platform,
        expected_measurement(),
        Certificate::key_binding(&attacker.public()),
    );
    let report = attacker_ias.attest(&quote).unwrap();

    input.prev_header.height = 1;
    input.block.header.height = 2;
    let digest = input.prev_header.hash();
    input.prev_cert = Some(Certificate {
        pk_enc: attacker.public(),
        report,
        digest,
        signature: attacker.sign(digest.as_bytes()),
    });
    // The report was signed by the wrong IAS root.
    assert!(matches!(
        expect_sig(&mut program, input),
        Err(CertError::Attestation(_))
    ));
}

// --- client-side attacks ---------------------------------------------------

#[test]
fn client_rejects_cert_from_unexpected_program() {
    let mut world = World::new();
    let block = world.miner.mine(Vec::new(), 1).unwrap();
    let (cert, _) = world.ci.certify_block(&block).unwrap();

    // A client pinning a *different* program measurement must reject.
    let mut paranoid =
        SuperlightClient::new(world.ias.public_key(), hash_bytes(b"some-other-program"));
    assert_eq!(
        paranoid.validate_chain(&block.header, &cert),
        Err(CertError::WrongMeasurement)
    );
}

#[test]
fn client_rejects_cert_for_different_header() {
    let mut world = World::new();
    let b1 = world.miner.mine(Vec::new(), 1).unwrap();
    let (c1, _) = world.ci.certify_block(&b1).unwrap();
    let b2 = world.miner.mine(Vec::new(), 2).unwrap();
    let (_c2, _) = world.ci.certify_block(&b2).unwrap();
    // Presenting b2's header with b1's certificate must fail.
    assert_eq!(
        world.client.validate_chain(&b2.header, &c1),
        Err(CertError::DigestMismatch)
    );
}

#[test]
fn client_rejects_tampered_header() {
    let mut world = World::new();
    let block = world.miner.mine(Vec::new(), 1).unwrap();
    let (cert, _) = world.ci.certify_block(&block).unwrap();
    let mut tampered = block.header.clone();
    tampered.state_root = hash_bytes(b"parallel universe");
    assert_eq!(
        world.client.validate_chain(&tampered, &cert),
        Err(CertError::DigestMismatch)
    );
}

#[test]
fn client_rejects_resigned_certificate() {
    let mut world = World::new();
    let block = world.miner.mine(Vec::new(), 1).unwrap();
    let (cert, _) = world.ci.certify_block(&block).unwrap();

    // Attacker swaps in their own digest+signature under their own key.
    let attacker = Keypair::from_seed([13; 32]);
    let mut forged = cert.clone();
    forged.pk_enc = attacker.public();
    let fake = world.miner.tip().clone();
    forged.digest = fake.hash();
    forged.signature = attacker.sign(forged.digest.as_bytes());
    assert_eq!(
        world.client.validate_chain(&fake, &forged),
        Err(CertError::KeyBindingMismatch)
    );
}

// --- in-flight corruption --------------------------------------------------

/// Certificates corrupted *on the wire* (one bit flipped by the network,
/// not an adversary with the message in hand): if the mangled frame still
/// decodes, the client must reject it as a forgery; and once the network
/// heals and the pristine stream is republished, the client catches up —
/// it recovers through resync rather than wedging on the garbage it saw.
#[test]
fn corrupted_in_flight_certificates_rejected_then_recovered() {
    let (mut world, _) = World::deterministic(Vec::new());
    let blocks = world.mine_blocks(Workload::KvStore { keyspace: 16 }, 4, 3, 21);
    let pristine: Vec<NetMessage> = blocks
        .iter()
        .map(|b| {
            let (cert, _) = world.ci.certify_block(b).unwrap();
            NetMessage::BlockCert {
                header: b.header.clone(),
                cert,
            }
        })
        .collect();

    // Phase 1: every delivery has one wire bit flipped.
    let net = SimNet::new(
        0xBADB17,
        FaultConfig {
            corrupt_rate: 1.0,
            ..FaultConfig::lossless()
        },
    );
    let rx = net.join();
    let mut client = SuperlightClient::new(world.ias.public_key(), expected_measurement());
    for msg in &pristine {
        net.publish(msg.clone());
    }
    net.flush();
    let mut delivered = 0u64;
    while let Ok(msg) = rx.try_recv() {
        delivered += 1;
        assert_ne!(
            client.on_message(&msg),
            SyncOutcome::Adopted,
            "a bit-flipped certificate must never validate"
        );
    }
    assert_eq!(client.height(), None, "nothing intact arrived");
    let stats = net.stats();
    assert_eq!(
        stats.corrupted + stats.garbled,
        pristine.len() as u64,
        "every delivery was mangled"
    );
    assert_eq!(
        delivered, stats.corrupted,
        "frames that no longer decode never reach the client"
    );

    // Phase 2: the network heals, the CI republishes (the resync answer),
    // and the client — despite everything it just rejected — converges.
    net.heal();
    for msg in &pristine {
        net.publish(msg.clone());
    }
    while let Ok(msg) = rx.try_recv() {
        client.on_message(&msg);
    }
    assert_eq!(client.height(), Some(blocks.len() as u64));
    assert_eq!(client.latest_header(), blocks.last().map(|b| &b.header));
}

#[test]
fn malformed_ecall_bytes_are_rejected_not_crashing() {
    // Garbage at the enclave boundary must produce a rejection, never a
    // panic or a signature.
    let (mut program, _) = program_and_input();
    use dcert::sgx::TrustedApp;
    let response = program.call(&[0xde, 0xad, 0xbe, 0xef]);
    let decoded = EcallResponse::decode_all(&response).unwrap();
    assert!(matches!(decoded, EcallResponse::Rejected(_)));
}
