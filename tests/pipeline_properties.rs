//! Property-based tests over the whole pipeline: random workload mixes,
//! block sizes, and chain lengths must always certify and validate, and
//! determinism must hold across independent replicas.

mod common;

use common::World;
use dcert::query::sp::IndexKind;
use dcert::workloads::{Workload, WorkloadGen};
use proptest::prelude::*;

fn arb_workload() -> impl Strategy<Value = Workload> {
    prop_oneof![
        Just(Workload::DoNothing),
        (16u32..256).prop_map(|size| Workload::CpuHeavy { size }),
        (1u32..8).prop_map(|batch| Workload::IoHeavy { batch }),
        (4u64..64).prop_map(|keyspace| Workload::KvStore { keyspace }),
        (4u64..64).prop_map(|customers| Workload::SmallBank { customers }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    /// Any random chain certifies block by block and the final certificate
    /// validates on a fresh superlight client.
    #[test]
    fn prop_random_chains_certify(
        workload in arb_workload(),
        seed in any::<u64>(),
        blocks in 1u64..5,
        block_size in 1usize..6,
    ) {
        let mut world = World::new();
        let mut gen = WorkloadGen::new(workload, 6, seed);
        let mut latest = None;
        for height in 1..=blocks {
            let block = world.miner.mine(gen.next_block(block_size), height).unwrap();
            let (cert, _) = world.ci.certify_block(&block).unwrap();
            latest = Some((block, cert));
        }
        let (block, cert) = latest.unwrap();
        prop_assert!(world.client.validate_chain(&block.header, &cert).is_ok());
        prop_assert_eq!(world.client.height(), Some(blocks));
    }

    /// Two independent replicas fed the same transactions produce
    /// byte-identical blocks, certificates digests, and index digests.
    #[test]
    fn prop_replicas_are_deterministic(
        seed in any::<u64>(),
        blocks in 1u64..4,
    ) {
        let (mut wa, mut sa) = World::with_setup(vec![(IndexKind::History, "h")]);
        let (mut wb, mut sb) = World::with_setup(vec![(IndexKind::History, "h")]);
        let mut gen = WorkloadGen::new(Workload::KvStore { keyspace: 16 }, 4, seed);
        for height in 1..=blocks {
            let txs = gen.next_block(3);
            let ba = wa.miner.mine(txs.clone(), height).unwrap();
            let bb = wb.miner.mine(txs, height).unwrap();
            prop_assert_eq!(ba.hash(), bb.hash());

            let ia = sa.stage_block(&ba).unwrap();
            let ib = sb.stage_block(&bb).unwrap();
            prop_assert_eq!(ia[0].new_digest, ib[0].new_digest);

            let (ca, _) = wa.ci.certify_augmented(&ba, &ia).unwrap();
            let (cb, _) = wb.ci.certify_augmented(&bb, &ib).unwrap();
            // Signatures differ (different enclave keys) but the certified
            // digests agree.
            prop_assert_eq!(ca[0].digest, cb[0].digest);
            sa.record_certs(&ca);
            sb.record_certs(&cb);
        }
    }

    /// Superlight storage is the same constant regardless of workload,
    /// block size, or chain length.
    #[test]
    fn prop_client_storage_constant(
        workload in arb_workload(),
        seed in any::<u64>(),
        blocks in 1u64..4,
    ) {
        let mut world = World::new();
        let mut gen = WorkloadGen::new(workload, 4, seed);
        let mut sizes = Vec::new();
        for height in 1..=blocks {
            let block = world.miner.mine(gen.next_block(2), height).unwrap();
            let (cert, _) = world.ci.certify_block(&block).unwrap();
            world.client.validate_chain(&block.header, &cert).unwrap();
            sizes.push(world.client.storage_bytes());
        }
        prop_assert!(sizes.windows(2).all(|w| w[0] == w[1]), "sizes: {sizes:?}");
    }
}
