//! CI checkpoint bootstrap: thanks to the recursive certificate design, a
//! new Certificate Issuer can join mid-chain from (header, certificate,
//! snapshot) and continue certification — no genesis replay.

mod common;

use common::World;
use dcert::chain::ChainState;
use dcert::core::{CertError, CertificateIssuer};
use dcert::sgx::CostModel;
use dcert::vm::StateKey;
use dcert::workloads::{Workload, WorkloadGen};

/// Runs a chain to height 5, returning the world plus the checkpoint
/// block/cert and the CI's state snapshot.
fn certified_prefix() -> (
    World,
    dcert::chain::Block,
    dcert::core::Certificate,
    ChainState,
) {
    let mut world = World::new();
    let mut gen = WorkloadGen::new(Workload::KvStore { keyspace: 32 }, 8, 5);
    let mut latest = None;
    for height in 1..=5u64 {
        let block = world.miner.mine(gen.next_block(4), height).unwrap();
        let (cert, _) = world.ci.certify_block(&block).unwrap();
        latest = Some((block, cert));
    }
    let (block, cert) = latest.unwrap();
    let snapshot = world.ci.node().state().clone();
    (world, block, cert, snapshot)
}

#[test]
fn new_ci_continues_from_certified_checkpoint() {
    let (mut world, checkpoint, cert, snapshot) = certified_prefix();

    let mut late_ci = CertificateIssuer::new_from_checkpoint(
        world.genesis.hash(),
        &checkpoint.header,
        &cert,
        snapshot,
        world.executor.clone(),
        world.engine.clone(),
        Vec::new(),
        &mut world.ias,
        CostModel::zero(),
    )
    .unwrap();
    assert_eq!(late_ci.node().height(), 5);

    // The late CI certifies blocks 6..8; the original client accepts the
    // cross-CI chain (one extra attestation, then cached).
    let mut gen = WorkloadGen::new(Workload::KvStore { keyspace: 32 }, 8, 99);
    let mut latest = None;
    for height in 6..=8u64 {
        let block = world.miner.mine(gen.next_block(4), height).unwrap();
        let (cert, _) = late_ci.certify_block(&block).unwrap();
        latest = Some((block, cert));
    }
    let (block, cert) = latest.unwrap();
    world.client.validate_chain(&block.header, &cert).unwrap();
    assert_eq!(world.client.height(), Some(8));
}

#[test]
fn tampered_snapshot_is_rejected() {
    let (mut world, checkpoint, cert, mut snapshot) = certified_prefix();
    // Flip one state entry: the snapshot no longer matches the certified
    // state root.
    snapshot.set(
        StateKey::new("kvstore", b"injected"),
        b"stolen funds".to_vec(),
    );
    let result = CertificateIssuer::new_from_checkpoint(
        world.genesis.hash(),
        &checkpoint.header,
        &cert,
        snapshot,
        world.executor.clone(),
        world.engine.clone(),
        Vec::new(),
        &mut world.ias,
        CostModel::zero(),
    );
    assert!(matches!(result, Err(CertError::StateRootMismatch)));
}

#[test]
fn forged_checkpoint_cert_is_rejected() {
    let (mut world, checkpoint, _cert, snapshot) = certified_prefix();
    // A certificate for a different header cannot anchor this checkpoint.
    let other_block = world.miner.mine(Vec::new(), 6).unwrap();
    let (other_cert, _) = world.ci.certify_block(&other_block).unwrap();
    let result = CertificateIssuer::new_from_checkpoint(
        world.genesis.hash(),
        &checkpoint.header,
        &other_cert,
        snapshot,
        world.executor.clone(),
        world.engine.clone(),
        Vec::new(),
        &mut world.ias,
        CostModel::zero(),
    );
    assert!(matches!(result, Err(CertError::DigestMismatch)));
}

#[test]
fn checkpoint_ci_rejects_non_extending_blocks() {
    let (mut world, checkpoint, cert, snapshot) = certified_prefix();
    let mut late_ci = CertificateIssuer::new_from_checkpoint(
        world.genesis.hash(),
        &checkpoint.header,
        &cert,
        snapshot,
        world.executor.clone(),
        world.engine.clone(),
        Vec::new(),
        &mut world.ias,
        CostModel::zero(),
    )
    .unwrap();
    // Replaying the checkpoint block itself (height 5) is refused.
    let stale = world.miner.tip().clone();
    assert_eq!(stale.height, 5);
    // Build a fake "block 5" body — it cannot extend the tip at height 5.
    let fake = dcert::chain::Block {
        header: stale,
        txs: Vec::new(),
    };
    assert!(late_ci.certify_block(&fake).is_err());
}
