//! Property-based evidence that the pipelined certification engine is
//! observationally equivalent to the sequential [`CertificateIssuer`]:
//! byte-identical certificates, in the same chain order, for plain,
//! batched, augmented, and hierarchical jobs — across worker counts and
//! queue depths — plus deterministic tests for orderly shutdown.
//!
//! Two fully deterministic worlds ([`World::deterministic`]) share every
//! seed (genesis, IAS, platform, enclave signing key), so the sequential
//! arm and the pipelined arm *must* produce the same bytes if the engine
//! is faithful. All assertions are on counts, bytes, and digests — never
//! wall-clock (the enclave runs `CostModel::zero`).
//!
//! One stream certifies with one chain scheme: plain/batch jobs share the
//! recursive block-certificate chain, while Algorithm 4 (augmented)
//! replaces it and Algorithm 5 (hierarchical) adds per-index chains that
//! must be gap-free (`idx_sig_gen` requires the previous index
//! certificate to cover exactly the previous header). Schemes therefore
//! mix across proptest cases, and plain/batch jobs mix within a stream —
//! the same constraint the sequential issuer has.

mod common;

use std::sync::{Arc, Mutex};
use std::thread;

use proptest::prelude::*;

use common::{World, TEST_PLATFORM_SEED, TEST_SIGNING_SEED};
use dcert::chain::{Block, BlockHeader};
use dcert::core::{
    CertError, CertJob, CertPipeline, Certificate, CertificateIssuer, Gossip, NetMessage,
    ParallelismConfig, PipelineConfig, PipelineReport, ShardFailurePlan, ShardFleetConfig,
    ShardedCertEngine, SharedStore, SuperlightClient,
};
use dcert::obs::Registry;
use dcert::primitives::codec::Encode;
use dcert::primitives::hash::Hash;
use dcert::primitives::keys::PublicKey;
use dcert::query::sp::IndexKind;
use dcert::query::ServiceProvider;
use dcert::sgx::CostModel;
use dcert::store::MemStore;
use dcert::workloads::Workload;

// --- the observable stream --------------------------------------------------

/// One broadcast certificate, as a superlight client would observe it.
/// Comparing these (the certificate down to its encoded bytes) across the
/// two arms is the equivalence oracle.
#[derive(Debug, Clone, PartialEq)]
enum Event {
    Block {
        header: BlockHeader,
        cert: Certificate,
    },
    Index {
        header: BlockHeader,
        name: String,
        digest: Hash,
        cert: Certificate,
    },
}

impl Event {
    fn cert(&self) -> &Certificate {
        match self {
            Event::Block { cert, .. } | Event::Index { cert, .. } => cert,
        }
    }
}

// --- certification plans ----------------------------------------------------

/// How a mined chain is carved into certification jobs.
#[derive(Debug, Clone)]
enum Plan {
    /// Plain blocks and coalesced batches, interleaved freely (both feed
    /// the same recursive block-certificate chain).
    PlainMix(Vec<BatchShape>),
    /// Algorithm 4 on every block, for the given indexes.
    Augmented(Vec<(IndexKind, &'static str)>, usize),
    /// Algorithm 5 on every block, for the given indexes.
    Hierarchical(Vec<(IndexKind, &'static str)>, usize),
}

#[derive(Debug, Clone, Copy)]
enum BatchShape {
    Single,
    Batch(usize),
}

impl Plan {
    fn indexes(&self) -> Vec<(IndexKind, &'static str)> {
        match self {
            Plan::PlainMix(_) => Vec::new(),
            Plan::Augmented(indexes, _) | Plan::Hierarchical(indexes, _) => indexes.clone(),
        }
    }

    fn block_count(&self) -> usize {
        match self {
            Plan::PlainMix(shapes) => shapes
                .iter()
                .map(|s| match s {
                    BatchShape::Single => 1,
                    BatchShape::Batch(len) => *len,
                })
                .sum(),
            Plan::Augmented(_, blocks) | Plan::Hierarchical(_, blocks) => *blocks,
        }
    }
}

// --- the two arms -----------------------------------------------------------

/// Drives the sequential issuer over the plan, returning the certificate
/// stream it would broadcast.
fn run_sequential(
    ci: &mut CertificateIssuer,
    sp: &mut ServiceProvider,
    plan: &Plan,
    blocks: &[Block],
) -> Vec<Event> {
    let mut events = Vec::new();
    match plan {
        Plan::PlainMix(shapes) => {
            let mut cursor = blocks.iter();
            for shape in shapes {
                match shape {
                    BatchShape::Single => {
                        let block = cursor.next().expect("plan covers the chain");
                        let (cert, _) = ci.certify_block(block).expect("block certifies");
                        events.push(Event::Block {
                            header: block.header.clone(),
                            cert,
                        });
                    }
                    BatchShape::Batch(len) => {
                        let chunk: Vec<Block> = cursor.by_ref().take(*len).cloned().collect();
                        let (cert, _) = ci.certify_batch(&chunk).expect("batch certifies");
                        events.push(Event::Block {
                            header: chunk.last().expect("non-empty batch").header.clone(),
                            cert,
                        });
                    }
                }
            }
        }
        Plan::Augmented(..) => {
            for block in blocks {
                let inputs = sp.stage_block(block).expect("sp stages");
                let (certs, _) = ci
                    .certify_augmented(block, &inputs)
                    .expect("augmented certifies");
                sp.record_certs(&certs);
                for (input, cert) in inputs.iter().zip(certs) {
                    events.push(Event::Index {
                        header: block.header.clone(),
                        name: input.index_type.clone(),
                        digest: input.new_digest,
                        cert,
                    });
                }
            }
        }
        Plan::Hierarchical(..) => {
            for block in blocks {
                let inputs = sp.stage_block(block).expect("sp stages");
                let (block_cert, index_certs, _) = ci
                    .certify_hierarchical(block, &inputs)
                    .expect("hierarchical certifies");
                sp.record_certs(&index_certs);
                events.push(Event::Block {
                    header: block.header.clone(),
                    cert: block_cert,
                });
                for (input, cert) in inputs.iter().zip(index_certs) {
                    events.push(Event::Index {
                        header: block.header.clone(),
                        name: input.index_type.clone(),
                        digest: input.new_digest,
                        cert,
                    });
                }
            }
        }
    }
    events
}

/// Materialises the plan into pipeline jobs. Indexed jobs carry the SP's
/// staged inputs; their `prev_cert` fields are left for the issuer stage
/// to splice (the certificates do not exist yet at submission time), so
/// the SP only advances its digest bookkeeping.
fn build_jobs(sp: &mut ServiceProvider, plan: &Plan, blocks: &[Block]) -> Vec<CertJob> {
    match plan {
        Plan::PlainMix(shapes) => {
            let mut cursor = blocks.iter();
            shapes
                .iter()
                .map(|shape| match shape {
                    BatchShape::Single => {
                        CertJob::Block(cursor.next().expect("plan covers the chain").clone())
                    }
                    BatchShape::Batch(len) => {
                        CertJob::Batch(cursor.by_ref().take(*len).cloned().collect())
                    }
                })
                .collect()
        }
        Plan::Augmented(..) => blocks
            .iter()
            .map(|block| {
                let indexes = sp.stage_block(block).expect("sp stages");
                sp.advance_staged();
                CertJob::Augmented {
                    block: block.clone(),
                    indexes,
                }
            })
            .collect(),
        Plan::Hierarchical(..) => blocks
            .iter()
            .map(|block| {
                let indexes = sp.stage_block(block).expect("sp stages");
                sp.advance_staged();
                CertJob::Hierarchical {
                    block: block.clone(),
                    indexes,
                }
            })
            .collect(),
    }
}

/// Runs the jobs through a pipeline and collects the broadcast stream.
fn run_pipeline(
    ci: CertificateIssuer,
    jobs: Vec<CertJob>,
    preparers: usize,
    queue_depth: usize,
    obs: Registry,
) -> (Vec<Event>, CertificateIssuer, PipelineReport) {
    let gossip = Arc::new(Gossip::new());
    let feed = gossip.join();
    let pipeline = CertPipeline::spawn(
        ci,
        PipelineConfig {
            preparers,
            queue_depth,
            obs,
            ..PipelineConfig::default()
        },
        gossip,
    );
    for job in jobs {
        pipeline.submit(job).expect("pipeline accepts jobs");
    }
    let (ci, report) = pipeline.shutdown();
    let mut events = Vec::new();
    while let Ok(message) = feed.try_recv() {
        match message {
            NetMessage::BlockCert { header, cert } => events.push(Event::Block { header, cert }),
            NetMessage::IndexCert {
                header,
                index,
                digest,
                cert,
            } => events.push(Event::Index {
                header,
                name: index,
                digest,
                cert,
            }),
            _ => {}
        }
    }
    (events, ci, report)
}

/// Feeds a certificate stream to a fresh superlight client and returns
/// it. Index certificates beyond the first per height are digest updates
/// the client has already adopted the header for, so they are validated
/// only through the first one (`validate_chain_with_index`).
fn replay(events: &[Event], ias_key: PublicKey, measurement: Hash) -> SuperlightClient {
    let mut client = SuperlightClient::new(ias_key, measurement);
    let mut adopted = None;
    for event in events {
        match event {
            Event::Block { header, cert } => {
                client.validate_chain(header, cert).expect("client adopts");
                adopted = Some(header.height);
            }
            Event::Index {
                header,
                name,
                digest,
                cert,
            } => {
                if adopted != Some(header.height) {
                    client
                        .validate_chain_with_index(header, name, *digest, cert)
                        .expect("client adopts via index");
                    adopted = Some(header.height);
                }
            }
        }
    }
    client
}

/// The full oracle: mine one chain, certify it sequentially and through
/// the pipeline in two seed-identical worlds, and require byte-identical
/// observable outcomes.
fn assert_equivalent(
    plan: Plan,
    workload: Workload,
    txs: usize,
    seed: u64,
    preparers: usize,
    queue_depth: usize,
) {
    let (mut seq_world, mut seq_sp) = World::deterministic(plan.indexes());
    let blocks = seq_world.mine_blocks(workload, plan.block_count(), txs, seed);
    let seq_events = run_sequential(&mut seq_world.ci, &mut seq_sp, &plan, &blocks);

    let (pipe_world, mut pipe_sp) = World::deterministic(plan.indexes());
    let jobs = build_jobs(&mut pipe_sp, &plan, &blocks);
    let job_count = jobs.len() as u64;
    let (pipe_events, pipe_ci, report) = run_pipeline(
        pipe_world.ci,
        jobs,
        preparers,
        queue_depth,
        Registry::disabled(),
    );

    assert_eq!(report.errors, Vec::new(), "no job may fail");
    assert_eq!(report.jobs, job_count);
    assert_eq!(
        report.block_certs + report.index_certs,
        pipe_events.len() as u64
    );

    // Same certificates, same bytes, same chain order.
    assert_eq!(seq_events, pipe_events);
    for (seq, pipe) in seq_events.iter().zip(&pipe_events) {
        assert_eq!(
            seq.cert().to_encoded_bytes(),
            pipe.cert().to_encoded_bytes(),
            "certificates must serialize identically"
        );
    }

    // The reassembled CI stands where the sequential one does.
    assert_eq!(seq_world.ci.node().tip(), pipe_ci.node().tip());
    assert_eq!(
        seq_world.ci.latest_block_cert(),
        pipe_ci.latest_block_cert()
    );

    // A superlight client fed from either source adopts the same tip.
    let ias_key = seq_world.ias.public_key();
    let measurement = dcert::core::expected_measurement();
    let seq_client = replay(&seq_events, ias_key, measurement);
    let pipe_client = replay(&pipe_events, ias_key, measurement);
    assert_eq!(seq_client.latest_header(), pipe_client.latest_header());
    if !seq_events.is_empty() {
        assert_eq!(
            seq_client.latest_header().map(|h| h.height),
            Some(seq_world.ci.node().tip().height)
        );
    }
}

// --- strategies -------------------------------------------------------------

fn plain_mix() -> impl Strategy<Value = Plan> {
    prop::collection::vec(
        prop_oneof![
            Just(BatchShape::Single),
            (1usize..=3).prop_map(BatchShape::Batch),
        ],
        1..=4,
    )
    .prop_map(Plan::PlainMix)
}

fn index_set() -> impl Strategy<Value = Vec<(IndexKind, &'static str)>> {
    prop_oneof![
        Just(vec![(IndexKind::History, "history")]),
        Just(vec![(IndexKind::Inverted, "keywords")]),
        Just(vec![
            (IndexKind::History, "history"),
            (IndexKind::Inverted, "keywords"),
        ]),
        Just(vec![
            (IndexKind::Aggregate, "volume"),
            (IndexKind::History, "history"),
            (IndexKind::Inverted, "keywords"),
        ]),
    ]
}

fn plan() -> impl Strategy<Value = Plan> {
    prop_oneof![
        plain_mix(),
        (index_set(), 1usize..=4).prop_map(|(idx, n)| Plan::Augmented(idx, n)),
        (index_set(), 1usize..=4).prop_map(|(idx, n)| Plan::Hierarchical(idx, n)),
    ]
}

fn workload() -> impl Strategy<Value = Workload> {
    prop_oneof![
        Just(Workload::DoNothing),
        Just(Workload::KvStore { keyspace: 32 }),
        Just(Workload::SmallBank { customers: 16 }),
        Just(Workload::IoHeavy { batch: 4 }),
    ]
}

proptest! {
    // 96 cases ≈ 32 per chain scheme; the suite's floor is 64.
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The pipeline is equivalent to the sequential issuer for every
    /// chain scheme, workload, worker count, queue depth, and batch
    /// shape.
    #[test]
    fn pipeline_matches_sequential(
        plan in plan(),
        workload in workload(),
        txs in 1usize..=3,
        seed in any::<u64>(),
        preparers in 1usize..=4,
        queue_depth in 1usize..=8,
    ) {
        assert_equivalent(plan, workload, txs, seed, preparers, queue_depth);
    }
}

// --- observability is inert -------------------------------------------------

/// Attaching a live metrics registry must not change what the pipeline
/// broadcasts: the instrumented arm and the disabled-registry arm produce
/// byte-identical certificate streams over seed-identical worlds, while
/// only the live registry records anything.
#[test]
fn attached_registry_is_behaviourally_inert() {
    let plan = Plan::Hierarchical(
        vec![
            (IndexKind::History, "history"),
            (IndexKind::Inverted, "keywords"),
        ],
        3,
    );
    let run = |registry: Registry| {
        let (mut world, mut sp) = World::deterministic(plan.indexes());
        let blocks = world.mine_blocks(
            Workload::SmallBank { customers: 16 },
            plan.block_count(),
            2,
            17,
        );
        let jobs = build_jobs(&mut sp, &plan, &blocks);
        run_pipeline(world.ci, jobs, 3, 2, registry)
    };

    let live = Registry::new();
    let (instrumented, _, live_report) = run(live.clone());
    let disabled = Registry::disabled();
    let (plain, _, plain_report) = run(disabled.clone());

    assert_eq!(
        instrumented, plain,
        "a live registry changed the broadcast stream"
    );
    for (a, b) in instrumented.iter().zip(&plain) {
        assert_eq!(
            a.cert().to_encoded_bytes(),
            b.cert().to_encoded_bytes(),
            "certificates must serialize identically regardless of metrics"
        );
    }
    assert_eq!(live_report.jobs, plain_report.jobs);

    // The live registry saw every broadcast; the disabled one stayed
    // empty and hands out detached handles.
    assert_eq!(
        live.snapshot().counter("pipeline.publish.attempts"),
        instrumented.len() as u64
    );
    assert!(!disabled.is_enabled());
    let empty = disabled.snapshot();
    assert!(empty.counters.is_empty() && empty.histograms.is_empty() && empty.gauges.is_empty());
}

// --- parallel Merkle construction is inert ----------------------------------

/// `merkle_threads > 1` must not change a single broadcast byte: the
/// pipelined arm running with the parallel Merkle builder produces the
/// same certificate stream as the sequential issuer (which builds its
/// trees single-threaded), over seed-identical worlds and one shared
/// mined chain. This is the ISSUE's byte-identity acceptance criterion
/// at the system level; `tests/parallel_merkle.rs` pins it structurally.
#[test]
fn merkle_threads_do_not_change_certificates() {
    let plan = Plan::Hierarchical(
        vec![
            (IndexKind::History, "history"),
            (IndexKind::Inverted, "keywords"),
        ],
        3,
    );
    let (mut seq_world, mut seq_sp) = World::deterministic(plan.indexes());
    let blocks = seq_world.mine_blocks(
        Workload::SmallBank { customers: 16 },
        plan.block_count(),
        2,
        23,
    );
    let seq_events = run_sequential(&mut seq_world.ci, &mut seq_sp, &plan, &blocks);

    let (pipe_world, mut pipe_sp) = World::deterministic(plan.indexes());
    let jobs = build_jobs(&mut pipe_sp, &plan, &blocks);
    let gossip = Arc::new(Gossip::new());
    let feed = gossip.join();
    let pipeline = CertPipeline::spawn(
        pipe_world.ci,
        PipelineConfig {
            preparers: 3,
            queue_depth: 2,
            parallelism: ParallelismConfig { merkle_threads: 4 },
            ..PipelineConfig::default()
        },
        gossip,
    );
    for job in jobs {
        pipeline.submit(job).expect("pipeline accepts jobs");
    }
    let (_, report) = pipeline.shutdown();
    // Restore the process-global knob for the rest of the binary.
    dcert::merkle::set_build_threads(1);

    assert_eq!(report.errors, Vec::new(), "no job may fail");
    let mut pipe_events = Vec::new();
    while let Ok(message) = feed.try_recv() {
        match message {
            NetMessage::BlockCert { header, cert } => {
                pipe_events.push(Event::Block { header, cert })
            }
            NetMessage::IndexCert {
                header,
                index,
                digest,
                cert,
            } => pipe_events.push(Event::Index {
                header,
                name: index,
                digest,
                cert,
            }),
            _ => {}
        }
    }
    assert_eq!(seq_events, pipe_events);
    for (seq, pipe) in seq_events.iter().zip(&pipe_events) {
        assert_eq!(
            seq.cert().to_encoded_bytes(),
            pipe.cert().to_encoded_bytes(),
            "certificates must serialize identically across merkle_threads"
        );
    }
}

// --- orderly shutdown -------------------------------------------------------

/// Shutdown drains every in-flight job, and the reassembled CI keeps
/// certifying sequentially from where the pipeline stopped.
#[test]
fn shutdown_drains_in_flight_and_ci_resumes() {
    let (mut world, _sp) = World::deterministic(Vec::new());
    let mut blocks = world.mine_blocks(Workload::KvStore { keyspace: 32 }, 13, 2, 11);
    // Block 13 is certified sequentially after the pipeline hands the
    // CI back.
    let next = blocks.pop().expect("mined");

    let gossip = Arc::new(Gossip::new());
    let feed = gossip.join();
    let pipeline = CertPipeline::spawn(
        world.ci,
        PipelineConfig {
            preparers: 4,
            queue_depth: 2,
            ..PipelineConfig::default()
        },
        gossip,
    );
    for block in &blocks {
        pipeline
            .submit(CertJob::Block(block.clone()))
            .expect("accepts");
    }
    // Shutdown races the last submissions through the stages: nothing may
    // be dropped.
    let (mut ci, report) = pipeline.shutdown();

    assert_eq!(report.jobs, 12);
    assert_eq!(report.block_certs, 12);
    assert_eq!(report.errors, Vec::new());
    assert_eq!(ci.node().tip(), &blocks.last().expect("mined").header);

    let mut heights = Vec::new();
    while let Ok(message) = feed.try_recv() {
        if let NetMessage::BlockCert { header, .. } = message {
            heights.push(header.height);
        }
    }
    assert_eq!(heights, (1..=12).collect::<Vec<u64>>());

    // The CI is whole: sequential certification continues the chain.
    let (cert, _) = ci.certify_block(&next).expect("sequential resume");
    let mut client =
        SuperlightClient::new(world.ias.public_key(), dcert::core::expected_measurement());
    client
        .validate_chain(&next.header, &cert)
        .expect("resumed cert validates");
}

/// Dropping the pipeline without `shutdown` still drains: certificates
/// reach the bus, only the reassembled CI and report are lost.
#[test]
fn drop_without_shutdown_still_drains() {
    let (mut world, _sp) = World::deterministic(Vec::new());
    let blocks = world.mine_blocks(Workload::DoNothing, 6, 1, 3);

    let gossip = Arc::new(Gossip::new());
    let feed = gossip.join();
    let pipeline = CertPipeline::spawn(world.ci, PipelineConfig::default(), gossip);
    for block in blocks {
        pipeline.submit(CertJob::Block(block)).expect("accepts");
    }
    drop(pipeline);

    let mut certified = 0;
    while let Ok(message) = feed.try_recv() {
        if matches!(message, NetMessage::BlockCert { .. }) {
            certified += 1;
        }
    }
    assert_eq!(certified, 6);
}

/// A job that breaks chain rules fails in place — it neither stalls the
/// pipeline nor corrupts the sequencer's view for later valid jobs.
#[test]
fn bad_job_fails_without_stalling() {
    let (mut world, _sp) = World::deterministic(Vec::new());
    let blocks = world.mine_blocks(Workload::KvStore { keyspace: 32 }, 3, 2, 5);

    let gossip = Arc::new(Gossip::new());
    let feed = gossip.join();
    let pipeline = CertPipeline::spawn(world.ci, PipelineConfig::default(), gossip);
    // Deliver out of order: 1, 3, 2. Block 3 cannot link and must fail;
    // block 2 still extends the (unmoved) tip and must succeed.
    pipeline
        .submit(CertJob::Block(blocks[0].clone()))
        .expect("accepts");
    pipeline
        .submit(CertJob::Block(blocks[2].clone()))
        .expect("accepts");
    pipeline
        .submit(CertJob::Block(blocks[1].clone()))
        .expect("accepts");
    let (ci, report) = pipeline.shutdown();

    assert_eq!(report.jobs, 3);
    assert_eq!(report.block_certs, 2);
    assert_eq!(report.errors.len(), 1);
    assert_eq!(report.errors[0].0, 1, "the out-of-order job is the failure");
    assert!(matches!(report.errors[0].1, CertError::Chain(_)));
    assert_eq!(ci.node().tip(), &blocks[1].header);

    let mut heights = Vec::new();
    while let Ok(message) = feed.try_recv() {
        if let NetMessage::BlockCert { header, .. } = message {
            heights.push(header.height);
        }
    }
    assert_eq!(heights, vec![1, 2]);
}

/// The Fig. 2 actor loop: a miner flooding blocks then broadcasting
/// `NetMessage::Shutdown` mid-stream. The CI actor stops accepting,
/// drains its pipeline, republishes the shutdown marker, and the client
/// still validates every certificate. No panics, no deadlocks, no lost
/// work.
#[test]
fn shutdown_message_mid_stream_is_orderly() {
    let (mut world, _sp) = World::deterministic(Vec::new());
    let blocks = world.mine_blocks(Workload::SmallBank { customers: 16 }, 8, 2, 9);
    let tip = blocks.last().expect("mined").header.clone();

    let gossip = Arc::new(Gossip::new());
    let ci_feed = gossip.join();
    let client_feed = gossip.join();

    let miner_bus = gossip.clone();
    let miner = thread::spawn(move || {
        for block in blocks {
            miner_bus.publish(NetMessage::Block(block));
        }
        miner_bus.publish(NetMessage::Shutdown);
    });

    let ci_bus = gossip.clone();
    let ci = world.ci;
    let ci_actor = thread::spawn(move || {
        let pipeline = CertPipeline::spawn(
            ci,
            PipelineConfig {
                preparers: 4,
                queue_depth: 2,
                ..PipelineConfig::default()
            },
            ci_bus.clone(),
        );
        for message in ci_feed {
            match message {
                NetMessage::Block(block) => {
                    pipeline.submit(CertJob::Block(block)).expect("accepts");
                }
                NetMessage::Shutdown => break,
                _ => {}
            }
        }
        let (ci, report) = pipeline.shutdown();
        ci_bus.publish(NetMessage::Shutdown);
        (ci, report)
    });

    let mut client = world.client;
    let client_actor = thread::spawn(move || {
        let mut shutdowns = 0;
        let mut certified = 0u64;
        for message in client_feed {
            match message {
                NetMessage::BlockCert { header, cert } => {
                    client
                        .validate_chain(&header, &cert)
                        .expect("client adopts");
                    certified += 1;
                }
                NetMessage::Shutdown => {
                    shutdowns += 1;
                    if shutdowns == 2 {
                        break;
                    }
                }
                _ => {}
            }
        }
        (client, certified)
    });

    miner.join().expect("miner exits");
    let (ci, report) = ci_actor.join().expect("CI actor exits");
    let (client, certified) = client_actor.join().expect("client exits");

    assert_eq!(report.jobs, 8);
    assert_eq!(report.block_certs, 8);
    assert_eq!(report.errors, Vec::new());
    assert_eq!(certified, 8);
    assert_eq!(ci.node().tip(), &tip);
    assert_eq!(client.latest_header(), Some(&tip));
}

// --- sharded fleet equivalence ----------------------------------------------
//
// The sharded certification engine partitions the chain into ranges,
// certifies them on independent shard enclaves, and folds the per-range
// certificates through an aggregator booted with the *sequential* CI's
// seeds. The oracle is the same as the pipeline's: byte-identical
// certificates at every height, for every shard count — including with
// shard enclaves killed and restarted mid-run, and across reorgs.

/// Builds a fleet sharing the deterministic world's seeds and chain
/// semantics, so its aggregator is seed-identical to the world's CI.
fn fleet_for(world: &World, config: ShardFleetConfig) -> ShardedCertEngine {
    ShardedCertEngine::new_deterministic(
        TEST_PLATFORM_SEED,
        TEST_SIGNING_SEED,
        &world.genesis,
        world.genesis_state.clone(),
        world.executor.clone(),
        world.engine.clone(),
        CostModel::zero(),
        config,
    )
    .expect("fleet configures")
}

/// Certifies every block sequentially — the byte-identity oracle for the
/// fleet.
fn sequential_certs(world: &mut World, blocks: &[Block]) -> Vec<Certificate> {
    blocks
        .iter()
        .map(|block| world.ci.certify_block(block).expect("certifies").0)
        .collect()
}

/// Asserts the two certificate streams are byte-identical at every height
/// and that a superlight client adopts the fleet's stream to the tip.
fn assert_fleet_matches(
    seq: &[Certificate],
    fleet: &[Certificate],
    blocks: &[Block],
    ias_key: PublicKey,
    label: &str,
) {
    assert_eq!(seq.len(), fleet.len(), "{label}: certificate count");
    for (at, (s, f)) in seq.iter().zip(fleet).enumerate() {
        assert_eq!(
            s.to_encoded_bytes(),
            f.to_encoded_bytes(),
            "{label}: certificate bytes diverge at height {}",
            at + 1
        );
    }
    let mut client = SuperlightClient::new(ias_key, dcert::core::expected_measurement());
    for (block, cert) in blocks.iter().zip(fleet) {
        client
            .validate_chain(&block.header, cert)
            .expect("client adopts fleet certificate");
    }
    assert_eq!(
        client.latest_header().map(|h| h.height),
        blocks.last().map(|b| b.header.height),
        "{label}: client tip"
    );
}

/// The tentpole acceptance criterion: for shard counts 1, 2, 4, and 8
/// over one mined chain, the fleet's aggregate output is byte-identical
/// to sequential certification at every height.
#[test]
fn shard_counts_1_2_4_8_match_sequential_bytes() {
    let (mut seq_world, _) = World::deterministic(Vec::new());
    let blocks = seq_world.mine_blocks(Workload::SmallBank { customers: 16 }, 12, 2, 31);
    let seq = sequential_certs(&mut seq_world, &blocks);
    let ias_key = seq_world.ias.public_key();

    for shards in [1usize, 2, 4, 8] {
        let (mut fleet_world, _) = World::deterministic(Vec::new());
        let mut fleet = fleet_for(&fleet_world, ShardFleetConfig::new(shards, 3));
        let certs = fleet
            .certify_chain(&blocks, &mut fleet_world.ias)
            .expect("fleet certifies");
        assert_fleet_matches(&seq, &certs, &blocks, ias_key, &format!("shards={shards}"));
    }
}

/// Extending an already-certified chain folds only the new ranges on the
/// same aggregator (its height watermark advances monotonically), and the
/// full stream still matches sequential bytes.
#[test]
fn shard_fleet_incremental_extension_matches_sequential() {
    let (mut seq_world, _) = World::deterministic(Vec::new());
    let blocks = seq_world.mine_blocks(Workload::KvStore { keyspace: 32 }, 10, 2, 47);
    let seq = sequential_certs(&mut seq_world, &blocks);
    let ias_key = seq_world.ias.public_key();

    let (mut fleet_world, _) = World::deterministic(Vec::new());
    let mut fleet = fleet_for(&fleet_world, ShardFleetConfig::new(3, 2));
    let first = fleet
        .certify_chain(&blocks[..6], &mut fleet_world.ias)
        .expect("prefix certifies");
    assert_eq!(first.len(), 6);
    let certs = fleet
        .certify_chain(&blocks, &mut fleet_world.ias)
        .expect("extension certifies");
    assert_fleet_matches(&seq, &certs, &blocks, ias_key, "extension");

    // Re-offering the identical chain is a no-op with identical output.
    let again = fleet
        .certify_chain(&blocks, &mut fleet_world.ias)
        .expect("idempotent");
    assert_eq!(certs.len(), again.len());
    for (a, b) in certs.iter().zip(&again) {
        assert_eq!(a.to_encoded_bytes(), b.to_encoded_bytes());
    }
}

/// Killing shard enclaves mid-run — one after durable progress, one
/// before any — must not change a single output byte: the restarted
/// shards resume from the store's range watermarks (or re-certify from
/// scratch) and the aggregate stream still equals sequential bytes.
#[test]
fn shard_kill_restart_is_byte_identical() {
    let (mut seq_world, _) = World::deterministic(Vec::new());
    let blocks = seq_world.mine_blocks(Workload::SmallBank { customers: 16 }, 12, 2, 59);
    let seq = sequential_certs(&mut seq_world, &blocks);
    let ias_key = seq_world.ias.public_key();

    let registry = Registry::new();
    let store: SharedStore = Arc::new(Mutex::new(Box::new(MemStore::new())));
    let (mut fleet_world, _) = World::deterministic(Vec::new());
    let mut config = ShardFleetConfig::new(4, 1);
    config.registry = registry.clone();
    config.store = Some(store);
    config.failures = ShardFailurePlan::none().kill(1, 1).kill(3, 0);
    let mut fleet = fleet_for(&fleet_world, config);
    let certs = fleet
        .certify_chain(&blocks, &mut fleet_world.ias)
        .expect("fleet certifies through kills");
    assert_fleet_matches(&seq, &certs, &blocks, ias_key, "kill/restart");

    let snap = registry.snapshot();
    assert_eq!(snap.counter("shard.kills"), 2, "both scheduled kills fired");
    assert_eq!(snap.counter("shard.restarts"), 2);
    // Shard 1 died after one durable chunk: its restart resumed from the
    // store instead of re-certifying from the range start.
    assert!(
        snap.counter("shard.resumed_ranges") >= 1,
        "durable watermark resume must be exercised"
    );
}

/// A compact reorg drill at this suite's level (the boundary geometry
/// cases live in `tests/shard_reorg.rs`): after certifying one chain, the
/// fleet is offered a fork — output must be byte-identical to a
/// sequential CI certifying the reorged chain from scratch.
#[test]
fn shard_fleet_reorg_matches_sequential() {
    // Two deterministic worlds mine the same 8-block prefix; the fork
    // world then diverges for the last 3 heights via a different tx seed.
    let (mut world_a, _) = World::deterministic(Vec::new());
    let original = world_a.mine_blocks(Workload::SmallBank { customers: 16 }, 8, 2, 71);

    let (mut world_b, _) = World::deterministic(Vec::new());
    let prefix = world_b.mine_blocks(Workload::SmallBank { customers: 16 }, 5, 2, 71);
    let suffix = world_b.mine_blocks(Workload::SmallBank { customers: 16 }, 3, 2, 72);
    let reorged: Vec<Block> = prefix.iter().chain(&suffix).cloned().collect();
    assert_eq!(
        original[4].header.hash(),
        reorged[4].header.hash(),
        "prefix must be shared"
    );
    assert_ne!(
        original[5].header.hash(),
        reorged[5].header.hash(),
        "fork must diverge at height 6"
    );

    // Sequential oracle: a fresh CI certifying the reorged chain.
    let (mut oracle_world, _) = World::deterministic(Vec::new());
    let seq = sequential_certs(&mut oracle_world, &reorged);
    let ias_key = oracle_world.ias.public_key();

    let registry = Registry::new();
    let (mut fleet_world, _) = World::deterministic(Vec::new());
    let mut config = ShardFleetConfig::new(3, 2);
    config.registry = registry.clone();
    let mut fleet = fleet_for(&fleet_world, config);
    fleet
        .certify_chain(&original, &mut fleet_world.ias)
        .expect("original chain certifies");
    let certs = fleet
        .certify_chain(&reorged, &mut fleet_world.ias)
        .expect("reorg re-certifies");
    assert_fleet_matches(&seq, &certs, &reorged, ias_key, "reorg");

    let snap = registry.snapshot();
    assert!(
        snap.counter("shard.recert_blocks") > 0,
        "reorg must be visible as re-certification work"
    );
    assert_eq!(
        snap.counter("shard.stale_range_refusals"),
        1,
        "the old aggregator must refuse the stale-range fold"
    );
    assert_eq!(snap.counter("shard.agg.fresh_boots"), 2);
}

proptest! {
    // Each case boots up to 9 enclaves; 16 cases keep the suite fast while
    // still sweeping shard counts, chunk sizes, chain lengths, and
    // workloads. (TSan CI runs with PROPTEST_CASES=8 semantics via the
    // suite's shared budget.)
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The fleet matches sequential bytes for arbitrary shard counts,
    /// chunk sizes, chain lengths, and workloads.
    #[test]
    fn shard_fleet_matches_sequential(
        shards in 1usize..=8,
        chunk in 1u64..=4,
        count in 1usize..=8,
        workload in workload(),
        txs in 1usize..=2,
        seed in any::<u64>(),
    ) {
        let (mut seq_world, _) = World::deterministic(Vec::new());
        let blocks = seq_world.mine_blocks(workload, count, txs, seed);
        let seq = sequential_certs(&mut seq_world, &blocks);
        let ias_key = seq_world.ias.public_key();

        let (mut fleet_world, _) = World::deterministic(Vec::new());
        let mut fleet = fleet_for(&fleet_world, ShardFleetConfig::new(shards, chunk));
        let certs = fleet
            .certify_chain(&blocks, &mut fleet_world.ias)
            .expect("fleet certifies");
        assert_fleet_matches(&seq, &certs, &blocks, ias_key,
            &format!("shards={shards} chunk={chunk}"));
    }
}

/// An idle pipeline shuts down cleanly and hands back an untouched CI.
#[test]
fn empty_pipeline_shutdown_is_clean() {
    let (world, _sp) = World::deterministic(Vec::new());
    let genesis_tip = world.ci.node().tip().clone();

    let pipeline =
        CertPipeline::spawn(world.ci, PipelineConfig::default(), Arc::new(Gossip::new()));
    let (ci, report) = pipeline.shutdown();

    assert_eq!(report.jobs, 0);
    assert_eq!(report.block_certs, 0);
    assert_eq!(report.index_certs, 0);
    assert_eq!(report.errors, Vec::new());
    assert_eq!(ci.node().tip(), &genesis_tip);
}
