//! Fork handling: the header store's longest-chain rule, the superlight
//! client's chain-selection check, and certified blocks across competing
//! branches.

mod common;

use common::World;
use dcert::chain::{ChainStore, FullNode};
use dcert::primitives::hash::Address;
use dcert::workloads::{Workload, WorkloadGen};

#[test]
fn store_follows_longest_certified_branch() {
    let mut world = World::new();
    let mut store = ChainStore::new(world.genesis.header.clone()).unwrap();

    // Branch A: mined by `world.miner` (2 blocks).
    let a1 = world.miner.mine(Vec::new(), 10).unwrap();
    let a2 = world.miner.mine(Vec::new(), 11).unwrap();

    // Branch B: an independent miner on the same genesis (3 blocks).
    let mut rival = FullNode::new(
        &world.genesis,
        world.genesis_state.clone(),
        world.executor.clone(),
        world.engine.clone(),
        Address::from_seed(0x5eed),
    );
    let b1 = rival.mine(Vec::new(), 20).unwrap();
    let b2 = rival.mine(Vec::new(), 21).unwrap();
    let b3 = rival.mine(Vec::new(), 22).unwrap();

    for header in [&a1, &a2, &b1, &b2, &b3] {
        store.insert(header.header.clone()).unwrap();
    }
    assert_eq!(store.best_hash(), b3.hash(), "longest branch wins");
    assert_eq!(store.best_header().height, 3);
    assert_eq!(store.canonical_chain().len(), 4);
}

#[test]
fn client_follows_whichever_certified_branch_is_longer() {
    // Two CIs certify two competing branches; the client ends on the
    // longer one and refuses to roll back.
    let (mut world, _) = World::with_setup(Vec::new());

    // CI certifies branch A (2 blocks).
    let a1 = world.miner.mine(Vec::new(), 10).unwrap();
    let (ca1, _) = world.ci.certify_block(&a1).unwrap();
    let a2 = world.miner.mine(Vec::new(), 11).unwrap();
    let (ca2, _) = world.ci.certify_block(&a2).unwrap();

    // A second CI certifies branch B (3 blocks) from the same genesis.
    let mut rival_miner = FullNode::new(
        &world.genesis,
        world.genesis_state.clone(),
        world.executor.clone(),
        world.engine.clone(),
        Address::from_seed(7777),
    );
    let mut rival_ci = dcert::core::CertificateIssuer::new(
        &world.genesis,
        world.genesis_state.clone(),
        world.executor.clone(),
        world.engine.clone(),
        Vec::new(),
        &mut world.ias,
        dcert::sgx::CostModel::zero(),
    )
    .unwrap();
    let b1 = rival_miner.mine(Vec::new(), 20).unwrap();
    rival_ci.certify_block(&b1).unwrap();
    let b2 = rival_miner.mine(Vec::new(), 21).unwrap();
    rival_ci.certify_block(&b2).unwrap();
    let b3 = rival_miner.mine(Vec::new(), 22).unwrap();
    let (cb3, _) = rival_ci.certify_block(&b3).unwrap();

    // Client sees branch A first...
    world.client.validate_chain(&a1.header, &ca1).unwrap();
    world.client.validate_chain(&a2.header, &ca2).unwrap();
    assert_eq!(world.client.height(), Some(2));
    // ...then the longer branch B: accepted (higher height). Note the new
    // CI means a fresh attestation check, exercised here too.
    world.client.validate_chain(&b3.header, &cb3).unwrap();
    assert_eq!(world.client.height(), Some(3));
    // Rolling back to branch A is refused.
    assert!(world.client.validate_chain(&a2.header, &ca2).is_err());
}

#[test]
fn two_cis_same_measurement_are_interchangeable() {
    // Switching certification services only requires one new attestation
    // (Section 4.3); both enclaves run the same measured program.
    let mut world = World::new();
    let mut gen = WorkloadGen::new(Workload::DoNothing, 2, 5);

    let block1 = world.miner.mine(gen.next_block(1), 1).unwrap();
    let (cert1, _) = world.ci.certify_block(&block1).unwrap();

    let mut second_ci = dcert::core::CertificateIssuer::new(
        &world.genesis,
        world.genesis_state.clone(),
        world.executor.clone(),
        world.engine.clone(),
        Vec::new(),
        &mut world.ias,
        dcert::sgx::CostModel::zero(),
    )
    .unwrap();
    second_ci.certify_block(&block1).unwrap();
    let block2 = world.miner.mine(gen.next_block(1), 2).unwrap();
    let (cert2_from_second, _) = second_ci.certify_block(&block2).unwrap();

    assert_eq!(world.ci.measurement(), second_ci.measurement());
    assert_ne!(world.ci.pk_enc(), second_ci.pk_enc());

    world.client.validate_chain(&block1.header, &cert1).unwrap();
    world
        .client
        .validate_chain(&block2.header, &cert2_from_second)
        .unwrap();
    assert_eq!(world.client.height(), Some(2));
}
