//! Multi-vendor trust quorums: a client requiring k-of-n distinct TEE
//! domains to agree (Section 6's "avoid relying solely on Intel").

mod common;

use common::World;
use dcert::chain::FullNode;
use dcert::core::{expected_measurement, CertError, CertificateIssuer, QuorumClient, TrustDomain};
use dcert::primitives::hash::Address;
use dcert::sgx::{AttestationService, CostModel};

/// Builds a second, independent trust domain (its own "vendor" attestation
/// service) running a CI on the same chain.
fn second_domain(world: &World) -> (AttestationService, CertificateIssuer) {
    let mut ias = AttestationService::with_seed([0xB7; 32]);
    let ci = CertificateIssuer::new(
        &world.genesis,
        world.genesis_state.clone(),
        world.executor.clone(),
        world.engine.clone(),
        Vec::new(),
        &mut ias,
        CostModel::trustzone(),
    )
    .unwrap();
    (ias, ci)
}

fn domains(world: &World, second_ias: &AttestationService) -> Vec<TrustDomain> {
    vec![
        TrustDomain {
            name: "intel-sgx".into(),
            ias_key: world.ias.public_key(),
            measurement: expected_measurement(),
        },
        TrustDomain {
            name: "arm-trustzone".into(),
            ias_key: second_ias.public_key(),
            measurement: expected_measurement(),
        },
    ]
}

#[test]
fn two_of_two_quorum_validates_agreeing_cis() {
    let mut world = World::new();
    let (second_ias, mut second_ci) = second_domain(&world);
    let mut quorum = QuorumClient::new(domains(&world, &second_ias), 2);

    for height in 1..=3u64 {
        let block = world.miner.mine(Vec::new(), height).unwrap();
        let (cert_a, _) = world.ci.certify_block(&block).unwrap();
        let (cert_b, _) = second_ci.certify_block(&block).unwrap();
        let accepted = quorum
            .validate_chain(
                &block.header,
                &[
                    ("intel-sgx".into(), cert_a),
                    ("arm-trustzone".into(), cert_b),
                ],
            )
            .unwrap();
        assert_eq!(accepted, 2);
    }
    assert_eq!(quorum.height(), Some(3));
}

#[test]
fn quorum_fails_with_only_one_vendor() {
    let mut world = World::new();
    let (second_ias, _) = second_domain(&world);
    let mut quorum = QuorumClient::new(domains(&world, &second_ias), 2);

    let block = world.miner.mine(Vec::new(), 1).unwrap();
    let (cert_a, _) = world.ci.certify_block(&block).unwrap();
    // Only the Intel certificate arrives: below threshold.
    assert!(quorum
        .validate_chain(&block.header, &[("intel-sgx".into(), cert_a)])
        .is_err());
    assert_eq!(quorum.height(), None);
}

#[test]
fn one_of_two_quorum_tolerates_a_missing_vendor() {
    let mut world = World::new();
    let (second_ias, _) = second_domain(&world);
    let mut quorum = QuorumClient::new(domains(&world, &second_ias), 1);

    let block = world.miner.mine(Vec::new(), 1).unwrap();
    let (cert_a, _) = world.ci.certify_block(&block).unwrap();
    let accepted = quorum
        .validate_chain(&block.header, &[("intel-sgx".into(), cert_a)])
        .unwrap();
    assert_eq!(accepted, 1);
    assert_eq!(quorum.height(), Some(1));
}

#[test]
fn compromised_vendor_cannot_forge_alone() {
    // A rogue "vendor" (its own IAS) certifies a forged branch; a 2-of-2
    // quorum must reject it even though the rogue domain validates.
    let world = World::new();
    let (second_ias, mut second_ci) = second_domain(&world);
    let mut quorum = QuorumClient::new(domains(&world, &second_ias), 2);

    // The rogue chain: a different miner produces an alternative block 1
    // that only the second CI certifies.
    let mut rogue_miner = FullNode::new(
        &world.genesis,
        world.genesis_state.clone(),
        world.executor.clone(),
        world.engine.clone(),
        Address::from_seed(0xBAD),
    );
    let forged = rogue_miner.mine(Vec::new(), 99).unwrap();
    let (rogue_cert, _) = second_ci.certify_block(&forged).unwrap();

    assert!(quorum
        .validate_chain(&forged.header, &[("arm-trustzone".into(), rogue_cert)])
        .is_err());
    assert_eq!(quorum.height(), None);
}

#[test]
fn mismatched_certificates_do_not_count_twice() {
    // Certificates for *different* headers cannot combine into a quorum.
    let mut world = World::new();
    let (second_ias, mut second_ci) = second_domain(&world);
    let mut quorum = QuorumClient::new(domains(&world, &second_ias), 2);

    let b1 = world.miner.mine(Vec::new(), 1).unwrap();
    let (cert_a, _) = world.ci.certify_block(&b1).unwrap();
    let (cert_b1, _) = second_ci.certify_block(&b1).unwrap();
    let b2 = world.miner.mine(Vec::new(), 2).unwrap();
    let _ = cert_b1;
    // Offer b2's header with b1's certificates: both domains reject.
    let result = quorum.validate_chain(&b2.header, &[("intel-sgx".into(), cert_a.clone())]);
    assert!(matches!(result, Err(CertError::DigestMismatch)));
}

#[test]
fn quorum_enforces_chain_selection() {
    let mut world = World::new();
    let (second_ias, mut second_ci) = second_domain(&world);
    let mut quorum = QuorumClient::new(domains(&world, &second_ias), 2);

    let b1 = world.miner.mine(Vec::new(), 1).unwrap();
    let (a1, _) = world.ci.certify_block(&b1).unwrap();
    let (c1, _) = second_ci.certify_block(&b1).unwrap();
    let b2 = world.miner.mine(Vec::new(), 2).unwrap();
    let (a2, _) = world.ci.certify_block(&b2).unwrap();
    let (c2, _) = second_ci.certify_block(&b2).unwrap();

    quorum
        .validate_chain(
            &b2.header,
            &[("intel-sgx".into(), a2), ("arm-trustzone".into(), c2)],
        )
        .unwrap();
    // Rolling back to block 1 is refused even with a full quorum.
    assert!(matches!(
        quorum.validate_chain(
            &b1.header,
            &[("intel-sgx".into(), a1), ("arm-trustzone".into(), c1)],
        ),
        Err(CertError::ChainSelection { .. })
    ));
}

#[test]
#[should_panic(expected = "threshold")]
fn zero_threshold_is_a_config_bug() {
    let world = World::new();
    let (second_ias, _) = second_domain(&world);
    let _ = QuorumClient::new(domains(&world, &second_ias), 0);
}
