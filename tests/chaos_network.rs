//! Chaos suite: the certification workflow over a faulty network.
//!
//! Every test drives the same scenario — the pipelined CI certifies a
//! deterministic chain and broadcasts over a seeded [`SimNet`] that
//! drops, duplicates, corrupts, delays, and partitions traffic — then
//! heals the network and checks the convergence invariant: **once the
//! faults stop, every client recovers the sequential issuer's exact
//! certificate stream** through the resync protocol, byte for byte.
//!
//! Failures are replayable: every assertion message carries the
//! simulator seed (`CHAOS_SEED=<n> cargo test --test chaos_network --
//! --include-ignored` re-runs the seeded matrix entry).

mod common;

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;

use dcert::chain::Block;
use dcert::core::{
    expected_measurement, CertArchive, CertJob, CertPipeline, FaultConfig, Gossip, NetMessage,
    NetStats, Partition, PipelineConfig, PipelineReport, PublishPolicy, QuorumClient, SimNet,
    SuperlightClient, Transport, TrustDomain,
};
use dcert::obs::{Registry, Snapshot};
use dcert::primitives::keys::PublicKey;
use dcert::store::{SegmentStore, Store, StoreConfig};
use dcert::workloads::Workload;

use common::{temp_dir, World};

/// Chain length for every chaos scenario.
const CHAIN: u64 = 20;

/// The shared ground truth: a deterministic chain plus the certificate
/// stream a *sequential* issuer produces for it. Both are pure functions
/// of the world seeds, so they are computed once; every chaos run must
/// converge to exactly this stream.
struct Fixture {
    blocks: Vec<Block>,
    expected: Vec<NetMessage>,
    ias_key: PublicKey,
}

fn fixture() -> &'static Fixture {
    static FX: OnceLock<Fixture> = OnceLock::new();
    FX.get_or_init(|| {
        let (mut world, _) = World::deterministic(Vec::new());
        let blocks = world.mine_blocks(Workload::SmallBank { customers: 32 }, CHAIN as usize, 4, 3);
        let expected = blocks
            .iter()
            .map(|block| {
                let (cert, _) = world.ci.certify_block(block).expect("sequential certify");
                NetMessage::BlockCert {
                    header: block.header.clone(),
                    cert,
                }
            })
            .collect();
        Fixture {
            blocks,
            expected,
            ias_key: world.ias.public_key(),
        }
    })
}

/// The default chaos scenario from the issue: 5% loss, reorder window 4,
/// one 3-block partition cutting the client off.
fn default_faults() -> FaultConfig {
    let mut faults = FaultConfig::default_chaos();
    faults.partitions.push(Partition {
        start: 6,
        end: 9,
        endpoints: vec![0],
    });
    faults
}

struct ChaosRun {
    stats: NetStats,
    /// The archive's retained stream for heights `1..=CHAIN`.
    retained: Vec<NetMessage>,
    superlight: SuperlightClient,
    quorum: QuorumClient,
    report: PipelineReport,
    /// Final metric snapshot of the registry attached to both the SimNet
    /// and the pipeline.
    obs: Snapshot,
    /// `SimNet::in_flight` at snapshot time, for the conservation law.
    in_flight: u64,
}

/// Certifies the fixture chain through the pipeline over a `SimNet`
/// seeded with `seed`, heals the network, and runs both client kinds
/// through the resync protocol until they converge (or panics with the
/// seed after a bounded number of rounds).
fn run_chaos(seed: u64, faults: FaultConfig) -> ChaosRun {
    run_chaos_with_store(seed, faults, None)
}

/// [`run_chaos`], optionally with the archive persisting to a
/// [`SegmentStore`] in `store_dir` (its `store.*` metrics land in the same
/// registry as the network's and pipeline's).
fn run_chaos_with_store(
    seed: u64,
    faults: FaultConfig,
    store_dir: Option<&std::path::Path>,
) -> ChaosRun {
    let fx = fixture();
    let (world, _) = World::deterministic(Vec::new());
    let net = Arc::new(SimNet::new(seed, faults));
    let client_rx = net.join();

    let obs = Registry::new();
    net.attach_obs(&obs);
    let archive = match store_dir {
        Some(dir) => {
            let store = SegmentStore::open(StoreConfig::new(dir).obs(obs.clone()))
                .expect("archive store opens");
            Arc::new(
                CertArchive::with_store(
                    net.clone() as Arc<dyn Transport>,
                    Box::new(store),
                    &fx.ias_key,
                    &expected_measurement(),
                )
                .expect("archive store recovers"),
            )
        }
        None => Arc::new(CertArchive::new(net.clone() as Arc<dyn Transport>)),
    };
    let config = PipelineConfig {
        preparers: 2,
        publish: PublishPolicy {
            jitter_seed: seed,
            ..PublishPolicy::require_acks(1)
        },
        obs: obs.clone(),
        ..PipelineConfig::default()
    };
    let pipeline = CertPipeline::spawn(world.ci, config, archive.clone() as Arc<dyn Transport>);
    for block in fx.blocks.clone() {
        pipeline.submit(CertJob::Block(block)).expect("accepts");
    }
    let (_ci, report) = pipeline.shutdown();

    // The faults have done their damage; the network heals and the
    // clients must recover everything that was lost in flight.
    net.heal();
    let mut superlight = SuperlightClient::new(fx.ias_key, expected_measurement());
    let mut quorum = QuorumClient::new(
        vec![TrustDomain {
            name: "sgx".into(),
            ias_key: fx.ias_key,
            measurement: expected_measurement(),
        }],
        1,
    );
    let mut rounds = 0u64;
    loop {
        while let Ok(msg) = client_rx.try_recv() {
            superlight.on_message(&msg);
            quorum.on_message(&msg);
        }
        if superlight.height() == Some(CHAIN) && quorum.height() == Some(CHAIN) {
            break;
        }
        rounds += 1;
        assert!(
            rounds <= CHAIN + 10,
            "CHAOS_SEED={seed}: no convergence after {rounds} resync rounds \
             (superlight {:?}, quorum {:?}, stats {:?})",
            superlight.height(),
            quorum.height(),
            net.stats(),
        );
        // A lagging client publishes a CertRequest; the CI answers it
        // from its archive. The test plays the CI side directly.
        let have = superlight
            .height()
            .unwrap_or(0)
            .min(quorum.height().unwrap_or(0));
        let (from, to) = match superlight.resync_request() {
            Some(NetMessage::CertRequest { from, to }) => (from.min(have + 1), to.max(CHAIN)),
            _ => (have + 1, CHAIN),
        };
        archive.republish(from, to);
    }
    assert!(
        archive.store_error().is_none(),
        "CHAOS_SEED={seed}: archive store poisoned: {:?}",
        archive.store_error()
    );
    ChaosRun {
        stats: net.stats(),
        retained: archive.messages_in(1, CHAIN),
        superlight,
        quorum,
        report,
        obs: obs.snapshot(),
        in_flight: net.in_flight(),
    }
}

#[test]
fn converges_at_default_fault_rates() {
    let seed = 0xD0;
    let run = run_chaos(seed, default_faults());
    let fx = fixture();
    assert_eq!(
        run.superlight.height(),
        Some(CHAIN),
        "CHAOS_SEED={seed}: superlight client stuck"
    );
    assert_eq!(
        run.quorum.height(),
        Some(CHAIN),
        "CHAOS_SEED={seed}: quorum client stuck"
    );
    assert_eq!(
        run.superlight.latest_header(),
        fx.blocks.last().map(|b| &b.header),
        "CHAOS_SEED={seed}: wrong tip adopted"
    );
    // The retained broadcast stream is byte-for-byte the sequential
    // issuer's: chaos in transit never changes what was certified.
    assert_eq!(
        run.retained, fx.expected,
        "CHAOS_SEED={seed}: published stream diverged from sequential issuance"
    );
    assert_eq!(run.report.errors.len(), 0, "CHAOS_SEED={seed}");
    assert!(
        run.stats.dropped + run.stats.partitioned + run.stats.delayed > 0,
        "CHAOS_SEED={seed}: scenario injected no faults — not a chaos test"
    );
    // Delivery accounting balances, and the attached registry agrees with
    // the simulator's own ledger counter for counter.
    assert!(
        run.stats.conserves_deliveries(run.in_flight),
        "CHAOS_SEED={seed}: NetStats leaked deliveries: {:?} (in flight {})",
        run.stats,
        run.in_flight
    );
    assert_eq!(run.obs.counter("net.delivered"), run.stats.delivered);
    assert_eq!(run.obs.counter("net.attempted"), run.stats.attempted);
    assert_eq!(run.obs.counter("net.dropped"), run.stats.dropped);
    assert_eq!(run.obs.counter("net.duplicated"), run.stats.duplicated);
    // Each block job broadcasts one message: initial attempts (attempts
    // minus retries) must equal the job count exactly.
    assert_eq!(
        run.obs.counter("pipeline.publish.attempts") - run.obs.counter("pipeline.publish.retries"),
        run.report.jobs,
        "CHAOS_SEED={seed}: publish attempts drifted from the job count"
    );
}

#[test]
fn fixed_seed_replays_bit_for_bit() {
    let a = run_chaos(1234, default_faults());
    let b = run_chaos(1234, default_faults());
    assert_eq!(a.stats, b.stats, "CHAOS_SEED=1234: fault schedule diverged");
    assert_eq!(
        a.retained, b.retained,
        "CHAOS_SEED=1234: retained stream diverged"
    );
    assert_eq!(a.superlight.latest_header(), b.superlight.latest_header());
    assert_eq!(
        a.report.dead_letters.len(),
        b.report.dead_letters.len(),
        "CHAOS_SEED=1234: dead-letter schedule diverged"
    );
    // Every replay-stable metric — including the seeded backoff schedule
    // in `pipeline.publish.backoff_nanos` — is bit-identical; only the
    // `_ns`/`_depth` wall-clock and scheduling metrics may differ.
    assert_eq!(
        a.obs.without_wall_clock(),
        b.obs.without_wall_clock(),
        "CHAOS_SEED=1234: deterministic metrics diverged between replays"
    );
    assert_eq!(
        a.obs.without_wall_clock().to_json(),
        b.obs.without_wall_clock().to_json(),
        "CHAOS_SEED=1234: snapshot encoding is not canonical"
    );
}

/// The full chaos scenario with the archive persisting every retained
/// certificate to a [`SegmentStore`]: convergence is unchanged, the
/// `store.*` counters are part of the replay-stable snapshot, and after a
/// crash that tears the segment tail, a successor archive recovers —
/// counting its replays and truncations in a fresh registry — and
/// re-serves the sequential issuer's exact stream.
#[test]
fn durable_archive_survives_chaos_and_a_torn_tail() {
    let seed = 0xD15C;
    let fx = fixture();
    let dir = temp_dir("chaos-archive");
    let run = run_chaos_with_store(seed, default_faults(), Some(&dir));
    assert_eq!(run.superlight.height(), Some(CHAIN), "CHAOS_SEED={seed}");
    assert_eq!(run.quorum.height(), Some(CHAIN), "CHAOS_SEED={seed}");
    assert_eq!(run.retained, fx.expected, "CHAOS_SEED={seed}");
    // One append per unique retained certificate: duplicated deliveries
    // and publish retries never reach the disk, and a fresh directory
    // records no recovery work.
    assert_eq!(run.obs.counter("store.appends"), CHAIN, "CHAOS_SEED={seed}");
    assert_eq!(run.obs.counter("store.recovery_replays"), 0);
    assert_eq!(run.obs.counter("store.tail_truncations"), 0);
    assert!(run.obs.counter("store.fsyncs") > 0, "CHAOS_SEED={seed}");

    // Same seed, fresh directory: the store counters must be as
    // replay-stable as every other deterministic metric.
    let dir_replay = temp_dir("chaos-archive-replay");
    let replay = run_chaos_with_store(seed, default_faults(), Some(&dir_replay));
    assert_eq!(
        run.obs.without_wall_clock(),
        replay.obs.without_wall_clock(),
        "CHAOS_SEED={seed}: store metrics diverged between replays"
    );
    std::fs::remove_dir_all(&dir_replay).ok();

    // Crash mid-append: the process died while writing the next frame,
    // leaving half a frame header past the durable watermark.
    let seg = dir.join("seg-00000000.dcs");
    let mut bytes = std::fs::read(&seg).expect("segment readable");
    bytes.extend_from_slice(&[0xEE; 7]);
    std::fs::write(&seg, bytes).expect("segment writable");

    let recovery_obs = Registry::new();
    let store = SegmentStore::open(StoreConfig::new(&dir).obs(recovery_obs.clone()))
        .expect("torn tail recovers");
    let snap = recovery_obs.snapshot();
    assert_eq!(snap.counter("store.recovery_replays"), CHAIN);
    assert_eq!(snap.counter("store.tail_truncations"), 1);
    assert_eq!(snap.counter("store.truncated_bytes"), 7);
    assert_eq!(store.durable_height(), CHAIN);

    let successor = CertArchive::with_store(
        Arc::new(Gossip::new()),
        Box::new(store),
        &fx.ias_key,
        &expected_measurement(),
    )
    .expect("recovered certificates re-verify");
    assert_eq!(
        successor.messages_in(1, CHAIN),
        fx.expected,
        "CHAOS_SEED={seed}: recovered archive diverged from sequential issuance"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn total_blackout_dead_letters_then_resyncs() {
    // Every delivery is lost while the pipeline runs: the publisher's
    // bounded retries exhaust and every certificate lands in the
    // dead-letter report instead of vanishing silently.
    let seed = 0xB1ACC;
    let faults = FaultConfig {
        drop_rate: 1.0,
        ..FaultConfig::lossless()
    };
    let run = run_chaos(seed, faults);
    assert_eq!(
        run.report.dead_letters.len(),
        CHAIN as usize,
        "CHAOS_SEED={seed}: every publish should have dead-lettered"
    );
    for dl in &run.report.dead_letters {
        assert!(dl.attempts > 1, "CHAOS_SEED={seed}: no retry recorded");
    }
    // The archive retained what the network refused to carry, so the
    // resync path still brought both clients to the tip.
    assert_eq!(run.superlight.height(), Some(CHAIN), "CHAOS_SEED={seed}");
    assert_eq!(run.quorum.height(), Some(CHAIN), "CHAOS_SEED={seed}");
    assert_eq!(run.retained, fixture().expected, "CHAOS_SEED={seed}");

    // The fixed backoff bug made every retry wait the same base delay.
    // Under the exponential policy, the recorded schedule must grow: with
    // 5 retries per blackout publish the largest backoff (≥ 16 ms ×
    // jitter ≥ 0.5) dwarfs the smallest (< 1 ms × jitter < 1).
    let backoffs = run
        .obs
        .histograms
        .get("pipeline.publish.backoff_nanos")
        .expect("CHAOS_SEED: retry backoffs are recorded");
    let expected_retries = CHAIN * 5;
    assert_eq!(
        backoffs.count, expected_retries,
        "CHAOS_SEED={seed}: one backoff per retry"
    );
    assert_eq!(
        run.obs.counter("pipeline.publish.retries"),
        expected_retries
    );
    assert_eq!(run.obs.counter("pipeline.publish.dead_letters"), CHAIN);
    let (min, max) = (
        backoffs.min.expect("non-empty"),
        backoffs.max.expect("non-empty"),
    );
    assert!(
        max >= 4 * min,
        "CHAOS_SEED={seed}: backoff did not grow under sustained failure \
         (min {min} ns, max {max} ns)"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The convergence invariant over arbitrary fault schedules: any
    /// (seed, loss rate, duplication, corruption, reorder window,
    /// partition window) — once healed, every client reaches the
    /// sequential issuer's exact stream. Proptest prints the failing
    /// inputs; `seed` alone replays the schedule.
    #[test]
    fn any_fault_schedule_converges_once_healed(
        seed in any::<u64>(),
        drop_rate in 0.0f64..0.35,
        duplicate_rate in 0.0f64..0.15,
        corrupt_rate in 0.0f64..0.15,
        reorder_window in 0u64..6,
        part_start in 0u64..20,
        part_len in 0u64..5,
    ) {
        let faults = FaultConfig {
            drop_rate,
            duplicate_rate,
            corrupt_rate,
            reorder_window,
            partitions: vec![Partition {
                start: part_start,
                end: part_start + part_len,
                endpoints: vec![0],
            }],
        };
        let run = run_chaos(seed, faults);
        prop_assert_eq!(run.superlight.height(), Some(CHAIN));
        prop_assert_eq!(run.quorum.height(), Some(CHAIN));
        prop_assert_eq!(&run.retained, &fixture().expected);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The delivery ledger balances at **every instant**, not just at
    /// rest: after each publish, clock advance, subscriber departure,
    /// and the final heal,
    /// `delivered + undeliverable + in_flight ==
    ///  attempted + duplicated − partitioned − dropped − garbled`.
    /// This is the invariant the duplicate-delivery accounting bug
    /// violated — duplicates were delivered but never entered the ledger.
    #[test]
    fn netstats_conserve_deliveries_at_every_instant(
        seed in any::<u64>(),
        drop_rate in 0.0f64..0.5,
        duplicate_rate in 0.0f64..0.3,
        corrupt_rate in 0.0f64..0.3,
        reorder_window in 0u64..8,
        part_start in 0u64..12,
        part_len in 0u64..6,
    ) {
        let faults = FaultConfig {
            drop_rate,
            duplicate_rate,
            corrupt_rate,
            reorder_window,
            partitions: vec![Partition {
                start: part_start,
                end: part_start + part_len,
                endpoints: vec![0],
            }],
        };
        let net = SimNet::new(seed, faults);
        let rx = net.join();
        let mut quitter = Some(net.join());
        let check = |step: &str| {
            let (stats, in_flight) = (net.stats(), net.in_flight());
            prop_assert!(
                stats.conserves_deliveries(in_flight),
                "seed {seed} after {step}: ledger out of balance: {stats:?} \
                 (in flight {in_flight})"
            );
            Ok(())
        };
        for height in 1..=16u64 {
            net.publish(NetMessage::CertRequest { from: height, to: height });
            check("publish")?;
            if height % 3 == 0 {
                net.advance(2);
                check("advance")?;
            }
            if height == 8 {
                // One subscriber walks away mid-run: later deliveries to
                // its endpoint must land in `undeliverable`, not vanish.
                drop(quitter.take());
            }
        }
        net.heal();
        check("heal")?;
        prop_assert_eq!(net.in_flight(), 0, "heal flushes everything pending");
        while rx.try_recv().is_ok() {}
    }
}

/// The CI seed-matrix entry: `CHAOS_SEED=<n> cargo test --test
/// chaos_network -- --include-ignored`. Runs the full scenario twice at
/// elevated rates and checks both convergence and bit-for-bit replay.
#[test]
#[ignore = "seed-matrix entry; run with CHAOS_SEED=<n> -- --include-ignored"]
fn seed_matrix_entry() {
    let seed = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let mut faults = default_faults();
    faults.corrupt_rate = 0.05;
    faults.duplicate_rate = 0.05;
    let a = run_chaos(seed, faults.clone());
    let b = run_chaos(seed, faults);
    assert_eq!(a.stats, b.stats, "CHAOS_SEED={seed}: replay diverged");
    assert_eq!(
        a.retained,
        fixture().expected,
        "CHAOS_SEED={seed}: stream mismatch"
    );
    assert_eq!(a.superlight.height(), Some(CHAIN), "CHAOS_SEED={seed}");
    assert_eq!(b.quorum.height(), Some(CHAIN), "CHAOS_SEED={seed}");
}

// ---------------------------------------------------------------------
// Serving under chaos: the dcert-serve request/response wire rides the
// same faulty SimNet, the front is killed and restarted mid-burst, and
// once the network heals every client still converges on exactly the
// bytes a direct, uncached SP call produces.
// ---------------------------------------------------------------------

use std::collections::HashMap;

use dcert::primitives::codec::{Decode, Encode};
use dcert::query::history::verify_history;
use dcert::query::sp::IndexKind;
use dcert::serve::{
    decode_history_payload, encode_history_payload, QuerySpec, ServeConfig, ServeFront,
    ServeRequest, ServeWire, Submitted,
};
use dcert::vm::StateKey;

/// Queries each serve-chaos client set issues.
const SERVE_QUERIES: usize = 24;

/// Chain height behind the serve front.
const SERVE_CHAIN: u64 = 3;

fn serve_spec(q: usize) -> QuerySpec {
    QuerySpec::History {
        index: "history".to_owned(),
        key: StateKey::new("kvstore", format!("key-{}", q % 8).as_bytes()),
        t1: 1,
        t2: SERVE_CHAIN,
    }
}

struct ServeChaosRun {
    /// Per-query `(certified_height, payload)` as finally received.
    answers: Vec<(u64, Vec<u8>)>,
    /// Direct uncached SP bytes per query — the convergence target.
    expected: Vec<Vec<u8>>,
    stats: NetStats,
    /// Waiters orphaned by the mid-burst kill (must be > 0 for the
    /// scenario to mean anything).
    orphaned: usize,
    /// Serve-wire payloads garbled in transit and ignored by the server.
    garbled: u64,
    /// Responses whose proof failed client-side verification (corrupted
    /// in transit) and were rejected rather than trusted.
    rejected: u64,
}

/// Drives requests for [`SERVE_QUERIES`] queries over a faulty `SimNet`:
/// clients republish unanswered queries every round, the front is killed
/// and rebuilt mid-burst in round 1 (orphaning its parked waiters), the
/// network heals after round 4, and the run ends when every query has a
/// response.
fn run_serve_chaos(seed: u64) -> ServeChaosRun {
    let (mut world, sp) = World::deterministic(vec![(IndexKind::History, "history")]);
    let blocks = world.mine_blocks(
        Workload::KvStore { keyspace: 8 },
        SERVE_CHAIN as usize,
        4,
        9,
    );
    let mut front = ServeFront::new(sp, ServeConfig::default());
    for block in &blocks {
        let inputs = front.stage_block(block).expect("block stages");
        let (certs, _) = world
            .ci
            .certify_augmented(block, &inputs)
            .expect("block certifies");
        front.record_certs(&certs);
    }
    let expected: Vec<Vec<u8>> = (0..SERVE_QUERIES)
        .map(|q| {
            let QuerySpec::History { key, t1, t2, .. } = serve_spec(q) else {
                unreachable!("serve_spec builds history queries");
            };
            let (results, proof) = front
                .sp()
                .serve_history("history", &key, t1, t2)
                .expect("index registered");
            encode_history_payload(&results, &proof)
        })
        .collect();

    let mut faults = FaultConfig::default_chaos();
    faults.drop_rate = 0.15; // lossy enough that bursts straddle rounds
    faults.duplicate_rate = 0.05;
    faults.corrupt_rate = 0.02;
    let net = Arc::new(SimNet::new(seed, faults));
    let server_rx = net.join();
    let client_rx = net.join();

    let digest = front
        .sp()
        .certified_digest("history")
        .expect("index certified");
    let mut answers: Vec<Option<(u64, Vec<u8>)>> = vec![None; SERVE_QUERIES];
    let mut id_to_query: HashMap<u64, usize> = HashMap::new();
    let mut orphaned = 0usize;
    let mut garbled = 0u64;
    let mut rejected = 0u64;
    let mut round = 0u64;
    while answers.iter().any(Option::is_none) {
        round += 1;
        assert!(
            round <= 60,
            "CHAOS_SEED={seed}: serve clients did not converge after heal \
             ({} unanswered, stats {:?})",
            answers.iter().filter(|a| a.is_none()).count(),
            net.stats(),
        );
        // Clients: (re)issue every unanswered query under a fresh id.
        for (qi, slot) in answers.iter().enumerate() {
            if slot.is_none() {
                let id = round * 1_000 + qi as u64;
                id_to_query.insert(id, qi);
                let request = ServeRequest {
                    client: qi as u64,
                    id,
                    query: serve_spec(qi),
                };
                net.publish(NetMessage::Serve {
                    payload: ServeWire::Request(request).to_encoded_bytes(),
                });
            }
        }
        net.advance(6);

        // Server: admit whatever survived the wire.
        while let Ok(message) = server_rx.try_recv() {
            let NetMessage::Serve { payload } = message else {
                continue;
            };
            match ServeWire::decode_all(&payload) {
                Ok(ServeWire::Request(request)) => match front.submit(round, request) {
                    Ok(Submitted::CacheHit(response)) => {
                        net.publish(NetMessage::Serve {
                            payload: ServeWire::Response(response).to_encoded_bytes(),
                        });
                    }
                    Ok(Submitted::Enqueued { .. }) => {}
                    Err(refusal) => {
                        net.publish(NetMessage::Serve {
                            payload: ServeWire::Refusal(refusal).to_encoded_bytes(),
                        });
                    }
                },
                Ok(_) => {}             // the server's own replies, echoed by the bus
                Err(_) => garbled += 1, // corrupted in transit: ignored, the client retries
            }
        }

        // Round 1: the serve process dies mid-burst — after admitting the
        // first burst but before pumping it, so every parked waiter is
        // orphaned. The restart reuses the SP but starts with a cold
        // cache and an empty queue; clients must re-request.
        if round == 1 {
            orphaned = front.parked_waiters();
            front = ServeFront::new(front.into_sp(), ServeConfig::default());
        }

        for (_, wire) in front.pump(round, usize::MAX) {
            net.publish(NetMessage::Serve {
                payload: wire.to_encoded_bytes(),
            });
        }
        net.advance(6);
        if round == 4 {
            net.heal();
        }

        // Clients: collect whatever replies made it through.
        while let Ok(message) = client_rx.try_recv() {
            let NetMessage::Serve { payload } = message else {
                continue;
            };
            if let Ok(ServeWire::Response(response)) = ServeWire::decode_all(&payload) {
                let Some(&qi) = id_to_query.get(&response.id) else {
                    continue;
                };
                if answers[qi].is_some() || response.certified_height != SERVE_CHAIN {
                    continue;
                }
                // Clients never trust serve bytes: the proof must verify
                // against the certified digest, or the response (possibly
                // corrupted in transit) is discarded and the query retried.
                let QuerySpec::History { key, t1, t2, .. } = serve_spec(qi) else {
                    unreachable!("serve_spec builds history queries");
                };
                match decode_history_payload(&response.payload) {
                    Ok((results, proof))
                        if verify_history(&digest, &key, t1, t2, &results, &proof).is_ok() =>
                    {
                        answers[qi] = Some((response.certified_height, response.payload));
                    }
                    _ => rejected += 1,
                }
            }
        }
    }
    ServeChaosRun {
        answers: answers.into_iter().map(|a| a.expect("loop exit")).collect(),
        expected,
        stats: net.stats(),
        orphaned,
        garbled,
        rejected,
    }
}

/// Kill/restart mid-burst over a faulty wire: every client converges
/// after `heal()`, and every answer is byte-identical to a direct
/// uncached SP call at the certified height.
#[test]
fn serve_front_killed_mid_burst_still_converges() {
    let seed = 0x5EAF;
    let run = run_serve_chaos(seed);
    assert!(
        run.orphaned > 0,
        "CHAOS_SEED={seed}: the kill orphaned no waiters — not a mid-burst restart"
    );
    assert!(
        run.stats.dropped + run.stats.delayed + run.stats.duplicated > 0,
        "CHAOS_SEED={seed}: scenario injected no faults"
    );
    for (qi, (height, payload)) in run.answers.iter().enumerate() {
        assert_eq!(
            *height, SERVE_CHAIN,
            "CHAOS_SEED={seed}: query {qi} answered at the wrong height"
        );
        assert_eq!(
            payload, &run.expected[qi],
            "CHAOS_SEED={seed}: query {qi} bytes diverged from direct serving"
        );
    }
}

/// The serve-chaos scenario replays bit-for-bit on a fixed seed —
/// including the fault schedule and every answered byte.
#[test]
fn serve_chaos_replays_bit_for_bit() {
    let a = run_serve_chaos(424242);
    let b = run_serve_chaos(424242);
    assert_eq!(
        a.stats, b.stats,
        "CHAOS_SEED=424242: fault schedule diverged"
    );
    assert_eq!(a.answers, b.answers, "CHAOS_SEED=424242: answers diverged");
    assert_eq!(a.orphaned, b.orphaned, "CHAOS_SEED=424242");
    assert_eq!(a.garbled, b.garbled, "CHAOS_SEED=424242");
    assert_eq!(a.rejected, b.rejected, "CHAOS_SEED=424242");
}

// ---------------------------------------------------------------------
// The sharded certification fleet under chaos: shard enclaves are killed
// and restarted mid-run by a deterministic failure plan, the aggregate
// certificate stream rides the same faulty SimNet, and after `heal()`
// every client converges on exactly the bytes the sequential issuer
// produces — fleet parallelism, enclave crashes, and network faults all
// invisible in the output.
// ---------------------------------------------------------------------

use std::sync::Mutex;

use common::{TEST_PLATFORM_SEED, TEST_SIGNING_SEED};
use dcert::core::{ShardFailurePlan, ShardFleetConfig, ShardedCertEngine, SharedStore};
use dcert::sgx::CostModel;
use dcert::store::MemStore;

/// Shards in the chaos fleet: the 20-block fixture chain splits into
/// four 5-block ranges.
const FLEET_SHARDS: usize = 4;

/// Blocks per range ECall (and per durable checkpoint).
const FLEET_CHUNK: u64 = 3;

struct ShardFleetChaosRun {
    stats: NetStats,
    /// The archive's retained stream for heights `1..=CHAIN`.
    retained: Vec<NetMessage>,
    superlight: SuperlightClient,
    quorum: QuorumClient,
    /// Final snapshot of the registry shared by the fleet (`shard.*`)
    /// and the simulator (`net.*`).
    obs: Snapshot,
    in_flight: u64,
}

/// Certifies the fixture chain through a sharded fleet whose failure
/// plan kills shard 1 after one durable chunk (store-resume path) and
/// shard 3 before any (fresh-boot path), publishes the aggregate stream
/// over a `SimNet` seeded with `seed`, heals, and resyncs both client
/// kinds to the tip.
fn run_shard_fleet_chaos(seed: u64, faults: FaultConfig) -> ShardFleetChaosRun {
    let fx = fixture();
    let (mut world, _) = World::deterministic(Vec::new());
    let obs = Registry::new();

    let store: SharedStore = Arc::new(Mutex::new(Box::new(MemStore::new())));
    let mut config = ShardFleetConfig::new(FLEET_SHARDS, FLEET_CHUNK);
    config.registry = obs.clone();
    config.store = Some(store);
    config.failures = ShardFailurePlan::none().kill(1, 1).kill(3, 0);
    let mut fleet = ShardedCertEngine::new_deterministic(
        TEST_PLATFORM_SEED,
        TEST_SIGNING_SEED,
        &world.genesis,
        world.genesis_state.clone(),
        world.executor.clone(),
        world.engine.clone(),
        CostModel::zero(),
        config,
    )
    .expect("fleet configures");
    let certs = fleet
        .certify_chain(&fx.blocks, &mut world.ias)
        .expect("CHAOS_SEED: fleet certifies through the kill plan");

    // The fleet's aggregate stream goes out over the faulty wire through
    // the archive, exactly as the pipeline's publisher would send it.
    let net = Arc::new(SimNet::new(seed, faults));
    let client_rx = net.join();
    net.attach_obs(&obs);
    let archive = Arc::new(CertArchive::new(net.clone() as Arc<dyn Transport>));
    for (block, cert) in fx.blocks.iter().zip(certs) {
        archive.publish(NetMessage::BlockCert {
            header: block.header.clone(),
            cert,
        });
    }

    net.heal();
    let mut superlight = SuperlightClient::new(fx.ias_key, expected_measurement());
    let mut quorum = QuorumClient::new(
        vec![TrustDomain {
            name: "sgx".into(),
            ias_key: fx.ias_key,
            measurement: expected_measurement(),
        }],
        1,
    );
    let mut rounds = 0u64;
    loop {
        while let Ok(msg) = client_rx.try_recv() {
            superlight.on_message(&msg);
            quorum.on_message(&msg);
        }
        if superlight.height() == Some(CHAIN) && quorum.height() == Some(CHAIN) {
            break;
        }
        rounds += 1;
        assert!(
            rounds <= CHAIN + 10,
            "CHAOS_SEED={seed}: no convergence after {rounds} resync rounds \
             (superlight {:?}, quorum {:?}, stats {:?})",
            superlight.height(),
            quorum.height(),
            net.stats(),
        );
        let have = superlight
            .height()
            .unwrap_or(0)
            .min(quorum.height().unwrap_or(0));
        let (from, to) = match superlight.resync_request() {
            Some(NetMessage::CertRequest { from, to }) => (from.min(have + 1), to.max(CHAIN)),
            _ => (have + 1, CHAIN),
        };
        archive.republish(from, to);
    }
    ShardFleetChaosRun {
        stats: net.stats(),
        retained: archive.messages_in(1, CHAIN),
        superlight,
        quorum,
        obs: obs.snapshot(),
        in_flight: net.in_flight(),
    }
}

/// Kill/restart mid-certification over a faulty wire: the fleet survives
/// both crash-recovery paths (resume-from-store and fresh boot), and once
/// the network heals every client holds the sequential issuer's exact
/// certificate stream.
#[test]
fn shard_fleet_converges_under_chaos() {
    let seed = 0x5AAD;
    let run = run_shard_fleet_chaos(seed, default_faults());
    let fx = fixture();
    assert_eq!(run.superlight.height(), Some(CHAIN), "CHAOS_SEED={seed}");
    assert_eq!(run.quorum.height(), Some(CHAIN), "CHAOS_SEED={seed}");
    assert_eq!(
        run.superlight.latest_header(),
        fx.blocks.last().map(|b| &b.header),
        "CHAOS_SEED={seed}: wrong tip adopted"
    );
    // The retained aggregate stream is byte-for-byte the sequential
    // issuer's: neither sharding, nor the kills, nor chaos in transit
    // changes what was certified.
    assert_eq!(
        run.retained, fx.expected,
        "CHAOS_SEED={seed}: fleet stream diverged from sequential issuance"
    );
    // Both crash-recovery paths actually ran.
    assert_eq!(run.obs.counter("shard.kills"), 2, "CHAOS_SEED={seed}");
    assert_eq!(run.obs.counter("shard.restarts"), 2, "CHAOS_SEED={seed}");
    assert_eq!(
        run.obs.counter("shard.resumed_ranges"),
        1,
        "CHAOS_SEED={seed}: shard 1 should resume from its durable chunk"
    );
    assert_eq!(
        run.obs.counter("shard.blocks_certified"),
        CHAIN,
        "CHAOS_SEED={seed}: durable checkpoints must prevent re-certification"
    );
    assert!(
        run.stats.dropped + run.stats.partitioned + run.stats.delayed > 0,
        "CHAOS_SEED={seed}: scenario injected no faults — not a chaos test"
    );
    assert!(
        run.stats.conserves_deliveries(run.in_flight),
        "CHAOS_SEED={seed}: NetStats leaked deliveries: {:?} (in flight {})",
        run.stats,
        run.in_flight
    );
    assert_eq!(run.obs.counter("net.delivered"), run.stats.delivered);
    assert_eq!(run.obs.counter("net.dropped"), run.stats.dropped);
}

/// The fleet chaos scenario replays bit-for-bit on a fixed seed: the
/// fault schedule, the retained bytes, and every replay-stable metric —
/// including the whole `shard.*` family — are identical across runs.
#[test]
fn shard_fleet_replays_bit_for_bit() {
    let a = run_shard_fleet_chaos(4242, default_faults());
    let b = run_shard_fleet_chaos(4242, default_faults());
    assert_eq!(a.stats, b.stats, "CHAOS_SEED=4242: fault schedule diverged");
    assert_eq!(
        a.retained, b.retained,
        "CHAOS_SEED=4242: retained stream diverged"
    );
    assert_eq!(a.superlight.latest_header(), b.superlight.latest_header());
    // `shard.*` counters (kills, restarts, resumes, per-shard block
    // counts, aggregator folds) are part of the replay-stable snapshot;
    // only `_ns` wall-clock timers may differ.
    assert_eq!(
        a.obs.without_wall_clock(),
        b.obs.without_wall_clock(),
        "CHAOS_SEED=4242: deterministic metrics diverged between replays"
    );
    assert_eq!(
        a.obs.without_wall_clock().to_json(),
        b.obs.without_wall_clock().to_json(),
        "CHAOS_SEED=4242: snapshot encoding is not canonical"
    );
}

/// The fleet's CI seed-matrix entry: `CHAOS_SEED=<n> cargo test --test
/// chaos_network shard_fleet -- --include-ignored`. Elevated fault rates,
/// run twice, convergence and bit-for-bit replay both checked.
#[test]
#[ignore = "seed-matrix entry; run with CHAOS_SEED=<n> -- --include-ignored"]
fn shard_fleet_seed_matrix_entry() {
    let seed = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let mut faults = default_faults();
    faults.corrupt_rate = 0.05;
    faults.duplicate_rate = 0.05;
    let a = run_shard_fleet_chaos(seed, faults.clone());
    let b = run_shard_fleet_chaos(seed, faults);
    assert_eq!(a.stats, b.stats, "CHAOS_SEED={seed}: replay diverged");
    assert_eq!(
        a.retained,
        fixture().expected,
        "CHAOS_SEED={seed}: stream mismatch"
    );
    assert_eq!(
        a.obs.without_wall_clock(),
        b.obs.without_wall_clock(),
        "CHAOS_SEED={seed}: shard metrics diverged between replays"
    );
    assert_eq!(a.superlight.height(), Some(CHAIN), "CHAOS_SEED={seed}");
    assert_eq!(b.quorum.height(), Some(CHAIN), "CHAOS_SEED={seed}");
}
