//! Batch certification: one ECall certifies k consecutive blocks with a
//! single certificate over the last header — the recursive trust argument
//! is unchanged, the per-block cost is amortized.

mod common;

use common::World;
use dcert::workloads::{Workload, WorkloadGen};

#[test]
fn batch_certificate_validates_whole_prefix() {
    let mut world = World::new();
    let mut gen = WorkloadGen::new(Workload::KvStore { keyspace: 32 }, 8, 17);

    let blocks: Vec<_> = (1..=6u64)
        .map(|h| world.miner.mine(gen.next_block(4), h).unwrap())
        .collect();
    let (cert, breakdown) = world.ci.certify_batch(&blocks).unwrap();
    assert_eq!(breakdown.ecalls, 1, "one ECall for the whole batch");
    assert_eq!(world.ci.node().height(), 6);

    world
        .client
        .validate_chain(&blocks.last().unwrap().header, &cert)
        .unwrap();
    assert_eq!(world.client.height(), Some(6));
}

#[test]
fn batches_chain_recursively() {
    let mut world = World::new();
    let mut gen = WorkloadGen::new(Workload::SmallBank { customers: 16 }, 8, 3);

    // Batch 1 (blocks 1..3), then a single block (4), then batch 2 (5..7).
    let batch1: Vec<_> = (1..=3u64)
        .map(|h| world.miner.mine(gen.next_block(3), h).unwrap())
        .collect();
    world.ci.certify_batch(&batch1).unwrap();

    let single = world.miner.mine(gen.next_block(3), 4).unwrap();
    world.ci.certify_block(&single).unwrap();

    let batch2: Vec<_> = (5..=7u64)
        .map(|h| world.miner.mine(gen.next_block(3), h).unwrap())
        .collect();
    let (cert, _) = world.ci.certify_batch(&batch2).unwrap();

    world
        .client
        .validate_chain(&batch2.last().unwrap().header, &cert)
        .unwrap();
    assert_eq!(world.client.height(), Some(7));
}

#[test]
fn tampered_middle_block_rejects_whole_batch() {
    let mut world = World::new();
    let mut gen = WorkloadGen::new(Workload::KvStore { keyspace: 32 }, 8, 5);
    let mut blocks: Vec<_> = (1..=4u64)
        .map(|h| world.miner.mine(gen.next_block(3), h).unwrap())
        .collect();
    // Tamper a middle block's transaction (breaks its tx root).
    blocks[2].txs[0].call.payload = b"evil".to_vec();
    assert!(world.ci.certify_batch(&blocks).is_err());
    // The CI must be unchanged; note the miner already advanced to 4, so
    // re-certifying the honest blocks individually still works.
    assert_eq!(world.ci.node().height(), 0);
}

#[test]
fn empty_batch_rejected() {
    let mut world = World::new();
    assert!(world.ci.certify_batch(&[]).is_err());
}

#[test]
fn batch_amortizes_enclave_cost() {
    // Certify 8 identical-shaped blocks per-block vs in one batch and
    // compare ECall counts and request bytes (the amortization source).
    let mut world_a = World::new();
    let mut world_b = World::new();
    let mut gen_a = WorkloadGen::new(Workload::KvStore { keyspace: 32 }, 8, 9);
    let mut gen_b = WorkloadGen::new(Workload::KvStore { keyspace: 32 }, 8, 9);

    let mut per_block_ecalls = 0;
    for h in 1..=8u64 {
        let block = world_a.miner.mine(gen_a.next_block(3), h).unwrap();
        let (_, breakdown) = world_a.ci.certify_block(&block).unwrap();
        per_block_ecalls += breakdown.ecalls;
    }

    let blocks: Vec<_> = (1..=8u64)
        .map(|h| world_b.miner.mine(gen_b.next_block(3), h).unwrap())
        .collect();
    let (_, batch_breakdown) = world_b.ci.certify_batch(&blocks).unwrap();

    assert_eq!(per_block_ecalls, 8);
    assert_eq!(batch_breakdown.ecalls, 1);
}
