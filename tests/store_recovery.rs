//! Kill-at-every-offset recovery suite for `dcert-store`.
//!
//! The crash-safety contract (DESIGN.md "Persistence"): after a kill at
//! **any** byte offset of the on-disk state, the Service Provider either
//! comes back serving query answers byte-identical to what it had durably
//! acknowledged, or refuses with a typed error. It never panics and never
//! serves state it cannot re-verify against the latest certificate.
//!
//! The suite proves that by construction: a golden run drives one
//! certified chain through two SPs at once — a [`MemStore`] oracle and a
//! [`SegmentStore`] — snapshotting the store's files and the oracle's
//! query answers after every commit. Every test then reconstructs a
//! crashed directory from those snapshots (truncations at every byte
//! offset, torn head slots, seeded bit flips), reopens it, recovers a
//! fresh SP through the certificate re-verification path, and compares
//! its answers byte-for-byte against the oracle at the recovered
//! watermark.

mod common;

use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

use common::{temp_dir, World, TEST_POW_BITS};
use dcert::chain::{Block, ConsensusEngine, GenesisBuilder, ProofOfWork, Transaction};
use dcert::core::expected_measurement;
use dcert::primitives::codec::{encode_seq, Encode};
use dcert::primitives::hash::{hash_bytes, Hash};
use dcert::primitives::keys::{Keypair, PublicKey};
use dcert::query::sp::IndexKind;
use dcert::query::{CertifiedEntry, ServiceProvider};
use dcert::store::head::{HEAD_SLOT_A, HEAD_SLOT_B};
use dcert::store::{MemStore, SegmentStore, Store, StoreConfig, StoreError};
use dcert::vm::{Executor, StateKey};
use dcert::workloads::kvstore::KvCall;
use dcert::workloads::{blockbench_registry, Workload};
use proptest::prelude::*;

/// Chaos seeds the CI matrix fans out over (`CHAOS_SEED` env var).
const CHAOS_SEEDS: [u64; 5] = [1, 42, 1234, 77777, 424242];

/// Blocks in the golden run (one commit per block).
const GOLDEN_BLOCKS: u64 = 3;

/// The single segment file the golden run writes (4 MiB roll threshold is
/// never reached).
const SEG_FILE: &str = "seg-00000000.dcs";

/// Everything a client could ask the SP, captured as comparable bytes.
/// Two SPs with equal observations are indistinguishable to clients.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Observation {
    index_height: u64,
    history_digest: Option<Hash>,
    inverted_digest: Option<Hash>,
    history_cert: Option<Vec<u8>>,
    inverted_cert: Option<Vec<u8>>,
    history_answer: Vec<u8>,
    keyword_answer: Vec<u8>,
}

fn observe(sp: &ServiceProvider) -> Observation {
    let key = StateKey::new("kvstore", b"acct-main");
    let (results, proof) = sp
        .serve_history("history", &key, 0, 100)
        .expect("history index");
    let mut history_answer = Vec::new();
    encode_seq(&results, &mut history_answer);
    proof.encode(&mut history_answer);

    let (matches, kproof) = sp
        .serve_keywords("inverted", &["stock", "bank"])
        .expect("inverted index");
    let mut keyword_answer = Vec::new();
    encode_seq(&matches, &mut keyword_answer);
    kproof.encode(&mut keyword_answer);

    Observation {
        index_height: sp.index_height(),
        history_digest: sp.certified_digest("history"),
        inverted_digest: sp.certified_digest("inverted"),
        history_cert: sp.certificate("history").map(Encode::to_encoded_bytes),
        inverted_cert: sp.certificate("inverted").map(Encode::to_encoded_bytes),
        history_answer,
        keyword_answer,
    }
}

/// A fresh genesis SP structurally identical to the golden run's (same
/// deterministic genesis, same registered indexes) — the starting point
/// `recover_from` requires.
fn genesis_sp() -> ServiceProvider {
    let executor = Executor::new(Arc::new(blockbench_registry()));
    let engine: Arc<dyn ConsensusEngine> = Arc::new(ProofOfWork::new(TEST_POW_BITS));
    let (genesis, genesis_state) = GenesisBuilder::new().timestamp(1_700_000_000).build();
    let mut sp = ServiceProvider::new(&genesis, genesis_state, executor, engine);
    sp.add_index(IndexKind::History, "history");
    sp.add_index(IndexKind::Inverted, "inverted");
    sp
}

fn world_indexes() -> Vec<(IndexKind, &'static str)> {
    vec![
        (IndexKind::History, "history"),
        (IndexKind::Inverted, "inverted"),
    ]
}

/// Mines the golden chain: memo-carrying puts so both keyword and history
/// queries return non-trivial certified answers. Fully deterministic.
fn memo_blocks(world: &mut World, count: u64) -> Vec<Block> {
    let kp = Keypair::from_seed([77; 32]);
    (1..=count)
        .map(|height| {
            let memo = match height % 3 {
                0 => format!("dividend stock payout at {height}"),
                1 => format!("bank wire transfer at {height}"),
                _ => format!("stock AND bank combo at {height}"),
            };
            let tx = Transaction::sign(
                &kp,
                height,
                "kvstore",
                KvCall::Put {
                    key: b"acct-main".to_vec(),
                    value: memo.into_bytes(),
                }
                .to_encoded_bytes(),
            );
            world.miner.mine(vec![tx], height).expect("mines")
        })
        .collect()
}

/// The golden run's plain-data residue: file snapshots after each commit
/// plus the oracle's expected observation at each commit.
struct Golden {
    /// Final full segment-file bytes.
    seg: Vec<u8>,
    /// `synced_len[i]` = segment bytes durable after commit `i`
    /// (`synced_len[0] = 0`: nothing durable before the first commit).
    synced_len: Vec<usize>,
    /// `[head-a, head-b]` file bytes after commit `i` (`None` = absent).
    heads: Vec<[Option<Vec<u8>>; 2]>,
    /// Oracle observation after commit `i` (`expected[0]` = genesis).
    expected: Vec<Observation>,
    ias_key: PublicKey,
    measurement: Hash,
}

/// Stages `blocks` through both SPs, certifying each block and committing
/// both stores, snapshotting the segment-store directory after every
/// commit. Asserts the MemStore oracle and the SegmentStore SP answer
/// identically while live.
fn drive(
    world: &mut World,
    sp_seg: &mut ServiceProvider,
    sp_mem: &mut ServiceProvider,
    blocks: &[Block],
    dir: &Path,
) -> Golden {
    let read_head = |slot: &str| std::fs::read(dir.join(slot)).ok();
    let mut golden = Golden {
        seg: Vec::new(),
        synced_len: vec![0],
        heads: vec![[None, None]],
        expected: vec![observe(sp_mem)],
        ias_key: world.ias.public_key(),
        measurement: expected_measurement(),
    };
    for block in blocks {
        let height = block.header.height;
        let inputs_mem = sp_mem.stage_block(block).expect("oracle stages");
        let inputs_seg = sp_seg.stage_block(block).expect("segment SP stages");
        assert_eq!(inputs_mem.len(), inputs_seg.len(), "height {height}");
        let (certs, _) = world
            .ci
            .certify_augmented(block, &inputs_seg)
            .expect("certifies");
        sp_mem.record_certs(&certs);
        sp_seg.record_certs(&certs);
        assert!(sp_mem.store_error().is_none(), "height {height}");
        assert!(sp_seg.store_error().is_none(), "height {height}");

        let om = observe(sp_mem);
        assert_eq!(
            om,
            observe(sp_seg),
            "live mem/segment divergence at height {height}"
        );
        golden.expected.push(om);
        golden.synced_len.push(
            std::fs::read(dir.join(SEG_FILE))
                .expect("segment readable")
                .len(),
        );
        golden
            .heads
            .push([read_head(HEAD_SLOT_A), read_head(HEAD_SLOT_B)]);
    }
    golden.seg = std::fs::read(dir.join(SEG_FILE)).expect("segment readable");
    golden
}

fn build_golden() -> Golden {
    let (mut world, mut sp_seg) = World::deterministic(world_indexes());
    let mut sp_mem = genesis_sp();
    sp_mem.attach_store(Box::new(MemStore::new()));
    let dir = temp_dir("recovery-golden");
    sp_seg.attach_store(Box::new(
        SegmentStore::open(StoreConfig::new(&dir)).expect("golden store opens"),
    ));
    let blocks = memo_blocks(&mut world, GOLDEN_BLOCKS);
    let golden = drive(&mut world, &mut sp_seg, &mut sp_mem, &blocks, &dir);
    drop(sp_seg);
    std::fs::remove_dir_all(&dir).ok();
    golden
}

fn golden() -> &'static Golden {
    static GOLDEN: OnceLock<Golden> = OnceLock::new();
    GOLDEN.get_or_init(build_golden)
}

/// The last commit whose durable segment bytes fit inside a `cut`-byte
/// segment file — what a correct recovery must come back as.
fn commit_at(golden: &Golden, cut: usize) -> usize {
    (0..golden.synced_len.len())
        .rev()
        .find(|&i| golden.synced_len[i] <= cut)
        .expect("synced_len[0] = 0 always fits")
}

/// Reconstructs a crashed store directory: the segment prefix the kill
/// left behind, plus the head slots as they stood at `commit`.
fn restore(golden: &Golden, cut: usize, commit: usize, label: &str) -> PathBuf {
    let dir = temp_dir(label);
    std::fs::write(dir.join(SEG_FILE), &golden.seg[..cut]).expect("segment written");
    let [a, b] = &golden.heads[commit];
    if let Some(bytes) = a {
        std::fs::write(dir.join(HEAD_SLOT_A), bytes).expect("head-a written");
    }
    if let Some(bytes) = b {
        std::fs::write(dir.join(HEAD_SLOT_B), bytes).expect("head-b written");
    }
    dir
}

fn recover_sp(golden: &Golden, store: SegmentStore) -> ServiceProvider {
    genesis_sp()
        .recover_from(&golden.ias_key, &golden.measurement, Box::new(store))
        .expect("re-verification succeeds")
}

/// The tentpole sweep: kill the process at **every byte offset** of the
/// segment file. The head region holds whatever the last commit covered
/// by the surviving prefix wrote, so every offset must recover — serving
/// exactly the oracle's answers at that commit — and the torn tail past
/// the watermark must be truncated, never replayed into the indexes.
#[test]
fn kill_at_every_segment_offset_recovers_the_last_commit() {
    let g = golden();
    assert_eq!(g.expected.len() as u64, GOLDEN_BLOCKS + 1);
    for cut in 0..=g.seg.len() {
        let commit = commit_at(g, cut);
        let dir = restore(g, cut, commit, "offset");
        let store = SegmentStore::open(StoreConfig::new(&dir))
            .unwrap_or_else(|e| panic!("cut {cut}: open refused intact watermark: {e:?}"));
        assert_eq!(store.durable_height(), commit as u64, "cut {cut}");
        let sp = genesis_sp()
            .recover_from(&g.ias_key, &g.measurement, Box::new(store))
            .unwrap_or_else(|e| panic!("cut {cut}: re-verification failed: {e:?}"));
        assert_eq!(observe(&sp), g.expected[commit], "cut {cut}");
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Kill the process mid-head-write: truncate or bit-flip the newest head
/// slot at every offset. The A/B protocol guarantees the previous slot
/// survives, so recovery falls back exactly one commit — never refuses,
/// never serves a blend of the two.
#[test]
fn torn_newest_head_slot_falls_back_one_commit() {
    let g = golden();
    // After 3 commits the newest head (seq 3) is slot A; slot B holds seq 2.
    let newest = g.heads[GOLDEN_BLOCKS as usize][0]
        .as_ref()
        .expect("slot A written");
    let fallback = GOLDEN_BLOCKS as usize - 1;
    let mut damaged: Vec<Vec<u8>> = (0..newest.len())
        .map(|cut| newest[..cut].to_vec())
        .collect();
    damaged.extend((0..newest.len()).map(|pos| {
        let mut flipped = newest.clone();
        flipped[pos] ^= 0x40;
        flipped
    }));
    for (case, bytes) in damaged.iter().enumerate() {
        let dir = restore(g, g.seg.len(), GOLDEN_BLOCKS as usize, "torn-head");
        std::fs::write(dir.join(HEAD_SLOT_A), bytes).unwrap();
        let store = SegmentStore::open(StoreConfig::new(&dir))
            .unwrap_or_else(|e| panic!("case {case}: fallback slot refused: {e:?}"));
        assert_eq!(store.durable_height(), fallback as u64, "case {case}");
        let sp = recover_sp(g, store);
        assert_eq!(observe(&sp), g.expected[fallback], "case {case}");
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Damage that genuinely loses acknowledged data must refuse with a
/// typed error — recovering a plausible-but-unacknowledged state would
/// be serving history the SP cannot account for.
#[test]
fn unrecoverable_damage_refuses_with_typed_errors() {
    let g = golden();
    let last = GOLDEN_BLOCKS as usize;

    // Both head slots corrupt: the durable watermark is unknowable.
    let dir = restore(g, g.seg.len(), last, "both-heads");
    for slot in [HEAD_SLOT_A, HEAD_SLOT_B] {
        let mut bytes = std::fs::read(dir.join(slot)).unwrap();
        let end = bytes.len() - 1;
        bytes[end] ^= 0xFF;
        std::fs::write(dir.join(slot), bytes).unwrap();
    }
    let err = SegmentStore::open(StoreConfig::new(&dir)).unwrap_err();
    assert!(
        matches!(
            err,
            StoreError::HeadCorrupt { .. } | StoreError::BadMagic { .. }
        ),
        "{err:?}"
    );
    std::fs::remove_dir_all(&dir).ok();

    // Segment file gone while the head still marks it durable.
    let dir = restore(g, g.seg.len(), last, "missing-seg");
    std::fs::remove_file(dir.join(SEG_FILE)).unwrap();
    let err = SegmentStore::open(StoreConfig::new(&dir)).unwrap_err();
    assert!(matches!(err, StoreError::DurableDataLost { .. }), "{err:?}");
    std::fs::remove_dir_all(&dir).ok();

    // Segment shorter than the durable watermark: acknowledged bytes lost.
    let dir = restore(g, g.synced_len[last] - 1, last, "short-seg");
    let err = SegmentStore::open(StoreConfig::new(&dir)).unwrap_err();
    assert!(matches!(err, StoreError::DurableDataLost { .. }), "{err:?}");
    std::fs::remove_dir_all(&dir).ok();
}

/// A byzantine disk (not a crash): the store's files are internally
/// consistent but a committed head entry was substituted. CRC cannot
/// catch this — the SP's semantic re-verification must.
#[test]
fn recovery_refuses_substituted_head_entry() {
    let g = golden();
    let dir = restore(g, g.seg.len(), GOLDEN_BLOCKS as usize, "forged-entry");
    let mut store = SegmentStore::open(StoreConfig::new(&dir)).expect("opens clean");
    let forged = CertifiedEntry {
        digest: hash_bytes(b"forged digest the indexes never had"),
        anchor: None,
    };
    store
        .put_head("sp.cert.history", forged.to_encoded_bytes())
        .unwrap();
    store.sync().unwrap();
    let err = genesis_sp()
        .recover_from(&g.ias_key, &g.measurement, Box::new(store))
        .err()
        .expect("substituted digest must refuse");
    let msg = format!("{err:?}");
    assert!(msg.contains("VerifyFailed"), "{msg}");
    std::fs::remove_dir_all(&dir).ok();
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seeded single-bit flips across all three files of the final state.
/// Every flip must either refuse (typed) or recover — and a recovery must
/// be byte-identical to the oracle at whatever watermark it lands on.
/// Returns `(recovered, refused)` for the caller's coverage assertions.
fn run_bit_flips(g: &Golden, seed: u64) -> (usize, usize) {
    let last = GOLDEN_BLOCKS as usize;
    let head_a = g.heads[last][0].as_ref().expect("slot A written");
    let head_b = g.heads[last][1].as_ref().expect("slot B written");
    let files: [(&str, &[u8]); 3] = [
        (SEG_FILE, &g.seg),
        (HEAD_SLOT_A, head_a),
        (HEAD_SLOT_B, head_b),
    ];
    let (mut recovered, mut refused) = (0, 0);
    let mut state = seed;
    for case in 0..40 {
        let (name, bytes) = files[(splitmix64(&mut state) % 3) as usize];
        let pos = (splitmix64(&mut state) as usize) % bytes.len();
        let bit = (splitmix64(&mut state) % 8) as u8;
        let dir = restore(g, g.seg.len(), last, "bit-flip");
        let mut flipped = bytes.to_vec();
        flipped[pos] ^= 1 << bit;
        std::fs::write(dir.join(name), flipped).unwrap();
        match SegmentStore::open(StoreConfig::new(&dir)) {
            Err(_) => refused += 1, // typed refusal — the Err itself is the proof
            Ok(store) => {
                let watermark = store.durable_height() as usize;
                assert!(watermark <= last, "CHAOS_SEED={seed} case {case}");
                let sp = genesis_sp()
                    .recover_from(&g.ias_key, &g.measurement, Box::new(store))
                    .unwrap_or_else(|e| {
                        panic!("CHAOS_SEED={seed} case {case}: intact watermark refused: {e:?}")
                    });
                assert_eq!(
                    observe(&sp),
                    g.expected[watermark],
                    "CHAOS_SEED={seed} case {case} ({name} byte {pos} bit {bit})"
                );
                recovered += 1;
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
    (recovered, refused)
}

#[test]
fn seeded_bit_flips_recover_or_refuse() {
    let g = golden();
    let (mut recovered, mut refused) = (0, 0);
    for seed in CHAOS_SEEDS {
        let (r, f) = run_bit_flips(g, seed);
        recovered += r;
        refused += f;
    }
    // The matrix must exercise both arms of the contract, or the suite
    // is vacuous.
    assert!(recovered > 0, "no flip ever recovered");
    assert!(refused > 0, "no flip ever refused");
}

/// CI matrix entry point: `CHAOS_SEED=<n> cargo test -- --ignored
/// seed_matrix_entry` runs one seed's flip schedule in isolation.
#[test]
#[ignore = "run via the CHAOS_SEED matrix in CI"]
fn seed_matrix_entry() {
    let seed: u64 = std::env::var("CHAOS_SEED")
        .expect("CHAOS_SEED env var set")
        .parse()
        .expect("CHAOS_SEED is numeric");
    let g = golden();
    let (recovered, refused) = run_bit_flips(g, seed);
    println!("CHAOS_SEED={seed}: {recovered} recovered, {refused} refused");
}

/// After recovering at any commit watermark, re-syncing the same chain
/// must converge on the never-crashed oracle: catch-up blocks apply to
/// the chain only (no re-staging), fresh blocks certify normally, and a
/// second crash-and-recover at the tip still serves the golden answers.
#[test]
fn resync_after_recovery_converges_on_the_oracle() {
    let g = golden();
    for watermark in 0..=GOLDEN_BLOCKS as usize {
        // Deterministic world rebuild: byte-identical blocks and certs.
        let (mut world, mut sp_oracle) = World::deterministic(world_indexes());
        let blocks = memo_blocks(&mut world, GOLDEN_BLOCKS);

        let dir = restore(g, g.synced_len[watermark], watermark, "resync");
        let store = SegmentStore::open(StoreConfig::new(&dir)).expect("boundary cut opens");
        let mut sp_rec = recover_sp(g, store);
        assert_eq!(sp_rec.index_height(), watermark as u64);

        for block in &blocks {
            let height = block.header.height as usize;
            let inputs_rec = sp_rec.stage_block(block).expect("recovered SP stages");
            let inputs_oracle = sp_oracle.stage_block(block).expect("oracle stages");
            let (certs, _) = world
                .ci
                .certify_augmented(block, &inputs_oracle)
                .expect("certifies");
            sp_oracle.record_certs(&certs);
            if height <= watermark {
                assert!(
                    inputs_rec.is_empty(),
                    "watermark {watermark}: catch-up block {height} must not re-stage"
                );
            } else {
                assert_eq!(inputs_rec.len(), inputs_oracle.len());
                sp_rec.record_certs(&certs);
            }
        }
        assert!(sp_rec.store_error().is_none(), "watermark {watermark}");
        let tip = observe(&sp_oracle);
        assert_eq!(observe(&sp_rec), tip, "watermark {watermark}");
        assert_eq!(
            tip, g.expected[GOLDEN_BLOCKS as usize],
            "watermark {watermark}"
        );

        // Crash again at the tip: the re-synced store must recover clean.
        drop(sp_rec.take_store());
        drop(sp_rec);
        let store = SegmentStore::open(StoreConfig::new(&dir)).expect("second recovery opens");
        assert_eq!(store.durable_height(), GOLDEN_BLOCKS);
        let sp_again = recover_sp(g, store);
        assert_eq!(
            observe(&sp_again),
            g.expected[GOLDEN_BLOCKS as usize],
            "watermark {watermark}: second crash"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Property form of the sweep over *arbitrary* record schedules:
    /// workload-generated blocks (any contract mix), any kill fraction,
    /// seeds drawn from the chaos matrix. Recovery at the kill point must
    /// serve the MemStore oracle's answers at the surviving commit.
    #[test]
    fn kill_point_identity_over_schedules(
        blocks in 1usize..=3,
        txs in 1usize..=2,
        seed_idx in 0usize..CHAOS_SEEDS.len(),
        kill_permille in 0u64..=1000,
    ) {
        let (mut world, mut sp_seg) = World::deterministic(world_indexes());
        let mut sp_mem = genesis_sp();
        sp_mem.attach_store(Box::new(MemStore::new()));
        let dir = temp_dir("schedule");
        sp_seg.attach_store(Box::new(
            SegmentStore::open(StoreConfig::new(&dir)).expect("schedule store opens"),
        ));
        let mined = world.mine_blocks(
            Workload::KvStore { keyspace: 16 },
            blocks,
            txs,
            CHAOS_SEEDS[seed_idx],
        );
        let g = drive(&mut world, &mut sp_seg, &mut sp_mem, &mined, &dir);
        drop(sp_seg);
        std::fs::remove_dir_all(&dir).ok();

        let cut = (g.seg.len() * kill_permille as usize / 1000).min(g.seg.len());
        let commit = commit_at(&g, cut);
        let scratch = restore(&g, cut, commit, "schedule-cut");
        let store = SegmentStore::open(StoreConfig::new(&scratch)).expect("kill point opens");
        prop_assert_eq!(store.durable_height(), commit as u64);
        let sp = genesis_sp()
            .recover_from(&g.ias_key, &g.measurement, Box::new(store))
            .expect("re-verification succeeds");
        prop_assert_eq!(observe(&sp), g.expected[commit].clone());
        std::fs::remove_dir_all(&scratch).ok();
    }
}
