//! The dynamic twin of dcert-lint rule R2 (panic-freedom): every wire
//! decoder in the workspace is exercised with arbitrary, truncated, and
//! bit-flipped byte strings, and must always return `Err` — never panic.
//!
//! `fuzz_decoding.rs` probes a core subset with semantic soundness checks;
//! this suite goes wide instead: it enumerates the *complete* decoder
//! surface (certificates, network messages, sealed blobs, every proof
//! family, keys, primitives) and sweeps each type's valid encoding through
//! exhaustive truncations and single-byte corruptions.

use dcert::baselines::lineage::LineageIndex;
use dcert::baselines::skiplist::AuthSkipList;
use dcert::baselines::{LineageProof, SkipRangeProof};
use dcert::chain::consensus::ConsensusProof;
use dcert::chain::{Block, BlockHeader, Transaction};
use dcert::core::{
    BatchLink, BlockInput, Certificate, EcallRequest, EcallResponse, IdxRequest, IndexInput,
    NetMessage,
};
use dcert::merkle::aggmb::AggAppendProof;
use dcert::merkle::{
    AggMbTree, AggOpProof, AggProof, Aggregate, MbAppendProof, MbOpProof, MbRangeProof, MbTree,
    MerkleTree, MhtOpProof, MhtProof, Mpt, MptProof, OpNode, ProofOp, SmtProof, SparseMerkleTree,
    MAX_OP_STACK, MAX_PROOF_DEPTH,
};
use dcert::primitives::codec::{encode_seq, Decode, Encode};
use dcert::primitives::hash::{hash_bytes, Address, Hash};
use dcert::primitives::keys::{Keypair, PublicKey, Signature};
use dcert::query::aggregate::AggregateIndex;
use dcert::query::history::HistoryIndex;
use dcert::query::inverted::InvertedIndex;
use dcert::query::{
    AggOpQueryProof, AggQueryProof, CertifiedEntry, HistoryOpProof, HistoryProof, KeywordPage,
    KeywordProof, WritesPage,
};
use dcert::serve::{
    encode_history_payload, QuerySpec, RefusalReason, ServeRefusal, ServeRequest, ServeResponse,
    ServeWire,
};
use dcert::sgx::{sealing, AttestationReport, AttestationService, Quote, SealedBlob};
use dcert::store::frame::{append_frame, scan_frames};
use dcert::store::head::HEAD_SLOT_A;
use dcert::store::{HeadState, Record, SegmentMark, StreamId};
use dcert::vm::StateKey;
use proptest::prelude::*;

/// Feeds `bytes` to every wire decoder in the workspace. Each call must
/// return (any result is fine) without panicking.
fn try_decode_everything(bytes: &[u8]) {
    // Primitives.
    let _ = Hash::decode_all(bytes);
    let _ = Address::decode_all(bytes);
    let _ = PublicKey::decode_all(bytes);
    let _ = Signature::decode_all(bytes);
    let _ = String::decode_all(bytes);
    let _ = Vec::<u8>::decode_all(bytes);
    let _ = Vec::<Hash>::decode_all(bytes);
    let _ = StateKey::decode_all(bytes);
    // Chain.
    let _ = BlockHeader::decode_all(bytes);
    let _ = Block::decode_all(bytes);
    let _ = Transaction::decode_all(bytes);
    let _ = ConsensusProof::decode_all(bytes);
    // Certificates, enclave messages, network envelopes.
    let _ = Certificate::decode_all(bytes);
    let _ = AttestationReport::decode_all(bytes);
    let _ = EcallRequest::decode_all(bytes);
    let _ = EcallResponse::decode_all(bytes);
    let _ = BlockInput::decode_all(bytes);
    let _ = IndexInput::decode_all(bytes);
    let _ = IdxRequest::decode_all(bytes);
    let _ = BatchLink::decode_all(bytes);
    let _ = NetMessage::decode_all(bytes);
    let _ = SealedBlob::decode_all(bytes);
    // Proof families.
    let _ = MhtProof::decode_all(bytes);
    let _ = SmtProof::decode_all(bytes);
    let _ = MptProof::decode_all(bytes);
    let _ = MbRangeProof::decode_all(bytes);
    let _ = MbAppendProof::decode_all(bytes);
    let _ = AggProof::decode_all(bytes);
    let _ = AggAppendProof::decode_all(bytes);
    let _ = Aggregate::decode_all(bytes);
    let _ = HistoryProof::decode_all(bytes);
    let _ = KeywordProof::decode_all(bytes);
    let _ = AggQueryProof::decode_all(bytes);
    // Op-stream proof family (the stack-machine encoding).
    let _ = ProofOp::decode_all(bytes);
    let _ = OpNode::decode_all(bytes);
    let _ = MbOpProof::decode_all(bytes);
    let _ = AggOpProof::decode_all(bytes);
    let _ = MhtOpProof::decode_all(bytes);
    let _ = HistoryOpProof::decode_all(bytes);
    let _ = AggOpQueryProof::decode_all(bytes);
    let _ = SkipRangeProof::decode_all(bytes);
    let _ = LineageProof::decode_all(bytes);
    // Persistence layer: segment records, head state, SP pages.
    let _ = Record::decode_all(bytes);
    let _ = StreamId::decode_all(bytes);
    let _ = SegmentMark::decode_all(bytes);
    let _ = HeadState::decode_all(bytes);
    let _ = WritesPage::decode_all(bytes);
    let _ = KeywordPage::decode_all(bytes);
    let _ = CertifiedEntry::decode_all(bytes);
    // Serving front-end wire messages.
    let _ = QuerySpec::decode_all(bytes);
    let _ = ServeRequest::decode_all(bytes);
    let _ = ServeResponse::decode_all(bytes);
    let _ = ServeRefusal::decode_all(bytes);
    let _ = ServeWire::decode_all(bytes);
    let _ = dcert::serve::decode_history_payload(bytes);
    let _ = dcert::serve::decode_keyword_payload(bytes);
    let _ = dcert::serve::decode_aggregate_payload(bytes);
    let _ = dcert::serve::decode_history_op_payload(bytes);
    let _ = dcert::serve::decode_aggregate_op_payload(bytes);
    // Framing decoders (distinct from plain codecs: CRC-checked length-
    // prefixed frames and magic-guarded slot files).
    let _ = scan_frames(bytes);
    let _ = dcert::store::frame::decode_framed(bytes);
    let _ = HeadState::decode_slot_file(HEAD_SLOT_A, bytes);
}

/// A named valid encoding plus its own type's decoder (for asserting that
/// truncation breaks the *matching* decoder, not just any decoder).
struct Probe {
    name: &'static str,
    bytes: Vec<u8>,
    decode_ok: fn(&[u8]) -> bool,
}

fn probe<T: Encode + Decode>(name: &'static str, value: &T) -> Probe {
    fn ok<T: Decode>(bytes: &[u8]) -> bool {
        T::decode_all(bytes).is_ok()
    }
    Probe {
        name,
        bytes: value.to_encoded_bytes(),
        decode_ok: ok::<T>,
    }
}

fn header(height: u64) -> BlockHeader {
    BlockHeader {
        height,
        prev_hash: hash_bytes(height.to_be_bytes()),
        state_root: hash_bytes(b"state"),
        tx_root: hash_bytes(b"txs"),
        timestamp: height,
        miner: Address::default(),
        consensus: ConsensusProof::Pow {
            difficulty_bits: 0,
            nonce: 0,
        },
    }
}

fn certificate() -> (Certificate, AttestationReport) {
    let mut ias = AttestationService::with_seed([1; 32]);
    let platform = Keypair::from_seed([2; 32]);
    ias.register_platform(platform.public());
    let enclave_key = Keypair::from_seed([3; 32]);
    let quote = Quote::sign(
        &platform,
        hash_bytes(b"program"),
        Certificate::key_binding(&enclave_key.public()),
    );
    let report = ias.attest(&quote).expect("registered platform attests");
    let digest = hash_bytes(b"hdr");
    let cert = Certificate {
        pk_enc: enclave_key.public(),
        report: report.clone(),
        digest,
        signature: enclave_key.sign(digest.as_bytes()),
    };
    (cert, report)
}

/// One valid encoding per wire type — the corpus the truncation and
/// bit-flip sweeps run over.
fn sample_encodings() -> Vec<Probe> {
    let kp = Keypair::from_seed([9; 32]);
    let tx = Transaction::sign(&kp, 7, "kvstore", b"payload".to_vec());
    let (cert, report) = certificate();
    let key = StateKey::new("kvstore", b"balance");

    let mht = MerkleTree::from_items([b"a".as_slice(), b"b", b"c"]);
    let mht_proof = mht.prove(1).expect("index 1 in bounds");

    let mut smt = SparseMerkleTree::new();
    for i in 0..8u32 {
        smt.insert(hash_bytes(format!("k{i}")), vec![i as u8]);
    }
    let smt_proof = smt.prove(&[hash_bytes("k3"), hash_bytes("missing")]);

    let mut mpt = Mpt::new();
    mpt.insert(b"key-one", b"v1".to_vec());
    mpt.insert(b"key-two", b"v2".to_vec());
    let mpt_proof = mpt.prove(b"key-one");

    let mut mb = MbTree::new(4);
    for t in 0..10u64 {
        mb.insert(t, vec![t as u8]);
    }
    let (_, mb_range) = mb.range(2, 7);
    let mb_append = mb.prove_append();

    let mut agg = AggMbTree::new(4);
    for t in 0..10u64 {
        agg.insert(t, t * 3);
    }
    let (aggregate, agg_proof) = agg.aggregate(2, 7);
    let agg_append = agg.prove_append();

    let mb_ops = mb.prove_ops(&[(2, 7)]);
    let mb_nonmember_ops = mb.prove_non_membership(42);
    let agg_ops = agg.prove_agg_ops(2, 7);
    let mht_ops = mht.prove_range_ops(0, 2).expect("range in bounds");

    let history = HistoryIndex::new("history");
    let (_, history_proof) = history.query(&key, 0, 10);
    let inverted = InvertedIndex::new("inverted");
    let (_, keyword_proof) = inverted.query(&["alpha"]);
    let aggregate_index = AggregateIndex::new("aggregate");
    let (_, agg_query_proof) = aggregate_index.query(&key, 0, 10);

    // Populated indexes so the op-stream query proofs carry real programs.
    let mut tracked_history = HistoryIndex::new("history");
    let mut tracked_aggregate = AggregateIndex::new("aggregate");
    for height in 1..=6u64 {
        let writes = vec![(key, Some(height.to_be_bytes().to_vec()))];
        tracked_history.apply_block(height, &writes);
        tracked_aggregate.apply_block(height, &writes);
    }
    let (_, history_op_proof) = tracked_history.query_ops(&key, 2, 5);
    let (_, agg_op_query_proof) = tracked_aggregate.query_ops(&key, 2, 5);

    let mut skiplist = AuthSkipList::new();
    for t in 0..6u64 {
        skiplist.append(t, vec![t as u8]);
    }
    let (_, skip_proof) = skiplist.range(1, 4);

    let mut lineage = LineageIndex::new();
    lineage.apply_block(1, &[(key, Some(b"v".to_vec()))]);
    let (_, lineage_proof) = lineage.query(&key, 0, 10);

    let sealed = sealing::seal(&[7; 32], &hash_bytes(b"program"), b"enclave state");

    let record = Record::new(5, StreamId::Writes, b"page bytes".to_vec());
    let head_state = HeadState {
        seq: 3,
        durable_height: 2,
        segments: vec![SegmentMark {
            index: 0,
            durable_len: 4096,
        }],
        entries: vec![("sp.height".to_string(), 2u64.to_encoded_bytes())],
    };
    let writes_page = WritesPage {
        writes: vec![
            (key, Some(b"v1".to_vec())),
            (StateKey::new("kvstore", b"gone"), None),
        ],
    };
    let keyword_page = KeywordPage {
        appends: vec![("stock".to_string(), vec![hash_bytes(b"tx-1")])],
    };
    let certified_entry = CertifiedEntry {
        digest: hash_bytes(b"index digest"),
        anchor: Some((hash_bytes(b"hdr"), hash_bytes(b"dig"), cert.clone())),
    };

    let serve_query = QuerySpec::History {
        index: "history".into(),
        key: key.clone(),
        t1: 1,
        t2: 9,
    };
    let serve_request = ServeRequest {
        client: 41,
        id: 7,
        query: serve_query.clone(),
    };
    let (history_results, history_payload_proof) = history.query(&key, 0, 10);
    let serve_response = ServeResponse {
        id: 7,
        certified_height: 9,
        payload: encode_history_payload(&history_results, &history_payload_proof),
    };
    let serve_refusal = ServeRefusal {
        id: 8,
        reason: RefusalReason::RateLimited {
            retry_after_ticks: 2,
        },
    };

    vec![
        probe("Hash", &hash_bytes(b"x")),
        probe("PublicKey", &kp.public()),
        probe("Signature", &kp.sign(b"msg")),
        probe("StateKey", &key),
        probe("BlockHeader", &header(3)),
        probe(
            "Block",
            &Block {
                header: header(3),
                txs: vec![tx.clone()],
            },
        ),
        probe("Transaction", &tx),
        probe("Certificate", &cert),
        probe("AttestationReport", &report),
        probe("EcallRequest", &EcallRequest::Init),
        probe("EcallResponse", &EcallResponse::Initialized(kp.public())),
        probe(
            "NetMessage::BlockCert",
            &NetMessage::BlockCert {
                header: header(3),
                cert: cert.clone(),
            },
        ),
        probe(
            "NetMessage::IndexCert",
            &NetMessage::IndexCert {
                header: header(3),
                index: "history".into(),
                digest: hash_bytes(b"digest"),
                cert,
            },
        ),
        probe("SealedBlob", &sealed),
        probe("MhtProof", &mht_proof),
        probe("SmtProof", &smt_proof),
        probe("MptProof", &mpt_proof),
        probe("MbRangeProof", &mb_range),
        probe("MbAppendProof", &mb_append),
        probe("AggProof", &agg_proof),
        probe("AggAppendProof", &agg_append),
        probe("Aggregate", &aggregate),
        probe("HistoryProof", &history_proof),
        probe("KeywordProof", &keyword_proof),
        probe("AggQueryProof", &agg_query_proof),
        probe(
            "ProofOp",
            &ProofOp::Push(OpNode::Pruned(hash_bytes(b"pruned"))),
        ),
        probe("MbOpProof", &mb_ops),
        probe("MbOpProof::non_membership", &mb_nonmember_ops),
        probe("AggOpProof", &agg_ops),
        probe("MhtOpProof", &mht_ops),
        probe("HistoryOpProof", &history_op_proof),
        probe("AggOpQueryProof", &agg_op_query_proof),
        probe("SkipRangeProof", &skip_proof),
        probe("LineageProof", &lineage_proof),
        probe("Record", &record),
        probe("StreamId", &StreamId::Checkpoint),
        probe("SegmentMark", &head_state.segments[0]),
        probe("HeadState", &head_state),
        probe("WritesPage", &writes_page),
        probe("KeywordPage", &keyword_page),
        probe("CertifiedEntry", &certified_entry),
        probe("QuerySpec", &serve_query),
        probe(
            "QuerySpec::HistoryOp",
            &QuerySpec::HistoryOp {
                index: "history".into(),
                key: key.clone(),
                t1: 2,
                t2: 5,
            },
        ),
        probe(
            "QuerySpec::AggregateOp",
            &QuerySpec::AggregateOp {
                index: "aggregate".into(),
                key: key.clone(),
                t1: 2,
                t2: 5,
            },
        ),
        probe("ServeWire::Request", &ServeWire::Request(serve_request)),
        probe("ServeWire::Response", &ServeWire::Response(serve_response)),
        probe("ServeWire::Refusal", &ServeWire::Refusal(serve_refusal)),
        probe(
            "NetMessage::Serve",
            &NetMessage::Serve {
                payload: ServeWire::Request(ServeRequest {
                    client: 42,
                    id: 11,
                    query: QuerySpec::Keywords {
                        index: "inverted".into(),
                        keywords: vec!["alpha".into(), "beta".into()],
                    },
                })
                .to_encoded_bytes(),
            },
        ),
    ]
}

#[test]
fn sample_encodings_round_trip() {
    for p in sample_encodings() {
        assert!(
            (p.decode_ok)(&p.bytes),
            "{}: canonical encoding must decode",
            p.name
        );
    }
}

#[test]
fn every_truncation_of_every_type_fails_cleanly() {
    for p in sample_encodings() {
        for cut in 0..p.bytes.len() {
            assert!(
                !(p.decode_ok)(&p.bytes[..cut]),
                "{}: truncation at {cut}/{} must fail",
                p.name,
                p.bytes.len()
            );
        }
    }
}

#[test]
fn every_decoder_survives_every_other_types_encoding() {
    // Cross-wiring: each type's valid bytes fed to all other decoders.
    for p in sample_encodings() {
        try_decode_everything(&p.bytes);
    }
}

fn sample_head_state() -> HeadState {
    HeadState {
        seq: 7,
        durable_height: 4,
        segments: vec![SegmentMark {
            index: 1,
            durable_len: 512,
        }],
        entries: vec![("sp.cert.history".to_string(), vec![0xAB; 24])],
    }
}

/// The head-slot file decoder (magic + one CRC frame) must reject every
/// truncation and every single-byte corruption of a valid slot — a torn
/// or bit-rotted head write can never decode to a wrong watermark.
#[test]
fn head_slot_file_damage_fails_cleanly() {
    let slot = sample_head_state().encode_slot_file().expect("encodes");
    assert!(HeadState::decode_slot_file(HEAD_SLOT_A, &slot).is_ok());
    for cut in 0..slot.len() {
        assert!(
            HeadState::decode_slot_file(HEAD_SLOT_A, &slot[..cut]).is_err(),
            "truncation at {cut}/{} must fail",
            slot.len()
        );
    }
    for pos in 0..slot.len() {
        let mut bytes = slot.clone();
        bytes[pos] ^= 0x01;
        assert!(
            HeadState::decode_slot_file(HEAD_SLOT_A, &bytes).is_err(),
            "flipped byte {pos} must fail"
        );
    }
}

/// The segment frame scanner must yield exactly a *prefix* of the
/// original records for every truncation and single-byte corruption of a
/// valid frame stream — never a wrong record, never a panic.
#[test]
fn segment_frame_stream_damage_yields_record_prefix() {
    let originals: Vec<Record> = (1..=3u64)
        .map(|h| Record::new(h, StreamId::Cert, vec![h as u8; 48]))
        .collect();
    let mut stream = Vec::new();
    for record in &originals {
        append_frame(&record.to_encoded_bytes(), &mut stream).expect("frames");
    }
    let full = scan_frames(&stream);
    assert_eq!(full.records, originals);
    assert_eq!(full.valid_len, stream.len() as u64);
    assert_eq!(full.stop, None);

    let mut damaged: Vec<Vec<u8>> = (0..stream.len())
        .map(|cut| stream[..cut].to_vec())
        .collect();
    damaged.extend((0..stream.len()).map(|pos| {
        let mut bytes = stream.clone();
        bytes[pos] ^= 0x01;
        bytes
    }));
    for (case, bytes) in damaged.iter().enumerate() {
        let scan = scan_frames(bytes);
        assert!(scan.valid_len as usize <= bytes.len(), "case {case}");
        assert_eq!(
            scan.records,
            originals[..scan.records.len()],
            "case {case}: surviving records must be a prefix"
        );
        assert_eq!(
            scan.stop.is_none(),
            scan.valid_len as usize == bytes.len(),
            "case {case}: a scan stops early iff bytes remain"
        );
    }
}

/// Round-trips a hand-built op program through the wire codec, yielding a
/// proof exactly as a verifier would see it from an untrusted prover.
fn mb_op_proof(program: &[ProofOp]) -> MbOpProof {
    let mut bytes = Vec::new();
    encode_seq(program, &mut bytes);
    MbOpProof::decode_all(&bytes).expect("syntactically valid op stream decodes")
}

fn agg_op_proof(program: &[ProofOp]) -> AggOpProof {
    let mut bytes = Vec::new();
    encode_seq(program, &mut bytes);
    AggOpProof::decode_all(&bytes).expect("syntactically valid op stream decodes")
}

/// Adversarial stack programs — underflow, overflow, over-deep chains,
/// wrong arities, attaches to non-shells, wrong node families — must be
/// rejected by the bounded executor with typed errors, never a panic and
/// never an accepted verification against a root they don't hash to.
#[test]
fn hostile_op_programs_fail_verification_cleanly() {
    let root = hash_bytes(b"not the zero root");
    let leaf = |ts: u64| OpNode::Leaf(vec![(ts, hash_bytes(ts.to_be_bytes()))]);
    let mut programs: Vec<Vec<ProofOp>> = vec![
        // Stack underflow in every shape.
        vec![ProofOp::Parent],
        vec![ProofOp::Child],
        vec![ProofOp::Push(leaf(1)), ProofOp::Parent],
        // Attach to a non-shell node.
        vec![
            ProofOp::Push(leaf(1)),
            ProofOp::Push(leaf(2)),
            ProofOp::Child,
        ],
        // Trailing operands left on the stack.
        vec![ProofOp::Push(leaf(1)), ProofOp::Push(leaf(2))],
        // Inverted push of a non-shell.
        vec![ProofOp::PushInverted(leaf(1))],
        // Arity mismatch: one separator demands two children, got none.
        vec![ProofOp::Push(OpNode::Internal(vec![5]))],
        // Wrong node family for the claimed proof type.
        vec![ProofOp::Push(OpNode::AggLeaf(vec![(1, 2)]))],
        vec![ProofOp::Push(OpNode::MhtNode)],
        // Empty stream only proves the empty tree (`Hash::ZERO`).
        vec![],
    ];
    // Stack overflow: one more push than the executor's bound.
    programs.push(
        (0..=MAX_OP_STACK as u64)
            .map(|k| ProofOp::Push(leaf(k)))
            .collect(),
    );
    // Depth bomb: a parent chain one level past the depth bound, while
    // the stack itself never grows past two entries.
    let mut deep = vec![ProofOp::Push(leaf(1))];
    for _ in 0..=MAX_PROOF_DEPTH {
        deep.push(ProofOp::Push(OpNode::Internal(vec![])));
        deep.push(ProofOp::Parent);
    }
    programs.push(deep);

    for (i, program) in programs.iter().enumerate() {
        let mb = mb_op_proof(program);
        assert!(
            mb.verify(&root, 0, u64::MAX, &[]).is_err(),
            "program {i} must fail MB verification"
        );
        assert!(
            mb.verify_non_membership(&root, 7).is_err(),
            "program {i} must fail non-membership verification"
        );
        let agg = agg_op_proof(program);
        assert!(
            agg.verify(&root, 0, u64::MAX, &Aggregate::EMPTY).is_err(),
            "program {i} must fail aggregate verification"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Arbitrary op programs (syntactically valid, semantically hostile)
    /// never panic either executor — they verify or fail typed.
    #[test]
    fn prop_random_op_programs_never_panic(
        selectors in proptest::collection::vec(any::<u8>(), 0..48),
    ) {
        let program: Vec<ProofOp> = selectors
            .iter()
            .map(|&b| match b % 6 {
                0 => ProofOp::Parent,
                1 => ProofOp::Child,
                2 => ProofOp::Push(OpNode::Leaf(vec![(b as u64, hash_bytes([b]))])),
                3 => ProofOp::Push(OpNode::Internal(vec![b as u64])),
                4 => ProofOp::PushInverted(OpNode::Internal(vec![b as u64, b as u64 + 7])),
                _ => ProofOp::Push(OpNode::Pruned(hash_bytes([b, 1]))),
            })
            .collect();
        let root = hash_bytes(b"prop root");
        let mb = mb_op_proof(&program);
        let _ = mb.verify(&root, 0, u64::MAX, &[]);
        let _ = mb.verify_non_membership(&root, 9);
        let agg = agg_op_proof(&program);
        let _ = agg.verify(&root, 0, 9, &Aggregate::EMPTY);
    }

    /// Arbitrary junk never panics any decoder.
    #[test]
    fn prop_random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..1024)) {
        try_decode_everything(&bytes);
    }

    /// One flipped byte in a valid encoding never panics any decoder —
    /// including the type's own.
    #[test]
    fn prop_bitflipped_encodings_never_panic(
        which in any::<usize>(),
        pos in any::<usize>(),
        flip in 1u8..=255,
    ) {
        let samples = sample_encodings();
        let p = &samples[which % samples.len()];
        let mut bytes = p.bytes.clone();
        let idx = pos % bytes.len();
        bytes[idx] ^= flip;
        let _ = (p.decode_ok)(&bytes);
        try_decode_everything(&bytes);
    }

    /// A truncated valid encoding with random junk appended never panics.
    #[test]
    fn prop_truncated_with_junk_tail_never_panics(
        which in any::<usize>(),
        cut in any::<usize>(),
        tail in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let samples = sample_encodings();
        let p = &samples[which % samples.len()];
        let mut bytes = p.bytes[..cut % bytes_len(&p.bytes)].to_vec();
        bytes.extend_from_slice(&tail);
        let _ = (p.decode_ok)(&bytes);
        try_decode_everything(&bytes);
    }
}

fn bytes_len(bytes: &[u8]) -> usize {
    bytes.len().max(1)
}
