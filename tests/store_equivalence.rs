//! Backend-equivalence suite for `dcert-store`.
//!
//! The determinism contract (`dcert-store` crate docs): the same
//! certified history produces byte-identical segment files, and every
//! read a [`SegmentStore`] answers — records, head entries, SP query
//! answers, archive resyncs — is byte-identical to a [`MemStore`] fed
//! the same appends. This suite pins that contract at three levels:
//!
//! 1. **Store trait reads**: records / head entries / heights compare
//!    equal after identical appends.
//! 2. **Consumers**: a Service Provider and a [`CertArchive`] backed by
//!    either store answer every query identically, including after an
//!    orderly close and reopen through the recovery path.
//! 3. **Disk bytes**: two independent runs of the same deterministic
//!    history leave byte-identical files on disk.

mod common;

use std::path::Path;
use std::sync::{Arc, OnceLock};

use common::{temp_dir, World, TEST_POW_BITS};
use dcert::chain::{Block, ConsensusEngine, GenesisBuilder, ProofOfWork, Transaction};
use dcert::core::{expected_measurement, CertArchive, Gossip, NetMessage, Transport};
use dcert::primitives::codec::{encode_seq, Encode};
use dcert::primitives::hash::Hash;
use dcert::primitives::keys::{Keypair, PublicKey};
use dcert::query::sp::IndexKind;
use dcert::query::ServiceProvider;
use dcert::store::{MemStore, SegmentStore, Store, StoreConfig};
use dcert::vm::{Executor, StateKey};
use dcert::workloads::blockbench_registry;
use dcert::workloads::kvstore::KvCall;

/// Blocks every scenario drives (one commit per block).
const BLOCKS: u64 = 4;

/// Everything a client could ask the SP, captured as comparable bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Observation {
    index_height: u64,
    history_digest: Option<Hash>,
    inverted_digest: Option<Hash>,
    history_cert: Option<Vec<u8>>,
    inverted_cert: Option<Vec<u8>>,
    history_answer: Vec<u8>,
    keyword_answer: Vec<u8>,
}

fn observe(sp: &ServiceProvider) -> Observation {
    let key = StateKey::new("kvstore", b"acct-main");
    let (results, proof) = sp
        .serve_history("history", &key, 0, 100)
        .expect("history index");
    let mut history_answer = Vec::new();
    encode_seq(&results, &mut history_answer);
    proof.encode(&mut history_answer);

    let (matches, kproof) = sp
        .serve_keywords("inverted", &["stock", "bank"])
        .expect("inverted index");
    let mut keyword_answer = Vec::new();
    encode_seq(&matches, &mut keyword_answer);
    kproof.encode(&mut keyword_answer);

    Observation {
        index_height: sp.index_height(),
        history_digest: sp.certified_digest("history"),
        inverted_digest: sp.certified_digest("inverted"),
        history_cert: sp.certificate("history").map(Encode::to_encoded_bytes),
        inverted_cert: sp.certificate("inverted").map(Encode::to_encoded_bytes),
        history_answer,
        keyword_answer,
    }
}

fn world_indexes() -> Vec<(IndexKind, &'static str)> {
    vec![
        (IndexKind::History, "history"),
        (IndexKind::Inverted, "inverted"),
    ]
}

/// A fresh genesis SP structurally identical to the driven one — the
/// starting point `recover_from` requires.
fn genesis_sp() -> ServiceProvider {
    let executor = Executor::new(Arc::new(blockbench_registry()));
    let engine: Arc<dyn ConsensusEngine> = Arc::new(ProofOfWork::new(TEST_POW_BITS));
    let (genesis, genesis_state) = GenesisBuilder::new().timestamp(1_700_000_000).build();
    let mut sp = ServiceProvider::new(&genesis, genesis_state, executor, engine);
    sp.add_index(IndexKind::History, "history");
    sp.add_index(IndexKind::Inverted, "inverted");
    sp
}

/// Mines the deterministic chain: memo-carrying puts so both keyword and
/// history queries return non-trivial certified answers.
fn memo_blocks(world: &mut World, count: u64) -> Vec<Block> {
    let kp = Keypair::from_seed([77; 32]);
    (1..=count)
        .map(|height| {
            let memo = match height % 3 {
                0 => format!("dividend stock payout at {height}"),
                1 => format!("bank wire transfer at {height}"),
                _ => format!("stock AND bank combo at {height}"),
            };
            let tx = Transaction::sign(
                &kp,
                height,
                "kvstore",
                KvCall::Put {
                    key: b"acct-main".to_vec(),
                    value: memo.into_bytes(),
                }
                .to_encoded_bytes(),
            );
            world.miner.mine(vec![tx], height).expect("mines")
        })
        .collect()
}

/// Drives `blocks` through both SPs (certifying each block once),
/// asserting live equivalence at every commit.
fn drive(
    world: &mut World,
    sp_seg: &mut ServiceProvider,
    sp_mem: &mut ServiceProvider,
    blocks: &[Block],
) {
    for block in blocks {
        let height = block.header.height;
        let inputs_mem = sp_mem.stage_block(block).expect("oracle stages");
        let inputs_seg = sp_seg.stage_block(block).expect("segment SP stages");
        assert_eq!(inputs_mem.len(), inputs_seg.len(), "height {height}");
        let (certs, _) = world
            .ci
            .certify_augmented(block, &inputs_seg)
            .expect("certifies");
        sp_mem.record_certs(&certs);
        sp_seg.record_certs(&certs);
        assert!(sp_mem.store_error().is_none(), "height {height}");
        assert!(sp_seg.store_error().is_none(), "height {height}");
        assert_eq!(
            observe(sp_mem),
            observe(sp_seg),
            "live mem/segment divergence at height {height}"
        );
    }
}

/// Encodes a store's full read surface as comparable bytes.
fn store_image(store: &dyn Store) -> Vec<u8> {
    let mut image = Vec::new();
    for record in store.records() {
        record.encode(&mut image);
    }
    for (key, value) in store.head_entries() {
        key.encode(&mut image);
        value.encode(&mut image);
    }
    store.durable_height().encode(&mut image);
    store.max_height().encode(&mut image);
    image
}

/// Every file in a store directory, sorted by name, with its bytes.
fn dir_image(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .expect("store dir readable")
        .map(|entry| {
            let entry = entry.expect("dir entry");
            let name = entry.file_name().to_string_lossy().into_owned();
            let bytes = std::fs::read(entry.path()).expect("file readable");
            (name, bytes)
        })
        .collect();
    files.sort();
    files
}

/// Runs the deterministic dual-SP scenario into `dir`, returning the
/// final observation and both stores (mem oracle, segment).
fn dual_run(dir: &Path) -> (Observation, Box<dyn Store>, Box<dyn Store>) {
    let (mut world, mut sp_seg) = World::deterministic(world_indexes());
    let mut sp_mem = genesis_sp();
    sp_mem.attach_store(Box::new(MemStore::new()));
    sp_seg.attach_store(Box::new(
        SegmentStore::open(StoreConfig::new(dir)).expect("segment store opens"),
    ));
    let blocks = memo_blocks(&mut world, BLOCKS);
    drive(&mut world, &mut sp_seg, &mut sp_mem, &blocks);
    let tip = observe(&sp_seg);
    let mem = sp_mem.take_store().expect("oracle store attached");
    let seg = sp_seg.take_store().expect("segment store attached");
    (tip, mem, seg)
}

/// Trust anchors shared by every deterministic world.
fn anchors() -> (PublicKey, Hash) {
    let (world, _) = World::deterministic(Vec::new());
    (world.ias.public_key(), expected_measurement())
}

#[test]
fn store_reads_identical_after_identical_appends() {
    let dir = temp_dir("eq-reads");
    let (_, mem, seg) = dual_run(&dir);
    assert_eq!(mem.backend(), "mem");
    assert_eq!(seg.backend(), "segment");
    assert_eq!(mem.durable_height(), BLOCKS);
    assert_eq!(
        store_image(mem.as_ref()),
        store_image(seg.as_ref()),
        "Store read surface diverged between backends"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn same_history_produces_byte_identical_segment_files() {
    let dir_a = temp_dir("eq-disk-a");
    let dir_b = temp_dir("eq-disk-b");
    let (tip_a, _, seg_a) = dual_run(&dir_a);
    let (tip_b, _, seg_b) = dual_run(&dir_b);
    assert_eq!(tip_a, tip_b, "two identical runs observed differently");
    // Close both stores so every byte is on disk before comparing.
    drop(seg_a);
    drop(seg_b);
    let image_a = dir_image(&dir_a);
    let image_b = dir_image(&dir_b);
    assert!(!image_a.is_empty(), "run left no files");
    assert_eq!(
        image_a.iter().map(|(name, _)| name).collect::<Vec<_>>(),
        image_b.iter().map(|(name, _)| name).collect::<Vec<_>>(),
    );
    for ((name, bytes_a), (_, bytes_b)) in image_a.iter().zip(&image_b) {
        assert_eq!(bytes_a, bytes_b, "{name}: same history, different bytes");
    }
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}

#[test]
fn sp_close_and_reopen_answers_identically() {
    let dir = temp_dir("eq-reopen");
    let (tip, mem, seg) = dual_run(&dir);
    let pre_close = store_image(seg.as_ref());
    drop(seg); // orderly close

    let reopened = SegmentStore::open(StoreConfig::new(&dir)).expect("reopens clean");
    assert_eq!(reopened.durable_height(), BLOCKS);
    assert_eq!(
        store_image(&reopened),
        pre_close,
        "reopen changed the read surface"
    );
    assert_eq!(store_image(&reopened), store_image(mem.as_ref()));

    let (ias_key, measurement) = anchors();
    let sp = genesis_sp()
        .recover_from(&ias_key, &measurement, Box::new(reopened))
        .expect("re-verification succeeds");
    assert_eq!(observe(&sp), tip, "recovered SP diverged from the live one");
    std::fs::remove_dir_all(&dir).ok();
}

/// The certificate stream a sequential CI issues for the memo chain —
/// what both archives are fed.
fn cert_stream() -> &'static Vec<NetMessage> {
    static STREAM: OnceLock<Vec<NetMessage>> = OnceLock::new();
    STREAM.get_or_init(|| {
        let (mut world, _) = World::deterministic(Vec::new());
        let blocks = memo_blocks(&mut world, BLOCKS);
        blocks
            .iter()
            .map(|block| {
                let (cert, _) = world.ci.certify_block(block).expect("certifies");
                NetMessage::BlockCert {
                    header: block.header.clone(),
                    cert,
                }
            })
            .collect()
    })
}

fn encoded(messages: &[NetMessage]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for message in messages {
        message.encode(&mut bytes);
    }
    bytes
}

#[test]
fn archive_resyncs_identically_on_mem_and_segment_stores() {
    let stream = cert_stream();
    let (ias_key, measurement) = anchors();
    let dir = temp_dir("eq-archive");

    let archive_mem = CertArchive::new(Arc::new(Gossip::new()));
    let archive_seg = CertArchive::with_store(
        Arc::new(Gossip::new()),
        Box::new(SegmentStore::open(StoreConfig::new(&dir)).expect("opens")),
        &ias_key,
        &measurement,
    )
    .expect("empty store recovers");

    for message in stream {
        archive_mem.publish(message.clone());
        archive_seg.publish(message.clone());
        // The publisher's retry loop re-sends; retention must stay
        // idempotent on both backends.
        archive_seg.publish(message.clone());
    }
    assert!(archive_seg.store_error().is_none());
    assert_eq!(archive_mem.retained_len(), stream.len());
    assert_eq!(archive_seg.retained_len(), stream.len());
    assert_eq!(archive_mem.tip_height(), archive_seg.tip_height());
    assert_eq!(
        encoded(&archive_mem.messages_in(1, BLOCKS)),
        encoded(&archive_seg.messages_in(1, BLOCKS)),
    );
    assert_eq!(archive_seg.durable_height(), BLOCKS);

    // Orderly handover: detach the store, reopen it, and hand it to a
    // successor archive — which must re-verify and answer identically.
    let store = archive_seg.into_store().expect("store attached");
    drop(store);
    let reopened = SegmentStore::open(StoreConfig::new(&dir)).expect("reopens clean");
    let successor = CertArchive::with_store(
        Arc::new(Gossip::new()),
        Box::new(reopened),
        &ias_key,
        &measurement,
    )
    .expect("recovered certificates re-verify");
    assert_eq!(successor.retained_len(), stream.len());
    assert_eq!(
        encoded(&successor.messages_in(1, BLOCKS)),
        encoded(&archive_mem.messages_in(1, BLOCKS)),
        "successor archive diverged from the in-memory oracle"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pruned_archives_answer_identically_including_after_reopen() {
    let stream = cert_stream();
    let (ias_key, measurement) = anchors();
    let dir = temp_dir("eq-prune");
    let horizon = 3;

    let archive_mem = CertArchive::new(Arc::new(Gossip::new()));
    let archive_seg = CertArchive::with_store(
        Arc::new(Gossip::new()),
        Box::new(SegmentStore::open(StoreConfig::new(&dir)).expect("opens")),
        &ias_key,
        &measurement,
    )
    .expect("empty store recovers");
    for message in stream {
        archive_mem.publish(message.clone());
        archive_seg.publish(message.clone());
    }
    archive_mem.prune_below(horizon);
    archive_seg.prune_below(horizon);
    assert!(archive_seg.store_error().is_none());
    assert_eq!(archive_mem.retained_len(), archive_seg.retained_len());
    assert_eq!(
        encoded(&archive_mem.messages_in(1, BLOCKS)),
        encoded(&archive_seg.messages_in(1, BLOCKS)),
        "pruned archives diverged while live"
    );

    // A SegmentStore prunes at segment granularity and may retain more
    // bytes than the mem oracle — but recovery must drop records below
    // the recorded watermark, so the *answers* stay identical.
    drop(archive_seg.into_store());
    let reopened = SegmentStore::open(StoreConfig::new(&dir)).expect("reopens clean");
    let successor = CertArchive::with_store(
        Arc::new(Gossip::new()),
        Box::new(reopened),
        &ias_key,
        &measurement,
    )
    .expect("recovered certificates re-verify");
    assert_eq!(
        encoded(&successor.messages_in(1, BLOCKS)),
        encoded(&archive_mem.messages_in(1, BLOCKS)),
        "reopened pruned archive resurrected pruned certificates"
    );
    std::fs::remove_dir_all(&dir).ok();
}
