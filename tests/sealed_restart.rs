//! CI restart with sealed keys: `sk_enc` survives an enclave restart on
//! the same platform (SGX sealed storage), so clients keep their cached
//! attestation and the certificate chain continues under one key.

mod common;

use std::sync::Arc;

use common::TEST_POW_BITS;
use dcert::chain::{ConsensusEngine, FullNode, GenesisBuilder, ProofOfWork};
use dcert::core::{expected_measurement, CertError, CertificateIssuer, SuperlightClient};
use dcert::primitives::hash::Address;
use dcert::sgx::{AttestationService, CostModel};
use dcert::vm::Executor;
use dcert::workloads::{blockbench_registry, Workload, WorkloadGen};

struct Fixture {
    executor: Executor,
    engine: Arc<dyn ConsensusEngine>,
    genesis: dcert::chain::Block,
    miner: FullNode,
    ias: AttestationService,
}

fn fixture() -> Fixture {
    let executor = Executor::new(Arc::new(blockbench_registry()));
    let engine: Arc<dyn ConsensusEngine> = Arc::new(ProofOfWork::new(TEST_POW_BITS));
    let (genesis, state) = GenesisBuilder::new().timestamp(1_700_000_000).build();
    let miner = FullNode::new(
        &genesis,
        state,
        executor.clone(),
        engine.clone(),
        Address::from_seed(1),
    );
    Fixture {
        executor,
        engine,
        genesis,
        miner,
        ias: AttestationService::with_seed([0xA5; 32]),
    }
}

const PLATFORM: [u8; 32] = [0xCC; 32];

#[test]
fn restart_preserves_pk_enc_and_the_chain_continues() {
    let mut fx = fixture();
    let (_, genesis_state) = GenesisBuilder::new().timestamp(1_700_000_000).build();
    let mut ci = CertificateIssuer::new_on_platform(
        PLATFORM,
        &fx.genesis,
        genesis_state,
        fx.executor.clone(),
        fx.engine.clone(),
        Vec::new(),
        &mut fx.ias,
        CostModel::zero(),
    )
    .unwrap();
    let original_pk = ci.pk_enc();

    // Certify a few blocks, let the client follow.
    let mut client = SuperlightClient::new(fx.ias.public_key(), expected_measurement());
    let mut gen = WorkloadGen::new(Workload::KvStore { keyspace: 16 }, 4, 7);
    let mut checkpoint = None;
    for height in 1..=4u64 {
        let block = fx.miner.mine(gen.next_block(3), height).unwrap();
        let (cert, _) = ci.certify_block(&block).unwrap();
        client.validate_chain(&block.header, &cert).unwrap();
        checkpoint = Some((block.header.clone(), cert));
    }
    let (checkpoint_header, checkpoint_cert) = checkpoint.unwrap();

    // "Power cycle": seal the key, snapshot the state, drop the CI.
    let sealed = ci.seal_enclave_key();
    let snapshot = ci.node().state().clone();
    drop(ci);

    let mut resumed = CertificateIssuer::resume_on_platform(
        PLATFORM,
        &sealed,
        fx.genesis.hash(),
        &checkpoint_header,
        &checkpoint_cert,
        snapshot,
        fx.executor.clone(),
        fx.engine.clone(),
        Vec::new(),
        &mut fx.ias,
        CostModel::zero(),
    )
    .unwrap();
    assert_eq!(
        resumed.pk_enc(),
        original_pk,
        "sk_enc must survive the restart"
    );

    // The resumed CI continues the chain and the client accepts without a
    // new key (its attestation cache still covers pk_enc).
    for height in 5..=7u64 {
        let block = fx.miner.mine(gen.next_block(3), height).unwrap();
        let (cert, _) = resumed.certify_block(&block).unwrap();
        assert_eq!(cert.pk_enc, original_pk);
        client.validate_chain(&block.header, &cert).unwrap();
    }
    assert_eq!(client.height(), Some(7));
}

#[test]
fn sealed_key_does_not_open_on_another_machine() {
    let mut fx = fixture();
    let (_, genesis_state) = GenesisBuilder::new().timestamp(1_700_000_000).build();
    let mut ci = CertificateIssuer::new_on_platform(
        PLATFORM,
        &fx.genesis,
        genesis_state,
        fx.executor.clone(),
        fx.engine.clone(),
        Vec::new(),
        &mut fx.ias,
        CostModel::zero(),
    )
    .unwrap();
    let block = fx.miner.mine(Vec::new(), 1).unwrap();
    let (cert, _) = ci.certify_block(&block).unwrap();
    let sealed = ci.seal_enclave_key();
    let snapshot = ci.node().state().clone();

    // A thief copies the blob to a different machine.
    let stolen = CertificateIssuer::resume_on_platform(
        [0xDD; 32],
        &sealed,
        fx.genesis.hash(),
        &block.header,
        &cert,
        snapshot,
        fx.executor.clone(),
        fx.engine.clone(),
        Vec::new(),
        &mut fx.ias,
        CostModel::zero(),
    );
    assert!(matches!(stolen, Err(CertError::Attestation(_))));
}

#[test]
fn tampered_sealed_blob_rejected() {
    let mut fx = fixture();
    let (_, genesis_state) = GenesisBuilder::new().timestamp(1_700_000_000).build();
    let mut ci = CertificateIssuer::new_on_platform(
        PLATFORM,
        &fx.genesis,
        genesis_state,
        fx.executor.clone(),
        fx.engine.clone(),
        Vec::new(),
        &mut fx.ias,
        CostModel::zero(),
    )
    .unwrap();
    let block = fx.miner.mine(Vec::new(), 1).unwrap();
    let (cert, _) = ci.certify_block(&block).unwrap();
    let mut sealed = ci.seal_enclave_key();
    sealed.ciphertext[0] ^= 0xff;
    let snapshot = ci.node().state().clone();

    let result = CertificateIssuer::resume_on_platform(
        PLATFORM,
        &sealed,
        fx.genesis.hash(),
        &block.header,
        &cert,
        snapshot,
        fx.executor.clone(),
        fx.engine.clone(),
        Vec::new(),
        &mut fx.ias,
        CostModel::zero(),
    );
    assert!(matches!(result, Err(CertError::Attestation(_))));
}
