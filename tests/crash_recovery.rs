//! Crash/restart drills for the pipelined Certificate Issuer.
//!
//! `tests/sealed_restart.rs` proves an *orderly* restart preserves
//! `sk_enc`. This suite kills the pipeline mid-run ([`CertPipeline::kill`]
//! — every stage abandons its in-flight work, as `kill -9` would) and
//! resumes from the sealed enclave state
//! ([`CertificateIssuer::resume_on_platform`]) plus the last *published*
//! certificate. The invariants drilled:
//!
//! - **no missing heights**: the published stream before the crash plus
//!   the resumed issuance covers every height exactly once,
//! - **no conflicting double-issue**: the enclave's sealed monotonic
//!   watermark (`last_signed_height`) refuses to sign at or below a
//!   height it already signed, so a rolled-back host cannot obtain a
//!   second certificate chain,
//! - **byte determinism**: everything issued, before or after the crash,
//!   is byte-identical to what a never-crashed sequential issuer signs.

mod common;

use std::sync::Arc;
use std::time::Duration;

use common::{temp_dir, World, TEST_PLATFORM_SEED};
use dcert::chain::{Block, BlockHeader, ChainState, ConsensusEngine, FullNode};
use dcert::core::{
    expected_measurement, BlockInput, CertError, CertJob, CertPipeline, CertProgram, Certificate,
    CertificateIssuer, EcallRequest, EcallResponse, Gossip, NetMessage, PipelineConfig, Transport,
};
use dcert::obs::{Registry, Snapshot};
use dcert::primitives::hash::Address;
use dcert::query::sp::IndexKind;
use dcert::sgx::enclave::Sealable;
use dcert::sgx::CostModel;
use dcert::store::{SegmentStore, Store, StoreConfig};
use dcert::vm::Executor;
use dcert::workloads::{Workload, WorkloadGen};

const CHAIN: u64 = 6;

/// Mines the drill chain and computes the sequential ground-truth
/// certificate per height (fresh worlds share seeds, so every run signs
/// byte-identically).
fn ground_truth() -> (Vec<Block>, Vec<(BlockHeader, Certificate)>) {
    let (mut world, _) = World::deterministic(Vec::new());
    let blocks = world.mine_blocks(Workload::KvStore { keyspace: 16 }, CHAIN as usize, 3, 9);
    let expected = blocks
        .iter()
        .map(|block| {
            let (cert, _) = world.ci.certify_block(block).expect("sequential certify");
            (block.header.clone(), cert)
        })
        .collect();
    (blocks, expected)
}

/// The chain state at `height`, rebuilt the way a restarted CI would:
/// replaying the persisted blocks on a fresh node.
fn state_at(
    genesis: &Block,
    genesis_state: &ChainState,
    executor: &Executor,
    engine: &Arc<dyn ConsensusEngine>,
    blocks: &[Block],
    height: u64,
) -> ChainState {
    let mut replica = FullNode::new(
        genesis,
        genesis_state.clone(),
        executor.clone(),
        engine.clone(),
        Address::from_seed(0xED),
    );
    for block in &blocks[..height as usize] {
        replica.apply(block).expect("replays persisted block");
    }
    replica.state().clone()
}

/// Kills the pipeline after exactly `kill_after` certificates have been
/// published, then resumes from the sealed enclave state and finishes the
/// chain. Lock-step submission makes the kill point — and therefore the
/// sealed watermark — deterministic: when certificate `k` is on the bus,
/// no later job has entered the pipeline.
fn drill_kill_at(kill_after: u64) {
    let (blocks, expected) = ground_truth();
    let (world, _) = World::deterministic(Vec::new());
    let World {
        executor,
        engine,
        genesis,
        genesis_state,
        mut ias,
        ci,
        ..
    } = world;
    let original_pk = ci.pk_enc();

    let bus = Arc::new(Gossip::new());
    let rx = bus.join();
    let pipeline = CertPipeline::spawn(
        ci,
        PipelineConfig::default(),
        bus.clone() as Arc<dyn Transport>,
    );

    let mut published: Vec<(BlockHeader, Certificate)> = Vec::new();
    for block in blocks.iter().take(kill_after as usize) {
        pipeline
            .submit(CertJob::Block(block.clone()))
            .expect("accepts");
        match rx
            .recv_timeout(Duration::from_secs(30))
            .expect("cert published")
        {
            NetMessage::BlockCert { header, cert } => published.push((header, cert)),
            other => panic!("unexpected message {other:?}"),
        }
    }

    // Crash: stages abandon in-flight work; the sealed enclave state is
    // what survives (in a real deployment the seal is written at every
    // checkpoint, long before the crash).
    pipeline.kill();
    let sealed = pipeline.seal_enclave_key();
    drop(pipeline); // the process is gone; its CI is never reassembled

    let (checkpoint, checkpoint_cert) = published.last().expect("published at least one").clone();
    assert_eq!(checkpoint.height, kill_after);
    let snapshot = state_at(
        &genesis,
        &genesis_state,
        &executor,
        &engine,
        &blocks,
        kill_after,
    );

    let mut resumed = CertificateIssuer::resume_on_platform(
        TEST_PLATFORM_SEED,
        &sealed,
        genesis.hash(),
        &checkpoint,
        &checkpoint_cert,
        snapshot,
        executor.clone(),
        engine.clone(),
        Vec::new(),
        &mut ias,
        CostModel::zero(),
    )
    .expect("resume from sealed state");
    assert_eq!(
        resumed.pk_enc(),
        original_pk,
        "sk_enc must survive the crash"
    );

    for block in &blocks[kill_after as usize..] {
        let (cert, _) = resumed.certify_block(block).expect("resumed issuance");
        published.push((block.header.clone(), cert));
    }

    // No missing heights, no duplicates, and the combined pre-crash +
    // post-resume stream is byte-identical to the never-crashed issuer's.
    let heights: Vec<u64> = published.iter().map(|(h, _)| h.height).collect();
    assert_eq!(heights, (1..=CHAIN).collect::<Vec<_>>());
    assert_eq!(
        published, expected,
        "kill at {kill_after}: stream diverged from sequential issuance"
    );
}

#[test]
fn kill_and_resume_at_every_height() {
    for kill_after in 1..CHAIN {
        drill_kill_at(kill_after);
    }
}

/// Mid-flight crash: all jobs submitted up front, so the kill lands while
/// the sequencer/preparers/issuer hold in-flight work at their stage
/// boundaries. Anything signed but unpublished is lost with the process;
/// the sealed watermark then makes the outcome binary — resume and finish,
/// or refuse with a height-regression rejection — but never a second
/// certificate for an already-signed height.
#[test]
fn mid_flight_kill_never_double_issues() {
    let (blocks, expected) = ground_truth();
    let (world, _) = World::deterministic(Vec::new());
    let World {
        executor,
        engine,
        genesis,
        genesis_state,
        mut ias,
        ci,
        ..
    } = world;

    let bus = Arc::new(Gossip::new());
    let rx = bus.join();
    let pipeline = CertPipeline::spawn(
        ci,
        PipelineConfig {
            preparers: 2,
            queue_depth: 2,
            ..PipelineConfig::default()
        },
        bus.clone() as Arc<dyn Transport>,
    );
    for block in &blocks {
        pipeline
            .submit(CertJob::Block(block.clone()))
            .expect("accepts");
    }
    // Let at least one certificate out, then pull the plug mid-stream.
    let first = rx
        .recv_timeout(Duration::from_secs(30))
        .expect("first cert");
    pipeline.kill();
    let sealed = pipeline.seal_enclave_key();
    drop(pipeline);

    // Everything that made it to the bus before the crash.
    let mut published: Vec<(BlockHeader, Certificate)> = Vec::new();
    let mut collect = |msg: NetMessage| match msg {
        NetMessage::BlockCert { header, cert } => published.push((header, cert)),
        other => panic!("unexpected message {other:?}"),
    };
    collect(first);
    while let Ok(msg) = rx.try_recv() {
        collect(msg);
    }
    let (checkpoint, checkpoint_cert) = published.last().expect("at least one").clone();
    let tip = checkpoint.height;
    let snapshot = state_at(&genesis, &genesis_state, &executor, &engine, &blocks, tip);

    let mut resumed = CertificateIssuer::resume_on_platform(
        TEST_PLATFORM_SEED,
        &sealed,
        genesis.hash(),
        &checkpoint,
        &checkpoint_cert,
        snapshot,
        executor.clone(),
        engine.clone(),
        Vec::new(),
        &mut ias,
        CostModel::zero(),
    )
    .expect("restore itself always succeeds on the same platform");

    match resumed.certify_block(&blocks[tip as usize]) {
        Ok((cert, _)) => {
            // Watermark == published tip: nothing signed was lost; finish
            // the chain and require byte-identity with the ground truth.
            published.push((blocks[tip as usize].header.clone(), cert));
            for block in &blocks[tip as usize + 1..] {
                let (cert, _) = resumed.certify_block(block).expect("resumed issuance");
                published.push((block.header.clone(), cert));
            }
            assert_eq!(published, expected);
        }
        // Certificates were signed but lost with the crash: the enclave
        // fails safe rather than signing a second chain over heights it
        // already certified. (Typed as EnclaveRejected here because the
        // error crosses the ECall boundary as a rejection string.)
        Err(CertError::EnclaveRejected(reason)) => {
            assert!(
                reason.contains("height regression"),
                "unexpected rejection: {reason}"
            );
        }
        Err(other) => panic!("unexpected resume failure: {other}"),
    }
    // In both outcomes: every published height appears exactly once and
    // matches the sequential issuer byte-for-byte.
    let heights: Vec<u64> = published.iter().map(|(h, _)| h.height).collect();
    let mut deduped = heights.clone();
    deduped.dedup();
    assert_eq!(heights, deduped, "duplicate height in the published stream");
    for (pair, want) in published.iter().zip(expected.iter()) {
        assert_eq!(pair, want);
    }
}

/// One run of the SP persistence drill: certify a short chain into a
/// [`SegmentStore`], kill the process mid-append (torn tail past the
/// durable watermark), reopen into the same metrics registry, recover
/// through certificate re-verification, and return the replay-stable
/// part of the snapshot for cross-run comparison.
fn sp_store_drill(label: &str) -> Snapshot {
    const DRILL_CHAIN: u64 = 4;
    let indexes = vec![(IndexKind::History, "history")];
    let (mut world, mut sp) = World::deterministic(indexes.clone());
    let obs = Registry::new();
    let dir = temp_dir(label);
    sp.attach_store(Box::new(
        SegmentStore::open(StoreConfig::new(&dir).obs(obs.clone())).expect("drill store opens"),
    ));

    let blocks = world.mine_blocks(
        Workload::KvStore { keyspace: 16 },
        DRILL_CHAIN as usize,
        3,
        9,
    );
    for block in &blocks {
        let inputs = sp.stage_block(block).expect("stages");
        let (certs, _) = world
            .ci
            .certify_augmented(block, &inputs)
            .expect("certifies");
        sp.record_certs(&certs);
    }
    assert!(sp.store_error().is_none(), "store poisoned during the run");
    let live_digest = sp.certified_digest("history");
    let live_cert = sp.certificate("history").cloned();

    // Crash: the store dies with the process, mid-way through appending
    // the next record — half a frame header lands past the watermark.
    drop(sp.take_store());
    drop(sp);
    let seg = dir.join("seg-00000000.dcs");
    let mut bytes = std::fs::read(&seg).expect("segment readable");
    bytes.extend_from_slice(&[0xEE; 5]);
    std::fs::write(&seg, bytes).expect("segment writable");

    // Restart: recovery counts its replays and the tail truncation in the
    // same registry the live run used.
    let store =
        SegmentStore::open(StoreConfig::new(&dir).obs(obs.clone())).expect("torn tail recovers");
    assert_eq!(store.durable_height(), DRILL_CHAIN);
    let (_, fresh_sp) = World::deterministic(indexes);
    let recovered = fresh_sp
        .recover_from(
            &world.ias.public_key(),
            &expected_measurement(),
            Box::new(store),
        )
        .expect("recovered pages re-verify");
    assert_eq!(recovered.index_height(), DRILL_CHAIN);
    assert_eq!(recovered.certified_digest("history"), live_digest);
    assert_eq!(recovered.certificate("history").cloned(), live_cert);

    let snap = obs.snapshot();
    // Two streams (writes + keywords) per block, replayed once.
    assert_eq!(snap.counter("store.recovery_replays"), DRILL_CHAIN * 2);
    assert_eq!(snap.counter("store.tail_truncations"), 1);
    assert_eq!(snap.counter("store.truncated_bytes"), 5);
    std::fs::remove_dir_all(&dir).ok();
    snap.without_wall_clock()
}

/// The persistence layer's crash drill: an SP on a [`SegmentStore`]
/// killed mid-append resumes byte-identically, and the whole drill —
/// including the `store.recovery_replays` / `store.tail_truncations`
/// counters — is replay-stable across independent runs.
#[test]
fn sp_on_segment_store_resumes_with_replay_stable_metrics() {
    let a = sp_store_drill("sp-drill-a");
    let b = sp_store_drill("sp-drill-b");
    assert_eq!(a, b, "store metrics diverged between identical drills");
}

/// A valid [`BlockInput`] for a height-1 block over the genesis state —
/// the raw material for driving [`CertProgram::handle`] directly (typed
/// errors do not survive the ECall boundary, so the watermark check is
/// asserted at the program level).
fn input_for(
    genesis: &Block,
    state: &ChainState,
    executor: &Executor,
    block: &Block,
) -> BlockInput {
    let calls: Vec<_> = block.txs.iter().map(|t| t.call.clone()).collect();
    let execution = executor.execute_block(state, &calls);
    let touched = execution.touched_keys();
    BlockInput {
        prev_header: genesis.header.clone(),
        prev_cert: None,
        block: block.clone(),
        reads: execution
            .reads
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect(),
        state_proof: state.prove(&touched),
    }
}

/// The watermark inside the enclave: after signing height `h`, a second
/// signature at any height `<= h` is refused with a typed error — even
/// for a perfectly valid competing block (the equivocation a rolled-back
/// or malicious host would need).
#[test]
fn enclave_refuses_competing_block_at_signed_height() {
    let (blocks, _) = ground_truth();
    let (world, _) = World::deterministic(Vec::new());
    let World {
        executor,
        engine,
        genesis,
        genesis_state,
        ias,
        ..
    } = world;

    // A competing, fully valid block at height 1 (different miner and
    // txs, freshly mined). The *chain* rules accept it as an alternative
    // child of genesis; the enclave's watermark must not.
    let mut fork_miner = FullNode::new(
        &genesis,
        genesis_state.clone(),
        executor.clone(),
        engine.clone(),
        Address::from_seed(0xF0),
    );
    let mut gen = WorkloadGen::new(Workload::KvStore { keyspace: 16 }, 8, 77);
    let competing = fork_miner.mine(gen.next_block(2), 1).expect("mines fork");
    assert_ne!(competing.hash(), blocks[0].hash(), "fixture must fork");

    let mut program = CertProgram::new(
        genesis.hash(),
        ias.public_key(),
        executor.clone(),
        engine.clone(),
        Vec::new(),
    );
    program.handle(EcallRequest::Init).expect("init");

    let honest_input = input_for(&genesis, &genesis_state, &executor, &blocks[0]);
    match program.handle(EcallRequest::SigGen(honest_input)) {
        Ok(EcallResponse::Signature(_)) => {}
        other => panic!("honest block must sign, got {other:?}"),
    }
    assert_eq!(program.last_signed_height(), 1);

    let competing_input = input_for(&genesis, &genesis_state, &executor, &competing);
    let err = program
        .handle(EcallRequest::SigGen(competing_input))
        .expect_err("watermark must refuse");
    assert!(
        matches!(
            err,
            CertError::HeightRegression {
                last_signed: 1,
                offered: 1
            }
        ),
        "expected HeightRegression, got {err}"
    );
}

/// Sealed-state format: the watermark rides in the blob (key ‖ height),
/// and a legacy 32-byte key-only blob still imports with watermark 0.
#[test]
fn sealed_state_carries_watermark_and_accepts_legacy_blobs() {
    let (world, _) = World::deterministic(Vec::new());
    let mut program = CertProgram::new(
        world.genesis.hash(),
        world.ias.public_key(),
        world.executor.clone(),
        world.engine.clone(),
        Vec::new(),
    );
    program
        .import_state(&[])
        .expect("empty import clears state");
    assert_eq!(program.last_signed_height(), 0);

    // A synthetic 40-byte blob: key ‖ big-endian watermark.
    let mut with_watermark = vec![0x51; 32];
    with_watermark.extend_from_slice(&7u64.to_be_bytes());
    program
        .import_state(&with_watermark)
        .expect("40-byte import");
    assert_eq!(program.last_signed_height(), 7);
    let exported = program.export_state();
    assert_eq!(exported.len(), 40, "export = key ‖ watermark");
    assert_eq!(&exported[32..], &7u64.to_be_bytes());

    // Legacy blob: the same bytes truncated to the key alone.
    program
        .import_state(&exported[..32])
        .expect("legacy 32-byte import");
    assert_eq!(
        program.last_signed_height(),
        0,
        "legacy blobs predate the watermark"
    );
    // Anything else is malformed.
    assert!(program.import_state(&exported[..16]).is_err());
}
