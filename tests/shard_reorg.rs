//! Cross-shard reorg drills for the sharded certification fleet.
//!
//! The fleet partitions the chain into per-shard height ranges, so a
//! reorg interacts with *range geometry*: a fork can land exactly on a
//! range boundary (invalidating whole ranges), inside a range
//! (invalidating a suffix of one range plus every range above it), or
//! truncate the chain outright. In every geometry the acceptance
//! criterion is the same as the tentpole's: the fleet's aggregate output
//! on the reorged chain must be byte-identical to a sequential
//! deterministic CI certifying that chain from genesis.
//!
//! The stale-range refusal itself — the aggregator enclave's monotonic
//! height watermark rejecting a fold of superseded ranges — is pinned
//! both end-to-end (via the `shard.stale_range_refusals` metric) and
//! directly at the `CertProgram::handle` level.

mod common;

use std::sync::{Arc, Mutex};

use common::{World, TEST_PLATFORM_SEED, TEST_SIGNING_SEED};
use dcert::chain::Block;
use dcert::core::{
    CertError, Certificate, EcallRequest, EcallResponse, RangeCert, ShardFleetConfig,
    ShardedCertEngine, SharedStore,
};
use dcert::obs::Registry;
use dcert::primitives::codec::Encode;
use dcert::primitives::hash::Hash;
use dcert::primitives::keys::Keypair;
use dcert::sgx::{CostModel, Quote};
use dcert::store::MemStore;
use dcert::workloads::Workload;

/// Builds a fleet seed-identical to the deterministic world's CI.
fn fleet_for(world: &World, config: ShardFleetConfig) -> ShardedCertEngine {
    ShardedCertEngine::new_deterministic(
        TEST_PLATFORM_SEED,
        TEST_SIGNING_SEED,
        &world.genesis,
        world.genesis_state.clone(),
        world.executor.clone(),
        world.engine.clone(),
        CostModel::zero(),
        config,
    )
    .expect("fleet configures")
}

/// Mines a chain that shares its first `shared` heights with a `base`
/// seed and then diverges: a fresh deterministic world replays the base
/// seed for the prefix and switches tx seeds for the fork suffix.
fn mine_fork(shared: usize, fork_len: usize, base_seed: u64, fork_seed: u64) -> Vec<Block> {
    let (mut world, _) = World::deterministic(Vec::new());
    let prefix = world.mine_blocks(Workload::SmallBank { customers: 16 }, shared, 2, base_seed);
    let suffix = world.mine_blocks(
        Workload::SmallBank { customers: 16 },
        fork_len,
        2,
        fork_seed,
    );
    prefix.into_iter().chain(suffix).collect()
}

/// Sequential oracle: a fresh seed-identical CI certifying `blocks` from
/// genesis, height by height.
fn sequential_oracle(blocks: &[Block]) -> Vec<Certificate> {
    let (mut world, _) = World::deterministic(Vec::new());
    blocks
        .iter()
        .map(|block| world.ci.certify_block(block).expect("oracle certifies").0)
        .collect()
}

/// Asserts byte-identity at every height.
fn assert_bytes_equal(oracle: &[Certificate], fleet: &[Certificate], label: &str) {
    assert_eq!(oracle.len(), fleet.len(), "{label}: certificate count");
    for (at, (a, b)) in oracle.iter().zip(fleet).enumerate() {
        assert_eq!(
            a.to_encoded_bytes(),
            b.to_encoded_bytes(),
            "{label}: bytes diverge at height {}",
            at + 1
        );
    }
}

/// Runs the original-then-reorg sequence through one fleet and checks the
/// final stream against the sequential oracle for the reorged chain.
/// Returns the metric registry for geometry-specific assertions.
fn drill(original: &[Block], reorged: &[Block], shards: usize, chunk: u64) -> Registry {
    let registry = Registry::new();
    let store: SharedStore = Arc::new(Mutex::new(Box::new(MemStore::new())));
    let (mut fleet_world, _) = World::deterministic(Vec::new());
    let mut config = ShardFleetConfig::new(shards, chunk);
    config.registry = registry.clone();
    config.store = Some(store);
    let mut fleet = fleet_for(&fleet_world, config);

    let first = fleet
        .certify_chain(original, &mut fleet_world.ias)
        .expect("original chain certifies");
    assert_bytes_equal(&sequential_oracle(original), &first, "pre-reorg");

    let certs = fleet
        .certify_chain(reorged, &mut fleet_world.ias)
        .expect("reorged chain certifies");
    assert_bytes_equal(&sequential_oracle(reorged), &certs, "post-reorg");
    registry
}

/// A reorg landing exactly on a shard-range boundary: 12 blocks in four
/// 3-block ranges, forking at height 7. The two ranges below the fork are
/// kept; exactly the 6 blocks above it are re-certified.
#[test]
fn reorg_on_exact_shard_boundary() {
    let original = mine_fork(12, 0, 101, 101);
    let reorged = mine_fork(6, 6, 101, 202);
    assert_eq!(
        original[5].header.hash(),
        reorged[5].header.hash(),
        "heights 1..=6 must be shared"
    );
    assert_ne!(
        original[6].header.hash(),
        reorged[6].header.hash(),
        "fork must land at height 7"
    );

    let registry = drill(&original, &reorged, 4, 3);
    let snap = registry.snapshot();
    assert_eq!(
        snap.counter("shard.recert_blocks"),
        6,
        "exactly the post-boundary suffix is re-certification work"
    );
    assert_eq!(snap.counter("shard.stale_range_refusals"), 1);
    assert_eq!(snap.counter("shard.agg.fresh_boots"), 2);
}

/// A reorg landing mid-range and therefore spanning two shard ranges:
/// forking at height 5 invalidates the tail of range [4,6] and all of
/// [7,9] and [10,12]; the partially-shared range re-certifies from its
/// start.
#[test]
fn reorg_spanning_two_shard_ranges() {
    let original = mine_fork(12, 0, 103, 103);
    let reorged = mine_fork(4, 8, 103, 204);
    assert_eq!(original[3].header.hash(), reorged[3].header.hash());
    assert_ne!(original[4].header.hash(), reorged[4].header.hash());

    let registry = drill(&original, &reorged, 4, 3);
    let snap = registry.snapshot();
    // Only range [1,3] survives; re-certification restarts at height 4
    // even though height 4 itself is shared — a partially-invalidated
    // range is re-certified whole.
    assert_eq!(snap.counter("shard.recert_blocks"), 9);
    assert_eq!(snap.counter("shard.stale_range_refusals"), 1);
}

/// A reorg onto a *shorter* chain: the certified view shrinks, every
/// height above the fork is re-issued, and the output still matches the
/// sequential oracle on the short chain.
#[test]
fn reorg_onto_shorter_chain() {
    let original = mine_fork(12, 0, 105, 105);
    let reorged = mine_fork(6, 2, 105, 206);
    assert_eq!(reorged.len(), 8);

    let registry = drill(&original, &reorged, 4, 3);
    let snap = registry.snapshot();
    assert_eq!(snap.counter("shard.stale_range_refusals"), 1);
}

/// After a reorg the fresh aggregator keeps serving extensions: new
/// blocks on the reorged chain fold incrementally (no further fresh
/// boots) and stay byte-identical to the oracle.
#[test]
fn extension_after_reorg_stays_equivalent() {
    let original = mine_fork(9, 0, 107, 107);
    let (mut fork_world, _) = World::deterministic(Vec::new());
    let prefix = fork_world.mine_blocks(Workload::SmallBank { customers: 16 }, 5, 2, 107);
    let fork = fork_world.mine_blocks(Workload::SmallBank { customers: 16 }, 4, 2, 208);
    let reorged: Vec<Block> = prefix.iter().chain(&fork).cloned().collect();
    let extension = fork_world.mine_blocks(Workload::SmallBank { customers: 16 }, 3, 2, 209);
    let extended: Vec<Block> = reorged.iter().chain(&extension).cloned().collect();

    let registry = Registry::new();
    let (mut fleet_world, _) = World::deterministic(Vec::new());
    let mut config = ShardFleetConfig::new(3, 2);
    config.registry = registry.clone();
    let mut fleet = fleet_for(&fleet_world, config);
    fleet
        .certify_chain(&original, &mut fleet_world.ias)
        .expect("original certifies");
    fleet
        .certify_chain(&reorged, &mut fleet_world.ias)
        .expect("reorg certifies");
    let boots_after_reorg = registry.snapshot().counter("shard.agg.fresh_boots");

    let certs = fleet
        .certify_chain(&extended, &mut fleet_world.ias)
        .expect("post-reorg extension certifies");
    assert_bytes_equal(
        &sequential_oracle(&extended),
        &certs,
        "post-reorg extension",
    );
    assert_eq!(
        registry.snapshot().counter("shard.agg.fresh_boots"),
        boots_after_reorg,
        "an extension must reuse the post-reorg aggregator"
    );
}

/// The watermark refusal itself, at the trusted-program level: after a
/// fold advances the aggregator's signed-height watermark, re-folding
/// ranges that start at or below it is a typed `HeightRegression` — the
/// mechanism that forces the fleet to boot a fresh aggregator after a
/// reorg instead of silently double-issuing.
#[test]
fn aggregator_refuses_stale_range_fold() {
    let (world, _) = World::deterministic(Vec::new());
    let mut ias = world.ias;

    // A "shard" platform the IAS trusts, producing hand-built range
    // certificates with the *real* program measurement — the fold's
    // acceptance check is measurement equality, not block replay, so the
    // header digests can be arbitrary.
    let platform = Keypair::from_seed([0x33; 32]);
    ias.register_platform(platform.public());
    let shard_key = Keypair::from_seed([0x44; 32]);
    let quote = Quote::sign(
        &platform,
        dcert::core::expected_measurement(),
        Certificate::key_binding(&shard_key.public()),
    );
    let report = ias.attest(&quote).expect("shard attests");

    let make_range = |anchor_digest: Hash, first: u64, digests: Vec<Hash>| {
        let last = first + digests.len() as u64 - 1;
        let binding = RangeCert::binding_digest(&anchor_digest, first, last, &digests);
        RangeCert {
            pk_range: shard_key.public(),
            report: report.clone(),
            anchor_digest,
            first,
            last,
            header_digests: digests,
            signature: shard_key.sign(binding.as_bytes()),
        }
    };

    let d: Vec<Hash> = (0..4u64)
        .map(|i| dcert::primitives::hash::hash_bytes(format!("hdr-{i}").as_bytes()))
        .collect();
    let genesis_digest = world.genesis.header.hash();
    let rc1 = make_range(genesis_digest, 1, vec![d[0], d[1]]);
    let rc2 = make_range(d[1], 3, vec![d[2], d[3]]);

    let mut program = dcert::core::CertProgram::new(
        world.genesis.hash(),
        ias.public_key(),
        world.executor.clone(),
        world.engine.clone(),
        Vec::new(),
    )
    .with_signing_seed(TEST_SIGNING_SEED);
    program
        .handle(EcallRequest::Init)
        .expect("program initializes");

    let response = program
        .handle(EcallRequest::FoldRanges {
            anchor: world.genesis.header.clone(),
            anchor_cert: None,
            ranges: vec![rc1.clone(), rc2],
        })
        .expect("first fold succeeds");
    match response {
        EcallResponse::Signatures(sigs) => assert_eq!(sigs.len(), 4),
        other => panic!("expected signatures, got {other:?}"),
    }
    assert_eq!(program.last_signed_height(), 4);

    // Re-folding from height 1 is now a height regression: the enclave
    // refuses before any verification work.
    let err = program
        .handle(EcallRequest::FoldRanges {
            anchor: world.genesis.header.clone(),
            anchor_cert: None,
            ranges: vec![rc1],
        })
        .expect_err("stale fold must be refused");
    assert_eq!(
        err,
        CertError::HeightRegression {
            last_signed: 4,
            offered: 1,
        }
    );
}
