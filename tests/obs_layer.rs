//! The observability layer's own contract, pinned through the public
//! facade: histogram bucket-edge semantics, get-or-create registration,
//! the replay-variant naming convention (`_ns`/`_depth` stripped,
//! `_nanos` kept), disabled-registry inertness, and same-seed snapshot
//! determinism for an instrumented end-to-end component run.

use dcert::core::{FaultConfig, NetMessage, Partition, SimNet, Transport};
use dcert::obs::{Buckets, Registry, Snapshot};

/// Bucket edges are inclusive upper bounds: a value equal to a bound
/// lands in that bound's bucket, one past the last bound overflows.
#[test]
fn histogram_bucket_edges_are_inclusive_upper_bounds() {
    let registry = Registry::new();
    let hist = registry.histogram("edges", Buckets::linear(10, 10, 3));
    for value in [10, 11, 30, 31, 9] {
        hist.observe(value);
    }
    let snap = registry.snapshot();
    let edges = &snap.histograms["edges"];
    assert_eq!(edges.count, 5);
    assert_eq!(edges.sum, 10 + 11 + 30 + 31 + 9);
    assert_eq!(edges.min, Some(9));
    assert_eq!(edges.max, Some(31));
    let buckets: Vec<(Option<u64>, u64)> = edges.buckets.iter().map(|b| (b.le, b.count)).collect();
    assert_eq!(
        buckets,
        vec![
            (Some(10), 2), // 9 and the boundary value 10
            (Some(20), 1), // 11
            (Some(30), 1), // the boundary value 30
            (None, 1),     // 31 overflows
        ]
    );
}

/// The preset bucket layouts cover their stated ranges.
#[test]
fn preset_buckets_cover_their_ranges() {
    // latency(): 1 µs doubling-by-4 up to the tens-of-seconds range.
    let latency = Buckets::latency();
    assert_eq!(latency.bounds().first(), Some(&1_000));
    assert!(*latency.bounds().last().expect("non-empty") >= 10_000_000_000);
    // bytes(): 64 B up to the hundreds-of-megabytes range.
    let bytes = Buckets::bytes();
    assert_eq!(bytes.bounds().first(), Some(&64));
    assert!(*bytes.bounds().last().expect("non-empty") >= 100_000_000);
    // exponential/linear generate strictly increasing bounds.
    for buckets in [latency, bytes, Buckets::exponential(3, 7, 9)] {
        assert!(buckets.bounds().windows(2).all(|w| w[0] < w[1]));
    }
}

/// Registration is get-or-create: handles to the same name share state,
/// and a histogram re-registered with different buckets keeps the
/// original layout instead of splitting the stream.
#[test]
fn registration_is_get_or_create() {
    let registry = Registry::new();
    registry.counter("shared").inc();
    registry.counter("shared").add(2);
    assert_eq!(registry.counter("shared").get(), 3);

    let first = registry.histogram("h", Buckets::from_bounds(vec![5, 50]));
    first.observe(7);
    let second = registry.histogram("h", Buckets::from_bounds(vec![999]));
    second.observe(8);
    let snap = registry.snapshot();
    let hist = &snap.histograms["h"];
    assert_eq!(hist.count, 2, "both handles fed one histogram");
    assert_eq!(
        hist.buckets.len(),
        3,
        "original bounds [5, 50] + overflow survive re-registration"
    );
}

/// The replay convention: `_ns` (wall-clock) and `_depth` (scheduling)
/// metrics are stripped by `without_wall_clock`; `_nanos` (simulated,
/// deterministic time) survives.
#[test]
fn nanos_metrics_survive_wall_clock_stripping() {
    let registry = Registry::new();
    registry.timer("stage.issue_ns").observe(123);
    registry.gauge("queue_depth").record_max(4);
    registry
        .histogram("publish.backoff_nanos", Buckets::latency())
        .observe(2_000_000);
    registry.counter("sim_charge_nanos").add(9);

    let stripped = registry.snapshot().without_wall_clock();
    assert!(!stripped.histograms.contains_key("stage.issue_ns"));
    assert!(!stripped.gauges.contains_key("queue_depth"));
    assert!(stripped.histograms.contains_key("publish.backoff_nanos"));
    assert_eq!(stripped.counter("sim_charge_nanos"), 9);
}

/// A disabled registry hands out detached handles: recording is a no-op
/// and the snapshot stays empty, so instrumented code needs no branches.
#[test]
fn disabled_registry_records_nothing() {
    let registry = Registry::disabled();
    assert!(!registry.is_enabled());
    let counter = registry.counter("ghost");
    counter.add(41);
    counter.inc();
    registry.gauge("ghost_gauge").set(-7);
    registry.timer("ghost_ns").observe(1);
    assert_eq!(counter.get(), 42, "the detached handle still works locally");
    assert_eq!(registry.snapshot(), Snapshot::default());
}

/// Same seed, same instrumented run, same snapshot — byte for byte. The
/// SimNet's metrics carry no wall-clock, so the *full* snapshot (not
/// just `without_wall_clock`) must replay identically.
#[test]
fn same_seed_runs_snapshot_identically() {
    let run = || {
        let faults = FaultConfig {
            drop_rate: 0.2,
            duplicate_rate: 0.2,
            corrupt_rate: 0.1,
            reorder_window: 3,
            partitions: vec![Partition {
                start: 2,
                end: 5,
                endpoints: vec![0],
            }],
        };
        let net = SimNet::new(0xED, faults);
        let registry = Registry::new();
        net.attach_obs(&registry);
        let rx = net.join();
        for height in 1..=12u64 {
            net.publish(NetMessage::CertRequest {
                from: height,
                to: height,
            });
            if height % 4 == 0 {
                net.advance(1);
            }
        }
        net.heal();
        while rx.try_recv().is_ok() {}
        registry.snapshot()
    };
    let (a, b) = (run(), run());
    assert!(
        a.counter("net.attempted") > 0,
        "the run must have recorded traffic"
    );
    assert_eq!(a, b, "same-seed snapshots diverged");
    assert_eq!(a.to_json(), b.to_json(), "encoding is not canonical");
}
