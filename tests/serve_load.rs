//! Load battery for the `dcert-serve` front-end: a six-figure client
//! population with zipfian keys, bursty arrivals, and slow-loris readers
//! replayed over the virtual clock. Invariants under load:
//!
//! - queues and waiter tables never exceed their configured bounds
//!   (checked via the `serve.*` high-water gauges),
//! - every admitted request reaches exactly one terminal outcome —
//!   response, typed refusal, or client-side cancel; nothing is silently
//!   dropped,
//! - shed traffic is always a *typed* refusal with a reason,
//! - the deterministic `serve.*` metrics are replay-stable: same seed,
//!   same snapshot (`CHAOS_SEED=<n> cargo test --test serve_load --
//!   --include-ignored` runs the full-scale matrix entry).

mod common;

use std::collections::HashMap;

use common::World;
use dcert::chain::Block;
use dcert::obs::{Registry, Snapshot};
use dcert::query::sp::IndexKind;
use dcert::serve::{
    QuerySpec, RateLimit, RefusalReason, ServeConfig, ServeFront, ServeRequest, ServeWire,
    Submitted,
};
use dcert::vm::StateKey;
use dcert::workloads::{ServeEvent, ServeLoadConfig, ServeLoadGen, ServeQueryKind, Workload};

/// Keys the backing kvstore workload writes.
const KEYSPACE: u64 = 64;

/// Queries the front executes per virtual tick during replay.
const PUMP_BUDGET: usize = 48;

/// Outcome tallies plus the final metric snapshot of one load replay.
struct LoadRun {
    submitted: u64,
    cache_hits: u64,
    responses: u64,
    refused_admission: u64,
    refused_pump: u64,
    cancelled: u64,
    snapshot: Snapshot,
}

impl LoadRun {
    fn shed(&self) -> u64 {
        self.refused_admission + self.refused_pump
    }

    /// The terminal-outcome conservation law.
    fn assert_accounted(&self, seed: u64) {
        assert_eq!(
            self.cache_hits + self.responses + self.shed() + self.cancelled,
            self.submitted,
            "CHAOS_SEED={seed}: requests leaked without a terminal outcome"
        );
    }
}

/// Builds a certified three-index world and wraps its SP in a front.
fn certified_front(blocks: usize, config: ServeConfig, obs: &Registry) -> (ServeFront, Vec<Block>) {
    let (mut world, sp) = World::deterministic(vec![
        (IndexKind::History, "history"),
        (IndexKind::Inverted, "inverted"),
        (IndexKind::Aggregate, "agg"),
    ]);
    // One extra block is mined but not staged: the replay stages it
    // halfway through to exercise invalidation under load.
    let mined = world.mine_blocks(Workload::KvStore { keyspace: KEYSPACE }, blocks + 1, 4, 5);
    let mut front = ServeFront::new(sp, config);
    for block in &mined[..blocks] {
        let inputs = front.stage_block(block).expect("block stages");
        let (certs, _) = world
            .ci
            .certify_augmented(block, &inputs)
            .expect("block certifies");
        front.record_certs(&certs);
    }
    // Attached after setup so the `serve.*` metrics cover only the load.
    front.attach_obs(obs);
    (front, mined)
}

/// Maps a schedule event onto the three registered indexes.
fn spec_for(event: &ServeEvent, height: u64) -> QuerySpec {
    let key = StateKey::new("kvstore", format!("key-{}", event.key).as_bytes());
    match event.kind {
        ServeQueryKind::History => QuerySpec::History {
            index: "history".to_owned(),
            key,
            t1: 1,
            t2: height.max(1),
        },
        ServeQueryKind::Keywords => QuerySpec::Keywords {
            index: "inverted".to_owned(),
            keywords: vec![format!("key-{}", event.key)],
        },
        ServeQueryKind::Aggregate => QuerySpec::Aggregate {
            index: "agg".to_owned(),
            key,
            t1: 1,
            t2: height.max(1),
        },
        // Op-stream kinds map the schedule's nested [0,100] window onto
        // the certified height range monotonically, so containment in
        // the schedule stays containment in the spec.
        ServeQueryKind::HistoryOp => QuerySpec::HistoryOp {
            index: "history".to_owned(),
            key,
            t1: 1 + event.window.0 * height.max(1) / 100,
            t2: 1 + event.window.1 * height.max(1) / 100,
        },
        ServeQueryKind::AggregateOp => QuerySpec::AggregateOp {
            index: "agg".to_owned(),
            key,
            t1: 1 + event.window.0 * height.max(1) / 100,
            t2: 1 + event.window.1 * height.max(1) / 100,
        },
    }
}

/// Replays the seeded schedule: admit each burst, cancel its slow-loris
/// waiters, spend `PUMP_BUDGET` queries per quiet tick, stage the fresh
/// block halfway through, and drain to empty at the end.
fn run_load(load: ServeLoadConfig, config: ServeConfig, seed: u64) -> LoadRun {
    let obs = Registry::new();
    let (mut front, mined) = certified_front(3, config, &obs);
    let fresh = mined.last().expect("one unstaged block");
    let schedule: Vec<ServeEvent> = ServeLoadGen::new(load, seed).collect();

    let mut run = LoadRun {
        submitted: schedule.len() as u64,
        cache_hits: 0,
        responses: 0,
        refused_admission: 0,
        refused_pump: 0,
        cancelled: 0,
        snapshot: obs.snapshot(),
    };
    let mut admitted: HashMap<u64, u64> = HashMap::new();
    let mut burst_abandons: Vec<(u64, u64)> = Vec::new();
    let mut current_tick = schedule.first().map_or(0, |e| e.tick);
    let half = schedule.len() / 2;

    let mut drain =
        |front: &mut ServeFront, run: &mut LoadRun, admitted: &mut HashMap<u64, u64>, tick: u64| {
            for (_, wire) in front.pump(tick, PUMP_BUDGET) {
                match wire {
                    ServeWire::Response(response) => {
                        admitted.remove(&response.id);
                        run.responses += 1;
                    }
                    ServeWire::Refusal(refusal) => {
                        admitted.remove(&refusal.id);
                        run.refused_pump += 1;
                    }
                    ServeWire::Request(_) => unreachable!("the front never emits requests"),
                }
            }
        };

    for (i, event) in schedule.iter().enumerate() {
        if event.tick != current_tick {
            for (client, id) in burst_abandons.drain(..) {
                if front.cancel(client, id) {
                    admitted.remove(&id);
                    run.cancelled += 1;
                }
            }
            for tick in current_tick + 1..=event.tick {
                drain(&mut front, &mut run, &mut admitted, tick);
            }
            current_tick = event.tick;
        }
        if i == half {
            front.stage_block(fresh).expect("fresh block stages");
            front.advance_staged();
        }
        let id = i as u64;
        let request = ServeRequest {
            client: event.client,
            id,
            query: spec_for(event, front.sp().index_height()),
        };
        match front.submit(event.tick, request) {
            Ok(Submitted::CacheHit(_)) => run.cache_hits += 1,
            Ok(Submitted::Enqueued { .. }) => {
                admitted.insert(id, event.tick);
                if event.abandon {
                    burst_abandons.push((event.client, id));
                }
            }
            Err(refusal) => {
                // Shed = typed, never silent: every refusal names a reason.
                match refusal.reason {
                    RefusalReason::QueueFull { depth } => assert!(depth > 0),
                    RefusalReason::RateLimited { retry_after_ticks } => {
                        assert!(retry_after_ticks > 0)
                    }
                    RefusalReason::Backlogged { waiters } => assert!(waiters > 0),
                    RefusalReason::UnknownIndex => panic!("all test indexes exist"),
                }
                run.refused_admission += 1;
            }
        }
    }

    for (client, id) in burst_abandons.drain(..) {
        if front.cancel(client, id) {
            admitted.remove(&id);
            run.cancelled += 1;
        }
    }
    let mut tick = current_tick;
    while front.inflight_entries() > 0 {
        tick += 1;
        drain(&mut front, &mut run, &mut admitted, tick);
    }
    assert!(
        admitted.is_empty(),
        "CHAOS_SEED={seed}: waiters silently dropped: {admitted:?}"
    );
    assert_eq!(front.parked_waiters(), 0, "CHAOS_SEED={seed}");
    run.snapshot = obs.snapshot();
    run
}

/// The smoke-scale profile: the full 10⁵-client population, fewer
/// requests than the bench replays.
fn smoke_load(requests: u64) -> ServeLoadConfig {
    ServeLoadConfig {
        requests,
        keyspace: 96,
        slow_loris_permille: 50,
        ..ServeLoadConfig::default()
    }
}

fn tight_config() -> ServeConfig {
    ServeConfig {
        queue_capacity: 48,
        max_waiters: 512,
        cache_capacity: 128,
        rate_limit: RateLimit {
            tokens_per_tick: 2,
            burst: 6,
        },
    }
}

/// **Satellite 2a.** 10⁵ clients, bursty zipfian traffic: queues stay
/// within their configured bounds the whole run (high-water gauges), and
/// the request-conservation law holds.
#[test]
fn hundred_thousand_clients_bounded_queues() {
    let seed = 42;
    let config = tight_config();
    let run = run_load(smoke_load(20_000), config, seed);
    run.assert_accounted(seed);
    assert_eq!(run.snapshot.counter("serve.requests"), run.submitted);

    let queue_high = run.snapshot.gauge("serve.queue_high_water");
    assert!(queue_high > 0, "CHAOS_SEED={seed}: load never queued");
    assert!(
        queue_high <= config.queue_capacity as i64,
        "CHAOS_SEED={seed}: queue exceeded its bound: {queue_high} > {}",
        config.queue_capacity
    );
    let waiter_high = run.snapshot.gauge("serve.waiter_high_water");
    assert!(
        waiter_high <= config.max_waiters as i64,
        "CHAOS_SEED={seed}: waiter table exceeded its bound: {waiter_high} > {}",
        config.max_waiters
    );

    // Bursts of 512 against a 48-deep queue must shed — and every shed is
    // accounted in a typed `serve.shed_*` counter.
    assert!(
        run.shed() > 0,
        "CHAOS_SEED={seed}: nothing shed under burst"
    );
    let typed = run.snapshot.counter("serve.shed_queue_full")
        + run.snapshot.counter("serve.shed_rate_limited")
        + run.snapshot.counter("serve.shed_backlogged")
        + run.snapshot.counter("serve.shed_unknown_index");
    assert_eq!(
        typed,
        run.shed(),
        "CHAOS_SEED={seed}: shed requests without a typed reason"
    );

    // Zipfian traffic pays for the machinery: coalescing and the cache
    // both fire, and the mid-run height advance invalidated twice.
    assert!(run.snapshot.counter("serve.coalesce_hits") > 0);
    assert!(run.snapshot.counter("serve.cache_hits") > 0);
    assert_eq!(run.cache_hits, run.snapshot.counter("serve.cache_hits"));
    assert_eq!(run.snapshot.counter("serve.invalidations"), 2);
}

/// **Satellite 2b/4.** Slow-loris clients that abandon admitted requests
/// release their coalescing slots: after the drain no entry and no
/// parked waiter survives, and the release counter saw every cancel.
#[test]
fn slow_loris_abandons_release_coalescing_slots() {
    let seed = 7;
    let load = ServeLoadConfig {
        requests: 4_000,
        slow_loris_permille: 300,
        ..smoke_load(4_000)
    };
    let run = run_load(load, tight_config(), seed);
    run.assert_accounted(seed);
    assert!(
        run.cancelled > 0,
        "CHAOS_SEED={seed}: no abandons generated"
    );
    // `waiters_released` counts entries whose *last* waiter walked away —
    // a subset of the cancels, but never zero under this abandon rate.
    let released = run.snapshot.counter("serve.waiters_released");
    assert!(
        released > 0 && released <= run.cancelled,
        "CHAOS_SEED={seed}: {} entries released for {} cancels",
        released,
        run.cancelled
    );
}

/// **Satellite 2c.** Every admission-refusal variant shows up as a typed
/// reason under an adversarially tight configuration.
#[test]
fn tight_front_sheds_with_every_typed_reason() {
    let (mut front, _) = certified_front(
        2,
        ServeConfig {
            queue_capacity: 2,
            max_waiters: 3,
            cache_capacity: 0,
            rate_limit: RateLimit {
                tokens_per_tick: 1,
                burst: 2,
            },
        },
        &Registry::new(),
    );
    let spec = |k: u64| QuerySpec::History {
        index: "history".to_owned(),
        key: StateKey::new("kvstore", format!("key-{k}").as_bytes()),
        t1: 1,
        t2: 2,
    };
    let submit = |front: &mut ServeFront, client: u64, id: u64, k: u64| {
        front.submit(
            0,
            ServeRequest {
                client,
                id,
                query: spec(k),
            },
        )
    };
    // Two distinct specs fill the queue; three waiters fill the table.
    assert!(submit(&mut front, 1, 0, 0).is_ok()); // c1 spends token #1
    assert!(submit(&mut front, 2, 1, 0).is_ok()); // coalesced: waiter #2
    assert!(submit(&mut front, 3, 2, 1).is_ok()); // entry #2, waiter #3
    let backlogged = submit(&mut front, 4, 3, 0).expect_err("waiter table is full");
    assert!(matches!(
        backlogged.reason,
        RefusalReason::Backlogged { waiters: 3 }
    ));
    // c1 spends token #2 (rate limit is checked before the backlog)…
    assert!(submit(&mut front, 1, 4, 2).is_err()); // backlogged, not rate-limited
                                                   // …so its third same-tick submit exhausts the burst of 2.
    let rate_limited = submit(&mut front, 1, 5, 3).expect_err("burst tokens exhausted");
    assert!(matches!(
        rate_limited.reason,
        RefusalReason::RateLimited { .. }
    ));
    // Drain everything, then fill the 2-deep queue and overflow it.
    let replies = front.pump(1, usize::MAX);
    assert!(!replies.is_empty());
    assert!(front
        .submit(
            3,
            ServeRequest {
                client: 5,
                id: 7,
                query: spec(5)
            }
        )
        .is_ok());
    assert!(front
        .submit(
            3,
            ServeRequest {
                client: 6,
                id: 8,
                query: spec(6)
            }
        )
        .is_ok());
    let queue_full = front
        .submit(
            3,
            ServeRequest {
                client: 7,
                id: 9,
                query: spec(7),
            },
        )
        .expect_err("queue is full");
    assert!(matches!(
        queue_full.reason,
        RefusalReason::QueueFull { depth: 2 }
    ));
}

/// **Satellite 2d.** Replay stability: the same seed produces the same
/// outcome tallies and — after stripping wall-clock metrics — the same
/// canonical snapshot, across the small seed matrix.
#[test]
fn serve_snapshots_are_replay_stable() {
    for seed in [1u64, 42, 1234] {
        let a = run_load(smoke_load(3_000), tight_config(), seed);
        let b = run_load(smoke_load(3_000), tight_config(), seed);
        a.assert_accounted(seed);
        assert_eq!(a.responses, b.responses, "CHAOS_SEED={seed}");
        assert_eq!(a.cache_hits, b.cache_hits, "CHAOS_SEED={seed}");
        assert_eq!(a.shed(), b.shed(), "CHAOS_SEED={seed}");
        assert_eq!(a.cancelled, b.cancelled, "CHAOS_SEED={seed}");
        assert_eq!(
            a.snapshot.without_wall_clock(),
            b.snapshot.without_wall_clock(),
            "CHAOS_SEED={seed}: deterministic serve metrics diverged"
        );
        assert_eq!(
            a.snapshot.without_wall_clock().to_json(),
            b.snapshot.without_wall_clock().to_json(),
            "CHAOS_SEED={seed}: snapshot encoding is not canonical"
        );
    }
}

/// Op-stream load: with the op-query knob enabled, contained windows on
/// hot keys are answered from covering cached op answers (the
/// `serve.window_hits` path) and the whole run stays replay-stable.
#[test]
fn op_query_load_hits_covering_windows_and_replays() {
    let seed = 1234;
    let load = ServeLoadConfig {
        keyspace: 16,
        op_query_permille: 700,
        ..smoke_load(4_000)
    };
    let a = run_load(load, tight_config(), seed);
    let b = run_load(load, tight_config(), seed);
    a.assert_accounted(seed);
    assert!(
        a.snapshot.counter("serve.window_hits") > 0,
        "CHAOS_SEED={seed}: nested op windows never hit a covering answer"
    );
    assert!(
        a.snapshot.counter("serve.backend_calls") > 0,
        "CHAOS_SEED={seed}: op load executed no queries"
    );
    assert_eq!(
        a.snapshot.without_wall_clock(),
        b.snapshot.without_wall_clock(),
        "CHAOS_SEED={seed}: op-query serve metrics diverged"
    );
}

/// The CI seed-matrix entry at full bench scale: `CHAOS_SEED=<n> cargo
/// test --test serve_load -- --include-ignored`.
#[test]
#[ignore = "seed-matrix entry; run with CHAOS_SEED=<n> -- --include-ignored"]
fn seed_matrix_entry() {
    let seed = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1u64);
    let a = run_load(smoke_load(50_000), tight_config(), seed);
    let b = run_load(smoke_load(50_000), tight_config(), seed);
    a.assert_accounted(seed);
    b.assert_accounted(seed);
    assert!(
        a.snapshot.gauge("serve.queue_high_water") <= tight_config().queue_capacity as i64,
        "CHAOS_SEED={seed}: queue bound violated at scale"
    );
    assert_eq!(
        a.snapshot.without_wall_clock(),
        b.snapshot.without_wall_clock(),
        "CHAOS_SEED={seed}: full-scale replay diverged"
    );
}
