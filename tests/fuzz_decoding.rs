//! Adversarial decoding: every wire type in the system is fed random and
//! mutated bytes. Decoders must return errors — never panic, never hang,
//! never allocate unboundedly — because certificates, proofs, and blocks
//! arrive from untrusted peers.

use dcert::chain::{Block, BlockHeader, Transaction};
use dcert::core::{Certificate, EcallRequest, EcallResponse};
use dcert::merkle::{MbAppendProof, MbRangeProof, MhtProof, MptProof, SmtProof};
use dcert::primitives::codec::{Decode, Encode};
use dcert::primitives::hash::{hash_bytes, Hash};
use dcert::primitives::keys::Keypair;
use dcert::sgx::AttestationReport;
use proptest::prelude::*;

/// Decodes `bytes` as every wire type; all failures must be graceful.
fn try_decode_everything(bytes: &[u8]) {
    let _ = BlockHeader::decode_all(bytes);
    let _ = Block::decode_all(bytes);
    let _ = Transaction::decode_all(bytes);
    let _ = Certificate::decode_all(bytes);
    let _ = AttestationReport::decode_all(bytes);
    let _ = EcallRequest::decode_all(bytes);
    let _ = EcallResponse::decode_all(bytes);
    let _ = SmtProof::decode_all(bytes);
    let _ = MhtProof::decode_all(bytes);
    let _ = MptProof::decode_all(bytes);
    let _ = MbRangeProof::decode_all(bytes);
    let _ = MbAppendProof::decode_all(bytes);
    let _ = dcert::query::history::HistoryProof::decode_all(bytes);
    let _ = dcert::query::inverted::KeywordProof::decode_all(bytes);
    let _ = dcert::baselines::skiplist::SkipRangeProof::decode_all(bytes);
    let _ = dcert::baselines::lineage::LineageProof::decode_all(bytes);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Pure junk never panics any decoder.
    #[test]
    fn prop_random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        try_decode_everything(&bytes);
    }

    /// Structured prefixes (valid-looking tags + lengths) never panic.
    #[test]
    fn prop_tagged_junk_never_panics(
        tag in 0u8..8,
        len in any::<u32>(),
        body in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let mut bytes = vec![tag];
        bytes.extend_from_slice(&len.to_be_bytes());
        bytes.extend_from_slice(&body);
        try_decode_everything(&bytes);
    }

    /// Mutating one byte of a *valid* encoding either still decodes (to a
    /// different value the verifier will reject) or fails cleanly.
    #[test]
    fn prop_bitflipped_transactions_never_panic(pos in 0usize..160, flip in 1u8..=255) {
        let tx = Transaction::sign(&Keypair::from_seed([9; 32]), 7, "kvstore", b"payload".to_vec());
        let mut bytes = tx.to_encoded_bytes();
        let idx = pos % bytes.len();
        bytes[idx] ^= flip;
        if let Ok(decoded) = Transaction::decode_all(&bytes) {
            // A decodable mutation must fail signature verification or
            // decode to the identical transaction (flip in ignored
            // range is impossible: every byte is significant).
            if decoded != tx {
                prop_assert!(decoded.verify().is_err() || decoded.id() != tx.id());
            }
        }
    }

    /// Mutated SMT proofs never panic the verifier, and when a mutation
    /// still verifies (e.g. a flipped bit turned an absent key into a
    /// *different* absent key — a legitimately different proof), it must
    /// not change any authenticated claim about the original keys.
    #[test]
    fn prop_bitflipped_smt_proofs_sound(pos in 0usize..4096, flip in 1u8..=255) {
        let mut tree = dcert::merkle::SparseMerkleTree::new();
        for i in 0..20u32 {
            tree.insert(hash_bytes(format!("k{i}")), vec![i as u8]);
        }
        let root = tree.root();
        let original_keys = [hash_bytes("k3"), hash_bytes("missing")];
        let proof = tree.prove(&original_keys);
        let mut bytes = proof.to_encoded_bytes();
        let idx = pos % bytes.len();
        bytes[idx] ^= flip;
        if let Ok(decoded) = SmtProof::decode_all(&bytes) {
            if decoded.verify(&root).is_ok() {
                // Soundness: every original key the mutated proof still
                // covers must carry the true pre-state value.
                for key in &original_keys {
                    if let Ok(claimed) = decoded.pre_value_hash(key) {
                        let truth = tree.get(key).map(hash_bytes);
                        prop_assert_eq!(claimed, truth);
                    }
                }
            }
        }
    }

    /// Mutated certificates never panic and never validate.
    #[test]
    fn prop_bitflipped_certificates_safe(pos in 0usize..512, flip in 1u8..=255) {
        // Assemble one valid certificate.
        let mut ias = dcert::sgx::AttestationService::with_seed([1; 32]);
        let platform = Keypair::from_seed([2; 32]);
        ias.register_platform(platform.public());
        let enclave_key = Keypair::from_seed([3; 32]);
        let measurement = hash_bytes(b"program");
        let quote = dcert::sgx::Quote::sign(
            &platform,
            measurement,
            Certificate::key_binding(&enclave_key.public()),
        );
        let digest = hash_bytes(b"hdr");
        let cert = Certificate {
            pk_enc: enclave_key.public(),
            report: ias.attest(&quote).unwrap(),
            digest,
            signature: enclave_key.sign(digest.as_bytes()),
        };
        cert.verify(&ias.public_key(), &measurement, &digest).unwrap();

        let mut bytes = cert.to_encoded_bytes();
        let idx = pos % bytes.len();
        bytes[idx] ^= flip;
        if let Ok(decoded) = Certificate::decode_all(&bytes) {
            if decoded != cert {
                prop_assert!(
                    decoded.verify(&ias.public_key(), &measurement, &digest).is_err(),
                    "a mutated certificate must never verify"
                );
            }
        }
    }
}

#[test]
fn empty_input_is_rejected_by_every_decoder() {
    // Most types need at least one byte; none may panic on zero bytes.
    try_decode_everything(&[]);
}

#[test]
fn truncated_valid_encodings_fail_cleanly() {
    let tx = Transaction::sign(
        &Keypair::from_seed([9; 32]),
        7,
        "kvstore",
        b"payload".to_vec(),
    );
    let bytes = tx.to_encoded_bytes();
    for cut in 0..bytes.len() {
        assert!(
            Transaction::decode_all(&bytes[..cut]).is_err(),
            "truncation at {cut} must fail"
        );
    }
}

#[test]
fn length_prefix_bombs_are_bounded() {
    // A 4 GB length prefix must be rejected before any allocation.
    let mut bytes = Vec::new();
    u32::MAX.encode(&mut bytes);
    bytes.extend_from_slice(&[0u8; 64]);
    assert!(Vec::<u8>::decode_all(&bytes).is_err());
    let _ = Block::decode_all(&bytes);
    let _ = SmtProof::decode_all(&bytes);
}

#[test]
fn hash_decode_requires_exactly_32_bytes() {
    assert!(Hash::decode_all(&[0u8; 31]).is_err());
    assert!(Hash::decode_all(&[0u8; 33]).is_err());
    assert!(Hash::decode_all(&[0u8; 32]).is_ok());
}
