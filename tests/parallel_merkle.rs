//! Determinism suite for the parallel Merkle builder.
//!
//! The chunked `std::thread::scope` construction in `dcert_merkle::mht` is
//! a pure per-level map, so its output must be *byte-identical* to the
//! sequential build for every leaf count and thread count — roots, full
//! level vectors (via `MerkleTree`'s structural equality), and every proof.
//! These tests sweep the edge cases deterministically (empty tree, single
//! leaf, odd promotions, the parallel-gate boundary) and then let proptest
//! roam leaf counts 0..=1025 across thread counts {1, 2, 3, 4, 8}.

use dcert::merkle::{build_threads, set_build_threads, MerkleTree};
use dcert::primitives::hash::{hash_bytes, Hash};
use proptest::prelude::*;

/// Distinct, deterministic leaf hashes: `H(index || salt)`.
fn leaves(n: usize, salt: u64) -> Vec<Hash> {
    (0..n as u64)
        .map(|i| hash_bytes([i.to_be_bytes(), salt.to_be_bytes()].concat()))
        .collect()
}

/// Asserts that building `leaves` with `threads` workers matches the
/// sequential build exactly: same tree (all levels), same root, and the
/// same — still verifying — proof for every leaf.
fn assert_build_matches_sequential(leaves: &[Hash], threads: usize) {
    let sequential = MerkleTree::from_leaf_hashes_with_threads(leaves.to_vec(), 1);
    let parallel = MerkleTree::from_leaf_hashes_with_threads(leaves.to_vec(), threads);
    assert_eq!(
        sequential,
        parallel,
        "levels diverged at {} leaves / {} threads",
        leaves.len(),
        threads
    );
    assert_eq!(sequential.root(), parallel.root());
    for index in 0..leaves.len() {
        let expected = sequential.prove(index);
        let got = parallel.prove(index);
        assert_eq!(
            expected,
            got,
            "proof {} diverged at {} leaves / {} threads",
            index,
            leaves.len(),
            threads
        );
        if let (Some(proof), Some(leaf)) = (got, leaves.get(index)) {
            assert!(
                proof.verify_leaf_hash(&parallel.root(), *leaf).is_ok(),
                "parallel-built proof must verify"
            );
        }
    }
}

#[test]
fn deterministic_sweep_over_edge_shapes() {
    // Empty, singleton, perfect powers of two, odd promotions on several
    // levels, and both sides of the parallel gate (1024 internal nodes).
    for &n in &[0usize, 1, 2, 3, 5, 8, 33, 1023, 1024, 1025] {
        let items = leaves(n, 7);
        for &threads in &[2usize, 3, 4, 8] {
            assert_build_matches_sequential(&items, threads);
        }
    }
}

#[test]
fn from_items_agrees_with_leaf_hash_path() {
    let items: Vec<Vec<u8>> = (0..1100u64).map(|i| i.to_be_bytes().to_vec()).collect();
    let sequential = MerkleTree::from_items_with_threads(items.iter(), 1);
    for &threads in &[2usize, 4, 8] {
        let parallel = MerkleTree::from_items_with_threads(items.iter(), threads);
        assert_eq!(sequential, parallel);
    }
}

#[test]
fn global_knob_round_trips_and_feeds_default_builders() {
    let before = build_threads();
    set_build_threads(4);
    assert_eq!(build_threads(), 4);
    let items = leaves(1100, 3);
    let via_global = MerkleTree::from_leaf_hashes(items.clone());
    let explicit = MerkleTree::from_leaf_hashes_with_threads(items, 1);
    assert_eq!(
        via_global, explicit,
        "global thread knob must not change output"
    );
    set_build_threads(before);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any leaf count in 0..=1025 builds byte-identically for every thread
    /// count in {1, 2, 3, 4, 8}.
    #[test]
    fn prop_thread_count_never_changes_output(
        n in 0usize..=1025,
        salt in any::<u64>(),
        threads_index in 0usize..5,
    ) {
        let threads = [1usize, 2, 3, 4, 8][threads_index];
        let items = leaves(n, salt);
        let sequential = MerkleTree::from_leaf_hashes_with_threads(items.clone(), 1);
        let parallel = MerkleTree::from_leaf_hashes_with_threads(items.clone(), threads);
        prop_assert_eq!(&sequential, &parallel);
        prop_assert_eq!(sequential.root(), parallel.root());
        // Spot-check proofs at the boundaries and the middle rather than
        // all n (the deterministic sweep covers exhaustive proofs).
        for index in [0, n / 2, n.saturating_sub(1)] {
            prop_assert_eq!(sequential.prove(index), parallel.prove(index));
        }
    }
}
