//! The Fig. 2 certification workflow as concurrent actors: a miner thread
//! publishes blocks, a CI thread certifies and broadcasts certificates,
//! and a superlight client thread follows the chain — all over the gossip
//! bus, with no shared state beyond the network.

mod common;

use std::sync::Arc;
use std::thread;

use common::World;
use dcert::core::{expected_measurement, Gossip, NetMessage, SuperlightClient};
use dcert::workloads::{Workload, WorkloadGen};

const BLOCKS: u64 = 12;

#[test]
fn miner_ci_client_pipeline_over_gossip() {
    let world = World::new();
    let bus = Arc::new(Gossip::new());

    // The CI and client join before the miner starts publishing.
    let ci_rx = bus.join();
    let client_rx = bus.join();

    // Miner actor: mines BLOCKS blocks and shuts the network down.
    let miner_bus = bus.clone();
    let mut miner = world.miner;
    let miner_thread = thread::spawn(move || {
        let mut gen = WorkloadGen::new(Workload::KvStore { keyspace: 32 }, 8, 7);
        for height in 1..=BLOCKS {
            let block = miner.mine(gen.next_block(3), height).expect("mines");
            miner_bus.publish(NetMessage::Block(block));
        }
        miner_bus.publish(NetMessage::Shutdown);
    });

    // CI actor: certifies blocks in arrival order, broadcasts certificates.
    let ci_bus = bus.clone();
    let mut ci = world.ci;
    let ci_thread = thread::spawn(move || {
        let mut certified = 0u64;
        for msg in ci_rx {
            match msg {
                NetMessage::Block(block) => {
                    let header = block.header.clone();
                    let (cert, _) = ci.certify_block(&block).expect("certifies");
                    ci_bus.publish(NetMessage::BlockCert { header, cert });
                    certified += 1;
                }
                NetMessage::Shutdown => {
                    // Relay shutdown so downstream actors know the last
                    // certificate has been published.
                    ci_bus.publish(NetMessage::Shutdown);
                    break;
                }
                _ => {}
            }
        }
        certified
    });

    // Client actor: adopts every certificate that extends its chain.
    let ias_key = world.ias.public_key();
    let client_thread = thread::spawn(move || {
        let mut client = SuperlightClient::new(ias_key, expected_measurement());
        let mut adopted = 0u64;
        let mut shutdowns = 0;
        for msg in client_rx {
            match msg {
                NetMessage::BlockCert { header, cert }
                    if client.validate_chain(&header, &cert).is_ok() =>
                {
                    adopted += 1;
                }
                // First shutdown: the miner is done; second: the CI has
                // published its last certificate.
                NetMessage::Shutdown => {
                    shutdowns += 1;
                    if shutdowns == 2 {
                        break;
                    }
                }
                _ => {}
            }
        }
        (client.height(), adopted)
    });

    miner_thread.join().unwrap();
    let certified = ci_thread.join().unwrap();
    assert_eq!(certified, BLOCKS);
    // Publishes are serialized, so the client saw every certificate before
    // the CI's shutdown relay: it adopted the full chain in order.
    let (height, adopted) = client_thread.join().unwrap();
    assert_eq!(adopted, BLOCKS);
    assert_eq!(height, Some(BLOCKS));
}

#[test]
fn client_handles_reordered_certificates() {
    // Gossip gives no cross-publisher ordering; simulate reordering by
    // delivering certs newest-first. The chain-selection rule adopts the
    // newest and rejects the stale rest — no crash, correct final state.
    let mut world = World::new();
    let mut gen = WorkloadGen::new(Workload::DoNothing, 4, 1);
    let mut certified = Vec::new();
    for height in 1..=5u64 {
        let block = world.miner.mine(gen.next_block(1), height).unwrap();
        let (cert, _) = world.ci.certify_block(&block).unwrap();
        certified.push((block.header.clone(), cert));
    }
    certified.reverse();
    let mut adopted = 0;
    for (header, cert) in &certified {
        if world.client.validate_chain(header, cert).is_ok() {
            adopted += 1;
        }
    }
    assert_eq!(adopted, 1, "only the newest certificate is adopted");
    assert_eq!(world.client.height(), Some(5));
}
