//! Augmented and hierarchical certificate schemes (Algorithms 4–5) across
//! real blocks, plus their forgery paths.

mod common;

use common::World;
use dcert::core::CertError;
use dcert::primitives::hash::hash_bytes;
use dcert::query::sp::IndexKind;
use dcert::workloads::{Workload, WorkloadGen};

fn kv_gen() -> WorkloadGen {
    WorkloadGen::new(Workload::KvStore { keyspace: 32 }, 8, 99)
}

#[test]
fn augmented_scheme_certifies_multi_block_chain() {
    let (mut world, mut sp) = World::with_setup(vec![
        (IndexKind::History, "history"),
        (IndexKind::Inverted, "inverted"),
    ]);
    let mut gen = kv_gen();
    for height in 1..=6u64 {
        let block = world.miner.mine(gen.next_block(4), height).unwrap();
        let inputs = sp.stage_block(&block).unwrap();
        let (certs, breakdown) = world.ci.certify_augmented(&block, &inputs).unwrap();
        assert_eq!(certs.len(), 2);
        // One full-replay ECall per index.
        assert_eq!(breakdown.ecalls, 2);
        sp.record_certs(&certs);
    }
    assert_eq!(sp.height(), 6);
}

#[test]
fn hierarchical_scheme_certifies_multi_block_chain() {
    let (mut world, mut sp) = World::with_setup(vec![
        (IndexKind::History, "history"),
        (IndexKind::Inverted, "inverted"),
    ]);
    let mut gen = kv_gen();
    let mut last = None;
    for height in 1..=6u64 {
        let block = world.miner.mine(gen.next_block(4), height).unwrap();
        let inputs = sp.stage_block(&block).unwrap();
        let (block_cert, idx_certs, breakdown) =
            world.ci.certify_hierarchical(&block, &inputs).unwrap();
        assert_eq!(idx_certs.len(), 2);
        // One block ECall + one light ECall per index.
        assert_eq!(breakdown.ecalls, 3);
        sp.record_certs(&idx_certs);
        last = Some((block, block_cert, idx_certs, inputs));
    }
    // The superlight client adopts the chain and both indexes.
    let (block, block_cert, idx_certs, inputs) = last.unwrap();
    world
        .client
        .validate_chain(&block.header, &block_cert)
        .unwrap();
    for (cert, input) in idx_certs.iter().zip(&inputs) {
        world
            .client
            .validate_index(&input.index_type, input.new_digest, cert)
            .unwrap();
    }
    assert_eq!(
        world.client.index_digest("history"),
        Some(inputs[0].new_digest)
    );
}

#[test]
fn augmented_and_hierarchical_agree_on_digests() {
    // Run the same block stream through two CIs, one per scheme: the
    // certified index digests must be identical.
    let (mut world_a, mut sp_a) = World::with_setup(vec![(IndexKind::History, "history")]);
    let (mut world_h, mut sp_h) = World::with_setup(vec![(IndexKind::History, "history")]);
    let mut gen = kv_gen();
    for height in 1..=4u64 {
        let txs = gen.next_block(4);
        let block_a = world_a.miner.mine(txs.clone(), height).unwrap();
        let block_h = world_h.miner.mine(txs, height).unwrap();
        assert_eq!(block_a.hash(), block_h.hash(), "same chain on both sides");

        let in_a = sp_a.stage_block(&block_a).unwrap();
        let in_h = sp_h.stage_block(&block_h).unwrap();
        assert_eq!(in_a[0].new_digest, in_h[0].new_digest);

        let (certs_a, _) = world_a.ci.certify_augmented(&block_a, &in_a).unwrap();
        let (_, certs_h, _) = world_h.ci.certify_hierarchical(&block_h, &in_h).unwrap();
        // Same certified digest in both schemes.
        assert_eq!(certs_a[0].digest, certs_h[0].digest);
        sp_a.record_certs(&certs_a);
        sp_h.record_certs(&certs_h);
    }
}

#[test]
fn forged_index_digest_rejected_in_both_schemes() {
    let (mut world, mut sp) = World::with_setup(vec![(IndexKind::History, "history")]);
    let mut gen = kv_gen();
    let block = world.miner.mine(gen.next_block(4), 1).unwrap();
    let mut inputs = sp.stage_block(&block).unwrap();
    inputs[0].new_digest = hash_bytes(b"forged index digest");

    match world.ci.certify_augmented(&block, &inputs) {
        Err(CertError::EnclaveRejected(reason)) => {
            assert!(reason.contains("index digest"), "reason: {reason}")
        }
        other => panic!("expected rejection, got {other:?}"),
    }
}

#[test]
fn tampered_aux_rejected() {
    let (mut world, mut sp) = World::with_setup(vec![(IndexKind::History, "history")]);
    let mut gen = kv_gen();
    let block = world.miner.mine(gen.next_block(4), 1).unwrap();
    let mut inputs = sp.stage_block(&block).unwrap();
    if let Some(byte) = inputs[0].aux.last_mut() {
        *byte ^= 0xff;
    }
    assert!(world.ci.certify_augmented(&block, &inputs).is_err());
}

#[test]
fn unknown_index_type_rejected() {
    let (mut world, mut sp) = World::with_setup(vec![(IndexKind::History, "history")]);
    let mut gen = kv_gen();
    let block = world.miner.mine(gen.next_block(2), 1).unwrap();
    let mut inputs = sp.stage_block(&block).unwrap();
    inputs[0].index_type = "not-registered".to_owned();
    match world.ci.certify_augmented(&block, &inputs) {
        Err(CertError::EnclaveRejected(reason)) => {
            assert!(reason.contains("unknown index type"), "reason: {reason}")
        }
        other => panic!("expected rejection, got {other:?}"),
    }
}

#[test]
fn stale_prev_index_cert_rejected() {
    let (mut world, mut sp) = World::with_setup(vec![(IndexKind::History, "history")]);
    let mut gen = kv_gen();
    // Block 1 certifies fine.
    let b1 = world.miner.mine(gen.next_block(2), 1).unwrap();
    let in1 = sp.stage_block(&b1).unwrap();
    let (certs1, _) = world.ci.certify_augmented(&b1, &in1).unwrap();
    sp.record_certs(&certs1);
    // Block 2: present block-1's *pre* digest with block-1's cert (stale
    // lineage — the cert certifies a different digest pairing).
    let b2 = world.miner.mine(gen.next_block(2), 2).unwrap();
    let mut in2 = sp.stage_block(&b2).unwrap();
    in2[0].prev_digest = in1[0].prev_digest; // stale digest (genesis)
    assert!(world.ci.certify_augmented(&b2, &in2).is_err());
}

#[test]
fn five_indexes_certify_hierarchically() {
    // The Fig. 10 configuration: many indexes per block.
    let names = ["idx-1", "idx-2", "idx-3", "idx-4", "idx-5"];
    let setup: Vec<(IndexKind, &str)> = names
        .iter()
        .enumerate()
        .map(|(i, n)| {
            (
                if i % 2 == 0 {
                    IndexKind::History
                } else {
                    IndexKind::Inverted
                },
                *n,
            )
        })
        .collect();
    let (mut world, mut sp) = World::with_setup(setup);
    let mut gen = kv_gen();
    for height in 1..=3u64 {
        let block = world.miner.mine(gen.next_block(4), height).unwrap();
        let inputs = sp.stage_block(&block).unwrap();
        assert_eq!(inputs.len(), 5);
        let (block_cert, certs, breakdown) =
            world.ci.certify_hierarchical(&block, &inputs).unwrap();
        assert_eq!(certs.len(), 5);
        assert_eq!(breakdown.ecalls, 6);
        sp.record_certs(&certs);
        let _ = block_cert;
    }
}
