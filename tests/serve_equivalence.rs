//! Equivalence battery for the `dcert-serve` front-end: whatever path a
//! query takes through the scheduler — fresh backend call, coalesced
//! fan-out, or proof-cache hit — the bytes a client receives must be
//! exactly the bytes a direct, uncached `serve_*` call on the wrapped
//! Service Provider produces at the same certified height. And no cached
//! proof may survive the certified height moving.

mod common;

use common::World;
use dcert::chain::Block;
use dcert::query::history::verify_history;
use dcert::query::sp::IndexKind;
use dcert::query::ServiceProvider;
use dcert::serve::{
    encode_aggregate_op_payload, encode_aggregate_payload, encode_history_op_payload,
    encode_history_payload, encode_keyword_payload, QuerySpec, RateLimit, ServeConfig, ServeFront,
    ServeRequest, ServeWire, Submitted,
};
use dcert::vm::StateKey;
use dcert::workloads::Workload;
use proptest::prelude::*;

/// Keyspace the kvstore workload writes; queries draw from a slightly
/// larger space so absence proofs are exercised too.
const KEYSPACE: u64 = 16;

/// Builds a certified world wrapped in a serve front: `blocks` kvstore
/// blocks mined, staged, certified (augmented), and recorded.
fn certified_front(blocks: usize, txs: usize, seed: u64) -> ServeFront {
    let (mut world, sp) = World::deterministic(vec![
        (IndexKind::History, "history"),
        (IndexKind::Inverted, "inverted"),
        (IndexKind::Aggregate, "agg"),
    ]);
    let mined = world.mine_blocks(Workload::KvStore { keyspace: KEYSPACE }, blocks, txs, seed);
    let mut front = ServeFront::new(sp, ServeConfig::default());
    for block in &mined {
        certify_into(&mut world, &mut front, block);
    }
    front
}

/// Stages `block` through the front and records its augmented
/// certificates — the full invalidating write path.
fn certify_into(world: &mut World, front: &mut ServeFront, block: &Block) {
    let inputs = front.stage_block(block).expect("block stages");
    let (certs, _) = world
        .ci
        .certify_augmented(block, &inputs)
        .expect("block certifies");
    front.record_certs(&certs);
}

/// What a direct, uncached backend call returns for `spec`, encoded the
/// same way the front encodes response payloads.
fn direct_payload(sp: &ServiceProvider, spec: &QuerySpec) -> Option<Vec<u8>> {
    match spec {
        QuerySpec::History { index, key, t1, t2 } => sp
            .serve_history(index, key, *t1, *t2)
            .map(|(results, proof)| encode_history_payload(&results, &proof)),
        QuerySpec::Keywords { index, keywords } => {
            let words: Vec<&str> = keywords.iter().map(String::as_str).collect();
            sp.serve_keywords(index, &words)
                .map(|(results, proof)| encode_keyword_payload(&results, &proof))
        }
        QuerySpec::Aggregate { index, key, t1, t2 } => sp
            .serve_aggregate(index, key, *t1, *t2)
            .map(|(aggregate, proof)| encode_aggregate_payload(&aggregate, &proof)),
        QuerySpec::HistoryOp { index, key, t1, t2 } => sp
            .serve_history_ops(index, key, *t1, *t2)
            .map(|(results, proof)| encode_history_op_payload(&results, &proof)),
        QuerySpec::AggregateOp { index, key, t1, t2 } => sp
            .serve_aggregate_ops(index, key, *t1, *t2)
            .map(|(aggregate, proof)| encode_aggregate_op_payload(&aggregate, &proof)),
    }
}

fn key(i: u64) -> StateKey {
    StateKey::new("kvstore", format!("key-{i}").as_bytes())
}

/// A random time window inside `1..=height`.
fn arb_window(height: u64) -> impl Strategy<Value = (u64, u64)> {
    (1..=height, 1..=height).prop_map(|(a, b)| (a.min(b), a.max(b)))
}

/// A random query over the three registered indexes.
fn arb_spec(height: u64) -> impl Strategy<Value = QuerySpec> {
    prop_oneof![
        (0..KEYSPACE + 4, arb_window(height)).prop_map(|(k, (t1, t2))| QuerySpec::History {
            index: "history".to_owned(),
            key: key(k),
            t1,
            t2,
        }),
        proptest::collection::vec(0..20u64, 1..3).prop_map(|words| QuerySpec::Keywords {
            index: "inverted".to_owned(),
            keywords: words.iter().map(|w| format!("word-{w}")).collect(),
        }),
        (0..KEYSPACE + 4, arb_window(height)).prop_map(|(k, (t1, t2))| QuerySpec::Aggregate {
            index: "agg".to_owned(),
            key: key(k),
            t1,
            t2,
        }),
    ]
}

/// Submits `spec` twice (to force a coalesced join), pumps, and returns
/// the fanned-out response payloads plus the certified height stamped on
/// them.
fn serve_via_front(front: &mut ServeFront, spec: &QuerySpec, base_id: u64) -> Vec<(u64, Vec<u8>)> {
    let mut enqueued = 0u64;
    for offset in 0..2u64 {
        let submitted = front.submit(
            offset,
            ServeRequest {
                client: base_id + offset,
                id: base_id + offset,
                query: spec.clone(),
            },
        );
        match submitted.expect("default config admits") {
            Submitted::CacheHit(_) => {} // a duplicate spec from an earlier round
            Submitted::Enqueued { .. } => enqueued += 1,
        }
    }
    let replies = front.pump(2, usize::MAX);
    assert_eq!(replies.len() as u64, enqueued, "one reply per waiter");
    replies
        .into_iter()
        .map(|(_, wire)| match wire {
            ServeWire::Response(r) => (r.certified_height, r.payload),
            other => panic!("known index never refuses: {other:?}"),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 10,
        .. ProptestConfig::default()
    })]

    /// **Satellite 1a.** Coalesced and cached responses are byte-identical
    /// to direct uncached `serve_*` calls at the same certified height —
    /// across random chains and random query mixes.
    #[test]
    fn prop_front_responses_match_direct_serving(
        seed in any::<u64>(),
        blocks in 1usize..4,
        txs in 1usize..4,
        specs in proptest::collection::vec(arb_spec(3), 1..6),
    ) {
        let mut front = certified_front(blocks, txs, seed);
        let height = front.sp().index_height();
        prop_assert_eq!(height, blocks as u64);

        for (i, spec) in specs.iter().enumerate() {
            let direct = direct_payload(front.sp(), spec).expect("indexes are registered");
            // Round 1: backend call + coalesced fan-out.
            for (stamped, payload) in serve_via_front(&mut front, spec, 100 * i as u64) {
                prop_assert_eq!(stamped, height, "responses carry the certified height");
                prop_assert_eq!(&payload, &direct, "fan-out bytes == direct bytes");
            }
            // Round 2: the same spec now comes straight from the proof cache.
            let cached = front.submit(3, ServeRequest {
                client: 9_000 + i as u64,
                id: 9_000 + i as u64,
                query: spec.clone(),
            });
            match cached.expect("cache hits are admitted") {
                Submitted::CacheHit(response) => {
                    prop_assert_eq!(response.certified_height, height);
                    prop_assert_eq!(&response.payload, &direct, "cached bytes == direct bytes");
                }
                Submitted::Enqueued { .. } => prop_assert!(false, "second round must hit the cache"),
            }
        }
    }

    /// **Satellite 1b.** Cache invalidation: once `record_certs` moves the
    /// certified height, no response is served from the stale cache — the
    /// replayed query is re-executed and returns the new height's bytes.
    #[test]
    fn prop_no_stale_proof_survives_height_advance(
        seed in any::<u64>(),
        probe in 0..KEYSPACE,
    ) {
        let (mut world, sp) = World::deterministic(vec![
            (IndexKind::History, "history"),
            (IndexKind::Inverted, "inverted"),
            (IndexKind::Aggregate, "agg"),
        ]);
        let blocks = world.mine_blocks(Workload::KvStore { keyspace: KEYSPACE }, 3, 4, seed);
        let mut front = ServeFront::new(sp, ServeConfig::default());
        certify_into(&mut world, &mut front, &blocks[0]);
        certify_into(&mut world, &mut front, &blocks[1]);

        let spec = QuerySpec::History {
            index: "history".to_owned(),
            key: key(probe),
            t1: 1,
            t2: 2,
        };
        let served = serve_via_front(&mut front, &spec, 0);
        prop_assert!(!served.is_empty());
        let generation = front.cache_generation();
        prop_assert_eq!(front.cached_entries(), 1, "the proof is cached");

        // The certified height moves: stage + record block 3.
        certify_into(&mut world, &mut front, &blocks[2]);
        prop_assert_eq!(front.cached_entries(), 0, "invalidation clears the cache");
        prop_assert!(front.cache_generation() > generation);

        // Replaying the same query misses the cache and re-executes at the
        // new height; its bytes match a fresh direct call, not the stale
        // cache, and its proof verifies against the *new* certified digest.
        let replayed = serve_via_front(&mut front, &spec, 50);
        let direct = direct_payload(front.sp(), &spec).expect("index registered");
        for (stamped, payload) in &replayed {
            prop_assert_eq!(*stamped, 3u64, "post-advance responses carry the new height");
            prop_assert_eq!(payload, &direct);
        }
        let (results, proof) =
            dcert::serve::decode_history_payload(&replayed[0].1).expect("payload decodes");
        let digest = front.sp().certified_digest("history").expect("certified");
        prop_assert!(
            verify_history(&digest, &key(probe), 1, 2, &results, &proof).is_ok(),
            "replayed proof verifies against the advanced certified digest"
        );
    }
}

/// `advance_staged` (the no-certificate pipelined path) invalidates just
/// as strictly as `record_certs`.
#[test]
fn advance_staged_also_invalidates() {
    let (mut world, sp) = World::deterministic(vec![(IndexKind::History, "history")]);
    let blocks = world.mine_blocks(Workload::KvStore { keyspace: KEYSPACE }, 2, 3, 7);
    let mut front = ServeFront::new(sp, ServeConfig::default());
    certify_into(&mut world, &mut front, &blocks[0]);

    let spec = QuerySpec::History {
        index: "history".to_owned(),
        key: key(0),
        t1: 1,
        t2: 1,
    };
    serve_via_front(&mut front, &spec, 0);
    assert_eq!(front.cached_entries(), 1);

    front.stage_block(&blocks[1]).expect("stages");
    front.advance_staged();
    assert_eq!(front.cached_entries(), 0, "staged advance clears the cache");
    for (stamped, _) in serve_via_front(&mut front, &spec, 10) {
        assert_eq!(stamped, 2, "responses re-stamp the advanced height");
    }
}

/// Unknown indexes refuse with a typed error through the full pipeline —
/// and the refusal never lands in the cache.
#[test]
fn unknown_index_refuses_typed_and_uncached() {
    let mut front = certified_front(1, 2, 11);
    let spec = QuerySpec::History {
        index: "no-such-index".to_owned(),
        key: key(0),
        t1: 1,
        t2: 1,
    };
    let submitted = front.submit(
        0,
        ServeRequest {
            client: 1,
            id: 1,
            query: spec,
        },
    );
    assert!(matches!(submitted, Ok(Submitted::Enqueued { .. })));
    let replies = front.pump(1, usize::MAX);
    assert_eq!(replies.len(), 1);
    match &replies[0].1 {
        ServeWire::Refusal(refusal) => {
            assert_eq!(refusal.id, 1);
            assert_eq!(
                refusal.reason,
                dcert::serve::RefusalReason::UnknownIndex,
                "the shed is typed, not silent"
            );
        }
        other => panic!("expected a typed refusal, got {other:?}"),
    }
    assert_eq!(front.cached_entries(), 0, "refusals are not cached");
}

/// Rate-limited clients get typed refusals while other clients' bytes
/// stay equivalent (admission control never corrupts payloads).
#[test]
fn rate_limited_client_does_not_perturb_equivalence() {
    let (mut world, sp) = World::deterministic(vec![(IndexKind::History, "history")]);
    let blocks = world.mine_blocks(Workload::KvStore { keyspace: KEYSPACE }, 1, 3, 13);
    let mut front = ServeFront::new(
        sp,
        ServeConfig {
            rate_limit: RateLimit {
                tokens_per_tick: 1,
                burst: 1,
            },
            ..ServeConfig::default()
        },
    );
    certify_into(&mut world, &mut front, &blocks[0]);

    let spec = |k: u64| QuerySpec::History {
        index: "history".to_owned(),
        key: key(k),
        t1: 1,
        t2: 1,
    };
    // Greedy client: first admitted, second refused with retry advice.
    assert!(front
        .submit(
            0,
            ServeRequest {
                client: 7,
                id: 0,
                query: spec(0)
            }
        )
        .is_ok());
    let refused = front
        .submit(
            0,
            ServeRequest {
                client: 7,
                id: 1,
                query: spec(1),
            },
        )
        .expect_err("token bucket is empty");
    assert!(matches!(
        refused.reason,
        dcert::serve::RefusalReason::RateLimited {
            retry_after_ticks: 1
        }
    ));
    // A different client is unaffected and gets exact direct bytes.
    assert!(front
        .submit(
            0,
            ServeRequest {
                client: 8,
                id: 2,
                query: spec(1)
            }
        )
        .is_ok());
    let direct_0 = direct_payload(front.sp(), &spec(0)).expect("registered");
    let direct_1 = direct_payload(front.sp(), &spec(1)).expect("registered");
    for (_, wire) in front.pump(1, usize::MAX) {
        match wire {
            ServeWire::Response(r) if r.id == 0 => assert_eq!(r.payload, direct_0),
            ServeWire::Response(r) if r.id == 2 => assert_eq!(r.payload, direct_1),
            other => panic!("unexpected reply {other:?}"),
        }
    }
}
