//! End-to-end certification: mine → certify → validate, across every
//! Blockbench workload, asserting the paper's constant-cost claims.

mod common;

use common::World;
use dcert::baselines::TraditionalLightClient;
use dcert::core::CertError;
use dcert::primitives::codec::Encode;
use dcert::workloads::{Workload, WorkloadGen};

#[test]
fn certified_chain_validates_on_superlight_client() {
    let mut world = World::new();
    let mut gen = WorkloadGen::new(Workload::KvStore { keyspace: 64 }, 8, 42);

    let mut last = None;
    for height in 1..=12u64 {
        let block = world.miner.mine(gen.next_block(4), height).unwrap();
        let (cert, breakdown) = world.ci.certify_block(&block).unwrap();
        assert!(breakdown.ecalls >= 1);
        last = Some((block, cert));
    }
    let (block, cert) = last.unwrap();
    world.client.validate_chain(&block.header, &cert).unwrap();
    assert_eq!(world.client.height(), Some(12));
}

#[test]
fn every_workload_certifies() {
    for workload in [
        Workload::DoNothing,
        Workload::CpuHeavy { size: 512 },
        Workload::IoHeavy { batch: 8 },
        Workload::KvStore { keyspace: 32 },
        Workload::SmallBank { customers: 32 },
    ] {
        let mut world = World::new();
        let mut gen = WorkloadGen::new(workload, 8, 7);
        for height in 1..=3u64 {
            let block = world.miner.mine(gen.next_block(4), height).unwrap();
            world
                .ci
                .certify_block(&block)
                .unwrap_or_else(|e| panic!("{}: {e}", workload.label()));
        }
        assert_eq!(world.ci.node().height(), 3, "{}", workload.label());
    }
}

#[test]
fn superlight_storage_is_constant_while_light_client_grows() {
    let mut world = World::new();
    let mut light = TraditionalLightClient::new(world.genesis.header.clone()).unwrap();
    let mut gen = WorkloadGen::new(Workload::DoNothing, 4, 1);

    let mut client_storage_samples = Vec::new();
    for height in 1..=20u64 {
        let block = world.miner.mine(gen.next_block(1), height).unwrap();
        let (cert, _) = world.ci.certify_block(&block).unwrap();
        light
            .sync(block.header.clone(), world.engine.as_ref())
            .unwrap();
        world.client.validate_chain(&block.header, &cert).unwrap();
        client_storage_samples.push(world.client.storage_bytes());
    }
    // Superlight storage: identical at every height (constant).
    assert!(
        client_storage_samples.windows(2).all(|w| w[0] == w[1]),
        "superlight storage must be constant: {client_storage_samples:?}"
    );
    // Its constant is a few hundred bytes; the light client's is linear.
    assert!(client_storage_samples[0] < 4096);
    assert!(light.storage_bytes() > client_storage_samples[0] * 3);
    assert_eq!(light.len(), 21);
}

#[test]
fn certificates_are_transferable_bytes() {
    // A certificate survives serialization and still validates — clients
    // receive it over the network.
    use dcert::core::Certificate;
    use dcert::primitives::codec::Decode;

    let mut world = World::new();
    let block = world.miner.mine(Vec::new(), 1).unwrap();
    let (cert, _) = world.ci.certify_block(&block).unwrap();
    let wire = cert.to_encoded_bytes();
    let received = Certificate::decode_all(&wire).unwrap();
    world
        .client
        .validate_chain(&block.header, &received)
        .unwrap();
}

#[test]
fn chain_selection_rejects_stale_and_equal_heights() {
    let mut world = World::new();
    let b1 = world.miner.mine(Vec::new(), 1).unwrap();
    let (c1, _) = world.ci.certify_block(&b1).unwrap();
    let b2 = world.miner.mine(Vec::new(), 2).unwrap();
    let (c2, _) = world.ci.certify_block(&b2).unwrap();

    world.client.validate_chain(&b2.header, &c2).unwrap();
    // Replaying an older (lower-height) certified block must fail the
    // chain-selection rule even though the certificate itself is valid.
    assert!(matches!(
        world.client.validate_chain(&b1.header, &c1),
        Err(CertError::ChainSelection {
            current: 2,
            offered: 1
        })
    ));
    // Same-height replays fail too.
    assert!(matches!(
        world.client.validate_chain(&b2.header, &c2),
        Err(CertError::ChainSelection { .. })
    ));
}

#[test]
fn client_accepts_catch_up_jumps() {
    // A client that was offline can jump straight to the newest
    // certificate — that is the whole point of the scheme.
    let mut world = World::new();
    let mut latest = None;
    for height in 1..=8u64 {
        let block = world.miner.mine(Vec::new(), height).unwrap();
        let (cert, _) = world.ci.certify_block(&block).unwrap();
        latest = Some((block, cert));
    }
    let (block, cert) = latest.unwrap();
    world.client.validate_chain(&block.header, &cert).unwrap();
    assert_eq!(world.client.height(), Some(8));
}

#[test]
fn breakdown_accounts_are_sane() {
    let mut world = World::new();
    let mut gen = WorkloadGen::new(Workload::SmallBank { customers: 16 }, 8, 3);
    let block = world.miner.mine(gen.next_block(8), 1).unwrap();
    let (_, breakdown) = world.ci.certify_block(&block).unwrap();
    assert_eq!(breakdown.ecalls, 1, "block certs take exactly one ECall");
    assert!(breakdown.request_bytes > 0);
    assert!(breakdown.response_bytes > 0);
    assert!(breakdown.total() >= breakdown.enclave_total);
}
