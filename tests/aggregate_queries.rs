//! End-to-end verifiable **aggregation** queries: the aggregate index is
//! maintained by the SP, certified per block by the enclave
//! (hierarchically), and window aggregates verify on the client with
//! O(log n) proofs.

mod common;

use common::World;
use dcert::primitives::codec::Encode;
use dcert::primitives::keys::Keypair;
use dcert::query::aggregate::{verify_aggregate, Aggregate};
use dcert::query::sp::IndexKind;
use dcert::vm::StateKey;
use dcert::workloads::smallbank::BankCall;

/// Runs a chain where customer 1 receives one deposit per block, with the
/// aggregate index certified hierarchically. Returns the expected balance
/// per height.
fn run(world: &mut World, sp: &mut dcert::query::ServiceProvider, blocks: u64) -> Vec<u64> {
    let kp = Keypair::from_seed([21; 32]);
    let mut balances = Vec::new();
    let mut balance = dcert::workloads::smallbank::INITIAL_BALANCE;
    for height in 1..=blocks {
        let amount = height * 3;
        balance += amount;
        balances.push(balance);
        let tx = dcert::chain::Transaction::sign(
            &kp,
            height,
            "smallbank",
            BankCall::DepositChecking {
                customer: 1,
                amount,
            }
            .to_encoded_bytes(),
        );
        let block = world.miner.mine(vec![tx], height).unwrap();
        let inputs = sp.stage_block(&block).unwrap();
        let (block_cert, idx_certs, _) = world.ci.certify_hierarchical(&block, &inputs).unwrap();
        sp.record_certs(&idx_certs);
        world
            .client
            .validate_chain(&block.header, &block_cert)
            .unwrap();
        for (cert, input) in idx_certs.iter().zip(&inputs) {
            world
                .client
                .validate_index(&input.index_type, input.new_digest, cert)
                .unwrap();
        }
    }
    balances
}

/// The SmallBank checking-balance state key of customer 1.
fn checking_key() -> StateKey {
    let mut field = b"chk-".to_vec();
    field.extend_from_slice(&1u64.to_be_bytes());
    StateKey::new("smallbank", &field)
}

#[test]
fn certified_window_aggregates_verify() {
    let (mut world, mut sp) = World::with_setup(vec![(IndexKind::Aggregate, "balances")]);
    let balances = run(&mut world, &mut sp, 20);

    let digest = world.client.index_digest("balances").unwrap();
    let (agg, proof) = sp
        .aggregate("balances")
        .unwrap()
        .query(&checking_key(), 6, 15);
    // One balance version per block in [6, 15].
    assert_eq!(agg.count, 10);
    let expected_sum: u128 = balances[5..15].iter().map(|b| *b as u128).sum();
    assert_eq!(agg.sum, expected_sum);
    assert_eq!(agg.min, balances[5]);
    assert_eq!(agg.max, balances[14]);
    verify_aggregate(&digest, &checking_key(), 6, 15, &agg, &proof).unwrap();
}

#[test]
fn sp_cannot_inflate_certified_aggregates() {
    let (mut world, mut sp) = World::with_setup(vec![(IndexKind::Aggregate, "balances")]);
    run(&mut world, &mut sp, 12);
    let digest = world.client.index_digest("balances").unwrap();
    let (mut agg, proof) = sp
        .aggregate("balances")
        .unwrap()
        .query(&checking_key(), 1, 12);
    agg.max += 1;
    assert!(verify_aggregate(&digest, &checking_key(), 1, 12, &agg, &proof).is_err());
}

#[test]
fn aggregate_proofs_do_not_grow_with_window() {
    let (mut world, mut sp) = World::with_setup(vec![(IndexKind::Aggregate, "balances")]);
    run(&mut world, &mut sp, 64);
    let idx = sp.aggregate("balances").unwrap();
    let (_, narrow) = idx.query(&checking_key(), 30, 33);
    let (_, wide) = idx.query(&checking_key(), 2, 62);
    assert!(
        wide.size_bytes() < narrow.size_bytes() * 4,
        "wide={} narrow={}",
        wide.size_bytes(),
        narrow.size_bytes()
    );
    let _ = world;
}

#[test]
fn untracked_customer_verifies_empty() {
    let (mut world, mut sp) = World::with_setup(vec![(IndexKind::Aggregate, "balances")]);
    run(&mut world, &mut sp, 5);
    let digest = world.client.index_digest("balances").unwrap();
    let ghost = StateKey::new("smallbank", b"chk-nobody");
    let (agg, proof) = sp.aggregate("balances").unwrap().query(&ghost, 0, 100);
    assert_eq!(agg, Aggregate::EMPTY);
    verify_aggregate(&digest, &ghost, 0, 100, &agg, &proof).unwrap();
}

#[test]
fn aggregate_index_composes_with_other_indexes() {
    // All three index families certified hierarchically on one chain.
    let (mut world, mut sp) = World::with_setup(vec![
        (IndexKind::History, "history"),
        (IndexKind::Inverted, "inverted"),
        (IndexKind::Aggregate, "balances"),
    ]);
    run(&mut world, &mut sp, 6);
    assert!(world.client.index_digest("history").is_some());
    assert!(world.client.index_digest("inverted").is_some());
    assert!(world.client.index_digest("balances").is_some());
}
