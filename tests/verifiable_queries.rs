//! End-to-end verifiable queries (Section 5 + the Fig. 5 case study):
//! superlight clients verify historical and keyword query results against
//! enclave-certified index digests, and every SP cheating path is caught.

mod common;

use common::World;
use dcert::chain::Transaction;
use dcert::primitives::hash::hash_bytes;
use dcert::primitives::keys::Keypair;
use dcert::query::history::verify_history;
use dcert::query::inverted::verify_keywords;
use dcert::query::sp::IndexKind;
use dcert::query::ServiceProvider;
use dcert::vm::StateKey;
use dcert::workloads::kvstore::KvCall;
use dcert_primitives::codec::Encode;

/// Drives a chain whose transactions write memo-carrying values to known
/// accounts, with both indexes certified hierarchically.
fn run_scenario(world: &mut World, sp: &mut ServiceProvider, blocks: u64) {
    let kp = Keypair::from_seed([77; 32]);
    for height in 1..=blocks {
        // Unique per block even across repeated run_scenario calls.
        let nonce = world.miner.height() + 1;
        let memo = match height % 3 {
            0 => format!("dividend stock payout at {height}"),
            1 => format!("bank wire transfer at {height}"),
            _ => format!("stock AND bank combo at {height}"),
        };
        let tx = Transaction::sign(
            &kp,
            nonce,
            "kvstore",
            KvCall::Put {
                key: b"acct-main".to_vec(),
                value: memo.into_bytes(),
            }
            .to_encoded_bytes(),
        );
        let block = world.miner.mine(vec![tx], height).unwrap();
        let inputs = sp.stage_block(&block).unwrap();
        let (block_cert, idx_certs, _) = world.ci.certify_hierarchical(&block, &inputs).unwrap();
        sp.record_certs(&idx_certs);

        // The client follows along (in reality it would only fetch the
        // latest certificate).
        world
            .client
            .validate_chain(&block.header, &block_cert)
            .unwrap();
        for (cert, input) in idx_certs.iter().zip(&inputs) {
            world
                .client
                .validate_index(&input.index_type, input.new_digest, cert)
                .unwrap();
        }
    }
}

fn setup(blocks: u64) -> (World, ServiceProvider) {
    let (mut world, mut sp) = World::with_setup(vec![
        (IndexKind::History, "history"),
        (IndexKind::Inverted, "inverted"),
    ]);
    run_scenario(&mut world, &mut sp, blocks);
    (world, sp)
}

fn account_key() -> StateKey {
    StateKey::new("kvstore", b"acct-main")
}

#[test]
fn historical_query_verifies_against_certified_digest() {
    let (world, sp) = setup(12);
    let digest = world.client.index_digest("history").unwrap();
    let (results, proof) = sp.history("history").unwrap().query(&account_key(), 4, 9);
    assert_eq!(results.len(), 6, "one version per block in the window");
    verify_history(&digest, &account_key(), 4, 9, &results, &proof).unwrap();
    // Values carry the block-specific memos.
    let (ts, value) = &results[0];
    assert_eq!(*ts, 4);
    assert!(String::from_utf8(value.clone().unwrap())
        .unwrap()
        .contains("at 4"));
}

#[test]
fn historical_query_for_unknown_account_verifies_empty() {
    let (world, sp) = setup(6);
    let digest = world.client.index_digest("history").unwrap();
    let ghost = StateKey::new("kvstore", b"no-such-account");
    let (results, proof) = sp.history("history").unwrap().query(&ghost, 0, 100);
    assert!(results.is_empty());
    verify_history(&digest, &ghost, 0, 100, &results, &proof).unwrap();
}

#[test]
fn sp_cannot_omit_or_tamper_history_results() {
    let (world, sp) = setup(12);
    let digest = world.client.index_digest("history").unwrap();
    let (results, proof) = sp.history("history").unwrap().query(&account_key(), 2, 10);

    let mut omitted = results.clone();
    omitted.remove(3);
    assert!(verify_history(&digest, &account_key(), 2, 10, &omitted, &proof).is_err());

    let mut tampered = results;
    tampered[0].1 = Some(b"fabricated balance".to_vec());
    assert!(verify_history(&digest, &account_key(), 2, 10, &tampered, &proof).is_err());
}

#[test]
fn sp_cannot_serve_stale_history_snapshots() {
    // The SP answers from an old index snapshot; the client's certified
    // digest (which tracks the chain tip) must reject it.
    let (mut world, mut sp) = setup(6);
    let (old_results, old_proof) = sp.history("history").unwrap().query(&account_key(), 0, 100);

    // The chain moves on; the client refreshes its certified digest.
    run_scenario(&mut world, &mut sp, 3);
    let fresh_digest = world.client.index_digest("history").unwrap();
    assert!(
        verify_history(
            &fresh_digest,
            &account_key(),
            0,
            100,
            &old_results,
            &old_proof
        )
        .is_err(),
        "stale snapshot must not verify against the fresh digest"
    );
}

#[test]
fn conjunctive_keyword_query_verifies() {
    let (world, sp) = setup(12);
    let digest = world.client.index_digest("inverted").unwrap();
    let idx = sp.inverted("inverted").unwrap();

    // "stock AND bank" appears in every third block (heights 2, 5, 8, 11).
    let (result, proof) = idx.query(&["stock", "bank"]);
    assert_eq!(result.len(), 4);
    verify_keywords(&digest, &["stock", "bank"], &result, &proof).unwrap();

    // Single keywords.
    let (stock, stock_proof) = idx.query(&["stock"]);
    assert_eq!(stock.len(), 8, "stock appears in 2/3 of blocks");
    verify_keywords(&digest, &["stock"], &stock, &stock_proof).unwrap();

    // Absent keyword conjunct → verified empty.
    let (none, none_proof) = idx.query(&["stock", "unicorn"]);
    assert!(none.is_empty());
    verify_keywords(&digest, &["stock", "unicorn"], &none, &none_proof).unwrap();
}

#[test]
fn sp_cannot_hide_keyword_matches() {
    let (world, sp) = setup(9);
    let digest = world.client.index_digest("inverted").unwrap();
    let (result, proof) = sp.inverted("inverted").unwrap().query(&["stock", "bank"]);
    assert!(!result.is_empty());
    let mut hidden = result;
    hidden.pop();
    assert!(verify_keywords(&digest, &["stock", "bank"], &hidden, &proof).is_err());
}

#[test]
fn baseline_lineage_index_agrees_on_results() {
    // The LineageChain-style baseline indexes the same chain and must
    // return the same version sets (it is the comparator, not a strawman).
    use dcert::baselines::lineage::{verify_lineage, LineageIndex};

    let (mut world, mut sp) = World::with_setup(vec![(IndexKind::History, "history")]);
    let mut lineage = LineageIndex::new();
    let kp = Keypair::from_seed([77; 32]);
    for height in 1..=10u64 {
        let tx = Transaction::sign(
            &kp,
            height,
            "kvstore",
            KvCall::Put {
                key: b"acct-main".to_vec(),
                value: format!("v{height}").into_bytes(),
            }
            .to_encoded_bytes(),
        );
        let block = world.miner.mine(vec![tx], height).unwrap();
        // Maintain the baseline index from the same write sets.
        let execution = world.ci.node().execute(&block.txs);
        let writes: Vec<_> = execution
            .writes
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        lineage.apply_block(height, &writes);
        let inputs = sp.stage_block(&block).unwrap();
        let (certs, _) = world.ci.certify_augmented(&block, &inputs).unwrap();
        sp.record_certs(&certs);
    }

    let (dcert_results, _) = sp.history("history").unwrap().query(&account_key(), 3, 7);
    let (lineage_results, lineage_proof) = lineage.query(&account_key(), 3, 7);
    assert_eq!(dcert_results, lineage_results);
    verify_lineage(
        &lineage.digest(),
        &account_key(),
        3,
        7,
        &lineage_results,
        &lineage_proof,
    )
    .unwrap();
}

#[test]
fn proofs_survive_serialization() {
    use dcert::primitives::codec::Decode;
    use dcert::query::history::HistoryProof;
    use dcert::query::inverted::KeywordProof;

    let (world, sp) = setup(8);
    let hdigest = world.client.index_digest("history").unwrap();
    let (hresults, hproof) = sp.history("history").unwrap().query(&account_key(), 2, 6);
    let hproof = HistoryProof::decode_all(&hproof.to_encoded_bytes()).unwrap();
    verify_history(&hdigest, &account_key(), 2, 6, &hresults, &hproof).unwrap();

    let kdigest = world.client.index_digest("inverted").unwrap();
    let (kresults, kproof) = sp.inverted("inverted").unwrap().query(&["bank"]);
    let kproof = KeywordProof::decode_all(&kproof.to_encoded_bytes()).unwrap();
    verify_keywords(&kdigest, &["bank"], &kresults, &kproof).unwrap();
}

#[test]
fn query_rejected_against_wrong_digest() {
    let (_, sp) = setup(6);
    let (results, proof) = sp.history("history").unwrap().query(&account_key(), 0, 10);
    let wrong = hash_bytes(b"not the certified digest");
    assert!(verify_history(&wrong, &account_key(), 0, 10, &results, &proof).is_err());
}
