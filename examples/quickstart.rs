//! Quickstart: the full DCert pipeline in one file.
//!
//! Boots a chain, a miner, a simulated IAS, and an SGX-enabled Certificate
//! Issuer; mines and certifies a few blocks; then validates the whole
//! chain on a superlight client from nothing but the latest header and
//! certificate.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use dcert::chain::{FullNode, GenesisBuilder, ProofOfWork};
use dcert::core::{expected_measurement, CertificateIssuer, SuperlightClient};
use dcert::primitives::codec::Encode;
use dcert::primitives::hash::Address;
use dcert::sgx::{AttestationService, CostModel};
use dcert::vm::Executor;
use dcert::workloads::{blockbench_registry, Workload, WorkloadGen};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Shared chain semantics: contracts + consensus + genesis.
    let executor = Executor::new(Arc::new(blockbench_registry()));
    let engine = Arc::new(ProofOfWork::new(8));
    let (genesis, state) = GenesisBuilder::new().timestamp(1_700_000_000).build();
    println!("genesis        {}", genesis.hash());

    // 2. A miner and the attestation infrastructure.
    let mut miner = FullNode::new(
        &genesis,
        state.clone(),
        executor.clone(),
        engine.clone(),
        Address::from_seed(1),
    );
    let mut ias = AttestationService::with_seed([42; 32]);

    // 3. The SGX-enabled Certificate Issuer: launches the enclave,
    //    generates (sk_enc, pk_enc) inside it, and gets attested.
    let mut ci = CertificateIssuer::new(
        &genesis,
        state,
        executor,
        engine,
        Vec::new(),
        &mut ias,
        CostModel::calibrated(),
    )?;
    println!("enclave        {}", ci.measurement());
    println!("pk_enc         {}", ci.pk_enc());

    // 4. Mine and certify blocks running the SmallBank workload.
    let mut gen = WorkloadGen::new(Workload::SmallBank { customers: 100 }, 32, 7);
    let mut latest = None;
    for height in 1..=10u64 {
        let block = miner.mine(gen.next_block(16), 1_700_000_000 + height * 15)?;
        let (cert, breakdown) = ci.certify_block(&block)?;
        println!(
            "block {height:>2}  txs={:>2}  cert in {:>8.2?} (enclave {:>8.2?}, overhead {:>7.2?})",
            block.txs.len(),
            breakdown.total(),
            breakdown.enclave_total,
            breakdown.enclave_overhead,
        );
        latest = Some((block, cert));
    }

    // 5. A superlight client bootstraps from ONE header + ONE certificate.
    let (block, cert) = latest.expect("blocks were mined");
    let mut client = SuperlightClient::new(ias.public_key(), expected_measurement());
    let started = std::time::Instant::now();
    client.validate_chain(&block.header, &cert)?;
    let elapsed = started.elapsed();

    println!();
    println!("superlight client validated the whole chain:");
    println!("  height        {}", client.height().unwrap());
    println!("  bootstrap     {elapsed:?}");
    println!(
        "  storage       {} bytes (header {} + certificate {})",
        client.storage_bytes(),
        block.header.encoded_len(),
        cert.size_bytes(),
    );
    Ok(())
}
