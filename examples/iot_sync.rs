//! IoT-device chain synchronization: superlight vs. traditional light
//! client.
//!
//! Simulates the paper's motivating scenario (Section 1): a
//! resource-limited device joining an established chain. The traditional
//! light client must download and validate every header; the DCert
//! superlight client fetches one header + one certificate. This example
//! builds a real certified chain and prints both cost curves — a live
//! miniature of Fig. 7.
//!
//! Run with: `cargo run --release --example iot_sync`

use std::sync::Arc;
use std::time::Instant;

use dcert::baselines::TraditionalLightClient;
use dcert::chain::{FullNode, GenesisBuilder, ProofOfAuthority};
use dcert::core::{expected_measurement, CertificateIssuer, SuperlightClient};
use dcert::primitives::hash::Address;
use dcert::primitives::keys::Keypair;
use dcert::sgx::{AttestationService, CostModel};
use dcert::vm::Executor;
use dcert::workloads::blockbench_registry;

const CHAIN_LENGTH: u64 = 2_000;
const CHECKPOINTS: &[u64] = &[200, 500, 1000, 1500, 2000];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Proof-of-authority keeps the chain build fast; the comparison is
    // about client-side costs, not mining.
    let sealer = Keypair::from_seed([1; 32]);
    let authority = sealer.public();
    let engine = Arc::new(ProofOfAuthority::new_sealer(vec![authority], sealer));
    let executor = Executor::new(Arc::new(blockbench_registry()));
    let (genesis, state) = GenesisBuilder::new().build();

    let mut miner = FullNode::new(
        &genesis,
        state.clone(),
        executor.clone(),
        engine.clone(),
        Address::from_seed(1),
    );
    let mut ias = AttestationService::with_seed([42; 32]);
    let mut ci = CertificateIssuer::new(
        &genesis,
        state,
        executor,
        engine.clone(),
        Vec::new(),
        &mut ias,
        CostModel::calibrated(),
    )?;

    println!("building + certifying a {CHAIN_LENGTH}-block chain...");
    let mut headers = vec![genesis.header.clone()];
    let mut certs_at = std::collections::HashMap::new();
    for height in 1..=CHAIN_LENGTH {
        let block = miner.mine(Vec::new(), height)?;
        let (cert, _) = ci.certify_block(&block)?;
        headers.push(block.header.clone());
        if CHECKPOINTS.contains(&height) {
            certs_at.insert(height, (block.header.clone(), cert));
        }
    }

    println!();
    println!(
        "{:>8} | {:>22} | {:>22}",
        "height", "light client", "superlight client"
    );
    println!(
        "{:>8} | {:>10} {:>11} | {:>10} {:>11}",
        "", "storage", "bootstrap", "storage", "bootstrap"
    );
    println!("{}", "-".repeat(62));
    for &height in CHECKPOINTS {
        // Traditional light client: sync & validate all headers.
        let started = Instant::now();
        let mut light = TraditionalLightClient::new(genesis.header.clone())?;
        for header in &headers[1..=height as usize] {
            light.sync(header.clone(), engine.as_ref())?;
        }
        let light_time = started.elapsed();
        let light_bytes = light.storage_bytes();

        // Superlight client: one certificate.
        let (header, cert) = &certs_at[&height];
        let started = Instant::now();
        let mut superlight = SuperlightClient::new(ias.public_key(), expected_measurement());
        superlight.validate_chain(header, cert)?;
        let super_time = started.elapsed();
        let super_bytes = superlight.storage_bytes();

        println!(
            "{height:>8} | {:>10} {:>11.2?} | {:>10} {:>11.2?}",
            format_bytes(light_bytes),
            light_time,
            format_bytes(super_bytes),
            super_time,
        );
    }
    println!();
    println!(
        "the superlight column is CONSTANT; the light-client column grows \
         linearly with the chain (Ethereum-equivalent: {} at height {}).",
        format_bytes(CHAIN_LENGTH as usize * 508),
        CHAIN_LENGTH
    );
    Ok(())
}

fn format_bytes(bytes: usize) -> String {
    if bytes >= 1024 * 1024 {
        format!("{:.2} MB", bytes as f64 / (1024.0 * 1024.0))
    } else if bytes >= 1024 {
        format!("{:.2} KB", bytes as f64 / 1024.0)
    } else {
        format!("{bytes} B")
    }
}
