//! Historical account auditing with verifiable queries.
//!
//! A wallet provider wants to audit the history of an account over a time
//! window without trusting the query service: the Service Provider
//! maintains DCert's two-level index (Merkle Patricia trie over accounts,
//! Merkle B-tree of versions per account), the enclave certifies every
//! index update via *hierarchical* certificates, and the client verifies
//! completeness of the returned version list.
//!
//! Run with: `cargo run --example historical_audit`

use std::sync::Arc;

use dcert::chain::{FullNode, GenesisBuilder, ProofOfWork, Transaction};
use dcert::core::{expected_measurement, CertificateIssuer, SuperlightClient};
use dcert::primitives::codec::Encode;
use dcert::primitives::hash::Address;
use dcert::primitives::keys::Keypair;
use dcert::query::history::verify_history;
use dcert::query::sp::IndexKind;
use dcert::query::ServiceProvider;
use dcert::sgx::{AttestationService, CostModel};
use dcert::vm::{Executor, StateKey};
use dcert::workloads::blockbench_registry;
use dcert::workloads::kvstore::KvCall;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let executor = Executor::new(Arc::new(blockbench_registry()));
    let engine = Arc::new(ProofOfWork::new(6));
    let (genesis, state) = GenesisBuilder::new().build();

    let mut miner = FullNode::new(
        &genesis,
        state.clone(),
        executor.clone(),
        engine.clone(),
        Address::from_seed(1),
    );
    let mut sp = ServiceProvider::new(&genesis, state.clone(), executor.clone(), engine.clone());
    sp.add_index(IndexKind::History, "history");

    let mut ias = AttestationService::with_seed([42; 32]);
    let mut ci = CertificateIssuer::new(
        &genesis,
        state,
        executor,
        engine,
        sp.verifiers(),
        &mut ias,
        CostModel::calibrated(),
    )?;
    let mut client = SuperlightClient::new(ias.public_key(), expected_measurement());

    // The audited account receives one balance update per block.
    let owner = Keypair::from_seed([9; 32]);
    println!("building 40 blocks of account activity...");
    for height in 1..=40u64 {
        let balance = 1000 + height * 17 % 997;
        let tx = Transaction::sign(
            &owner,
            height,
            "kvstore",
            KvCall::Put {
                key: b"acct:savings:alice".to_vec(),
                value: format!("balance={balance}").into_bytes(),
            }
            .to_encoded_bytes(),
        );
        let block = miner.mine(vec![tx], height)?;
        let inputs = sp.stage_block(&block)?;
        let (block_cert, idx_certs, _) = ci.certify_hierarchical(&block, &inputs)?;
        sp.record_certs(&idx_certs);
        client.validate_chain(&block.header, &block_cert)?;
        client.validate_index("history", inputs[0].new_digest, &idx_certs[0])?;
    }

    // The audit: all versions of the account in blocks [12, 19].
    let account = StateKey::new("kvstore", b"acct:savings:alice");
    let (t1, t2) = (12u64, 19u64);
    let started = std::time::Instant::now();
    let (versions, proof) = sp.history("history").unwrap().query(&account, t1, t2);
    let query_time = started.elapsed();

    let digest = client.index_digest("history").unwrap();
    let started = std::time::Instant::now();
    verify_history(&digest, &account, t1, t2, &versions, &proof)?;
    let verify_time = started.elapsed();

    println!("\naudit of acct:savings:alice over blocks [{t1}, {t2}]:");
    for (height, version) in &versions {
        let value = version.as_deref().map(String::from_utf8_lossy);
        println!("  block {height:>3}: {}", value.unwrap_or_default());
    }
    println!("\nquery     {query_time:?}");
    println!("verify    {verify_time:?}  (against the enclave-certified index digest)");
    println!("proof     {} bytes", proof.size_bytes());

    // Tampering demo: the SP hides one version → verification fails.
    let mut doctored = versions.clone();
    doctored.remove(3);
    match verify_history(&digest, &account, t1, t2, &doctored, &proof) {
        Err(e) => println!("\nomission attack detected as expected: {e}"),
        Ok(()) => unreachable!("omission must be caught"),
    }
    Ok(())
}
