//! Conjunctive keyword search over blockchain transactions — the paper's
//! second case-study query type ("[Stock AND Bank]", Fig. 5).
//!
//! The Service Provider maintains an inverted keyword index whose
//! dictionary is a sparse Merkle tree certified by the enclave via
//! **augmented** certificates (Algorithm 4): one certificate vouches for
//! the chain *and* the index, and the superlight client tracks both from
//! it alone. Clients get the complete matching transaction set or catch
//! the SP cheating.
//!
//! Run with: `cargo run --example keyword_search`

use std::sync::Arc;

use dcert::chain::{FullNode, GenesisBuilder, ProofOfWork, Transaction};
use dcert::core::{expected_measurement, CertificateIssuer, SuperlightClient};
use dcert::primitives::codec::Encode;
use dcert::primitives::hash::Address;
use dcert::primitives::keys::Keypair;
use dcert::query::inverted::verify_keywords;
use dcert::query::sp::IndexKind;
use dcert::query::ServiceProvider;
use dcert::sgx::{AttestationService, CostModel};
use dcert::vm::Executor;
use dcert::workloads::blockbench_registry;
use dcert::workloads::kvstore::KvCall;

const MEMOS: &[&str] = &[
    "buy stock ACME quantity 100",
    "bank wire to supplier",
    "sell stock via bank broker",
    "coffee expenses",
    "stock dividend received into bank account",
    "payroll run",
    "bank fee refund",
    "stock split notice",
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let executor = Executor::new(Arc::new(blockbench_registry()));
    let engine = Arc::new(ProofOfWork::new(6));
    let (genesis, state) = GenesisBuilder::new().build();

    let mut miner = FullNode::new(
        &genesis,
        state.clone(),
        executor.clone(),
        engine.clone(),
        Address::from_seed(1),
    );
    let mut sp = ServiceProvider::new(&genesis, state.clone(), executor.clone(), engine.clone());
    sp.add_index(IndexKind::Inverted, "inverted");

    let mut ias = AttestationService::with_seed([42; 32]);
    let mut ci = CertificateIssuer::new(
        &genesis,
        state,
        executor,
        engine,
        sp.verifiers(),
        &mut ias,
        CostModel::calibrated(),
    )?;
    let mut client = SuperlightClient::new(ias.public_key(), expected_measurement());

    // One memo-carrying transaction per block, indexed as it lands.
    let sender = Keypair::from_seed([3; 32]);
    let mut memo_of_tx = std::collections::HashMap::new();
    for (i, memo) in MEMOS.iter().enumerate() {
        let tx = Transaction::sign(
            &sender,
            i as u64,
            "kvstore",
            KvCall::Put {
                key: format!("memo-{i}").into_bytes(),
                value: memo.as_bytes().to_vec(),
            }
            .to_encoded_bytes(),
        );
        memo_of_tx.insert(tx.id(), *memo);
        let block = miner.mine(vec![tx], i as u64 + 1)?;
        let inputs = sp.stage_block(&block)?;
        let (certs, _) = ci.certify_augmented(&block, &inputs)?;
        // One augmented certificate carries the chain AND the index.
        client.validate_chain_with_index(
            &block.header,
            "inverted",
            inputs[0].new_digest,
            &certs[0],
        )?;
        sp.record_certs(&certs);
    }
    println!(
        "indexed {} blocks, {} distinct keywords, client height {}",
        MEMOS.len(),
        sp.inverted("inverted").unwrap().keywords(),
        client.height().unwrap(),
    );

    // The query: every transaction mentioning "stock" AND "bank".
    let digest = client.index_digest("inverted").unwrap();
    let (matches, proof) = sp.inverted("inverted").unwrap().query(&["stock", "bank"]);
    verify_keywords(&digest, &["stock", "bank"], &matches, &proof)?;
    println!("\n[stock AND bank] — {} verified matches:", matches.len());
    for id in &matches {
        println!("  {id} : {}", memo_of_tx[id]);
    }
    println!("proof size: {} bytes", proof.size_bytes());

    // Cheating demo: the SP hides one match.
    let mut hidden = matches.clone();
    hidden.pop();
    match verify_keywords(&digest, &["stock", "bank"], &hidden, &proof) {
        Err(e) => println!("\nhidden-match attack detected as expected: {e}"),
        Ok(()) => unreachable!("omission must be caught"),
    }
    Ok(())
}
