//! The full Fig. 2 workflow, live: miner, Certificate Issuer, and
//! superlight client running as concurrent actors over a gossip network.
//!
//! The miner publishes blocks; the CI feeds them into its pipelined
//! certification engine ([`CertPipeline`]) — untrusted preparer workers
//! build proofs in parallel while the simulated SGX enclave signs in
//! chain order — and each certificate is broadcast as soon as it is
//! issued; the superlight client follows the chain purely from the
//! certificate stream, never seeing a block body.
//!
//! Run with: `cargo run --release --example live_network`

use std::sync::Arc;
use std::thread;

use dcert::chain::{FullNode, GenesisBuilder, ProofOfWork};
use dcert::core::{
    expected_measurement, CertJob, CertPipeline, CertificateIssuer, Gossip, NetMessage,
    PipelineConfig, SuperlightClient,
};
use dcert::primitives::hash::Address;
use dcert::sgx::{AttestationService, CostModel};
use dcert::vm::Executor;
use dcert::workloads::{blockbench_registry, Workload, WorkloadGen};

const BLOCKS: u64 = 30;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let executor = Executor::new(Arc::new(blockbench_registry()));
    let engine = Arc::new(ProofOfWork::new(10));
    let (genesis, state) = GenesisBuilder::new().build();

    let mut miner = FullNode::new(
        &genesis,
        state.clone(),
        executor.clone(),
        engine.clone(),
        Address::from_seed(1),
    );
    let mut ias = AttestationService::with_seed([42; 32]);
    let ci = CertificateIssuer::new(
        &genesis,
        state,
        executor,
        engine,
        Vec::new(),
        &mut ias,
        CostModel::calibrated(),
    )?;
    let ias_key = ias.public_key();

    let bus = Arc::new(Gossip::new());
    let ci_rx = bus.join();
    let client_rx = bus.join();

    // Miner: proof-of-work mining loop.
    let miner_bus = bus.clone();
    let miner_thread = thread::spawn(move || {
        let mut gen = WorkloadGen::new(Workload::SmallBank { customers: 64 }, 16, 3);
        for height in 1..=BLOCKS {
            let block = miner.mine(gen.next_block(8), height).expect("mines");
            println!("[miner ] block {height:>3} mined        {}", block.hash());
            miner_bus.publish(NetMessage::Block(block));
        }
        miner_bus.publish(NetMessage::Shutdown);
    });

    // Certificate Issuer: blocks flow into the pipelined engine, whose
    // publisher stage broadcasts each certificate the moment the enclave
    // signs it. `submit` blocks when the queue is full — backpressure,
    // not unbounded buffering, absorbs a fast miner.
    let ci_bus = bus.clone();
    let ci_thread = thread::spawn(move || {
        let pipeline = CertPipeline::spawn(ci, PipelineConfig::default(), ci_bus.clone());
        for msg in ci_rx {
            match msg {
                NetMessage::Block(block) => {
                    let height = block.header.height;
                    pipeline.submit(CertJob::Block(block)).expect("accepts");
                    println!("[  CI  ] block {height:>3} queued");
                }
                NetMessage::Shutdown => break,
                _ => {}
            }
        }
        // Drain every in-flight job before passing the marker on.
        let (_ci, report) = pipeline.shutdown();
        println!(
            "[  CI  ] pipeline drained: {} jobs, {} certificates, {} errors, \
             {:>8.2?} total construction",
            report.jobs,
            report.block_certs + report.index_certs,
            report.errors.len(),
            report.total_construction()
        );
        ci_bus.publish(NetMessage::Shutdown);
    });

    // Superlight client: follows the certificate stream only.
    let client_thread = thread::spawn(move || {
        let mut client = SuperlightClient::new(ias_key, expected_measurement());
        let mut shutdowns = 0;
        for msg in client_rx {
            match msg {
                NetMessage::BlockCert { header, cert } => {
                    client.validate_chain(&header, &cert).expect("valid cert");
                    println!(
                        "[client] chain height {:>3} validated ({} bytes stored)",
                        header.height,
                        client.storage_bytes()
                    );
                }
                NetMessage::Shutdown => {
                    shutdowns += 1;
                    if shutdowns == 2 {
                        break;
                    }
                }
                _ => {}
            }
        }
        client
    });

    miner_thread.join().unwrap();
    ci_thread.join().unwrap();
    let client = client_thread.join().unwrap();
    println!(
        "\nfinal client state: height {} with {} bytes of storage — the whole \
         {BLOCKS}-block chain, validated without downloading a single block.",
        client.height().unwrap(),
        client.storage_bytes()
    );
    Ok(())
}
