//! The full Fig. 2 workflow, live — over a faulty network: miner,
//! Certificate Issuer, and superlight client running as concurrent
//! actors, with every certificate crossing a seeded fault-injection
//! layer ([`SimNet`]) that drops, reorders, and partitions traffic.
//!
//! The miner hands blocks to the CI over a reliable sync channel (block
//! sync has its own retry story); the CI feeds them into its pipelined
//! certification engine ([`CertPipeline`]) whose publisher stage
//! broadcasts each certificate — through a [`CertArchive`], with acked
//! publish + retry — the moment the enclave signs it. The superlight
//! client follows the chain purely from the certificate stream, never
//! seeing a block body; when the network eats a certificate, the client
//! detects the gap and re-requests the missing heights, which the CI
//! answers from its archive.
//!
//! Run with: `cargo run --release --example live_network`
//! Replay a specific fault schedule: `DCERT_CHAOS_SEED=42 cargo run ...`
//! Parallel Merkle construction: `DCERT_MERKLE_THREADS=4 cargo run ...`
//! (byte-identical certificates at every thread count — only wall-clock
//! moves).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Duration;

use dcert::chain::{FullNode, GenesisBuilder, ProofOfWork};
use dcert::core::{
    expected_measurement, CertArchive, CertJob, CertPipeline, CertificateIssuer, FaultConfig,
    NetMessage, ParallelismConfig, Partition, PipelineConfig, PublishPolicy, SimNet,
    SuperlightClient, SyncOutcome, Transport,
};
use dcert::primitives::hash::Address;
use dcert::sgx::{AttestationService, CostModel};
use dcert::vm::Executor;
use dcert::workloads::{blockbench_registry, Workload, WorkloadGen};

const BLOCKS: u64 = 30;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let executor = Executor::new(Arc::new(blockbench_registry()));
    let engine = Arc::new(ProofOfWork::new(10));
    let (genesis, state) = GenesisBuilder::new().build();

    let mut miner = FullNode::new(
        &genesis,
        state.clone(),
        executor.clone(),
        engine.clone(),
        Address::from_seed(1),
    );
    let mut ias = AttestationService::with_seed([42; 32]);
    let ci = CertificateIssuer::new(
        &genesis,
        state,
        executor,
        engine,
        Vec::new(),
        &mut ias,
        CostModel::calibrated(),
    )?;
    let ias_key = ias.public_key();

    // The certificate network: seeded faults (replayable via
    // DCERT_CHAOS_SEED), including a partition that cuts the client off
    // for three broadcasts mid-run.
    let seed = std::env::var("DCERT_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let mut faults = FaultConfig::default_chaos();
    faults.partitions.push(Partition {
        start: 10,
        end: 13,
        endpoints: vec![0], // the client joins first
    });
    let net = Arc::new(SimNet::new(seed, faults));
    let client_rx = net.join();
    let ci_rx = net.join();
    let archive = Arc::new(CertArchive::new(net.clone() as Arc<dyn Transport>));
    println!("[ net  ] chaos seed {seed}: 5% loss, reorder window 4, 3-block partition");

    // Miner → CI: reliable block sync (the fault layer models the
    // certificate broadcast; block download has its own retries).
    let (block_tx, block_rx) = mpsc::sync_channel(4);
    let miner_thread = thread::spawn(move || {
        let mut gen = WorkloadGen::new(Workload::SmallBank { customers: 64 }, 16, 3);
        for height in 1..=BLOCKS {
            let block = miner.mine(gen.next_block(8), height).expect("mines");
            println!("[miner ] block {height:>3} mined        {}", block.hash());
            if block_tx.send(block).is_err() {
                break;
            }
        }
    });

    // Certificate Issuer: blocks flow into the pipelined engine, whose
    // publisher broadcasts through the archive and insists on at least
    // one confirmed delivery (retrying with backoff; a partitioned
    // client shows up as dead letters in the report, recovered below via
    // resync). After the chain is certified, the CI stays around as a
    // resync server answering CertRequest gossip from the archive.
    let done = Arc::new(AtomicBool::new(false));
    let ci_done = done.clone();
    let ci_archive = archive.clone();
    let ci_net = net.clone();
    // DCERT_MERKLE_THREADS > 1 turns on the chunked parallel Merkle
    // builder for block tx-roots; certificates stay byte-identical.
    let merkle_threads = std::env::var("DCERT_MERKLE_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let ci_thread = thread::spawn(move || {
        let config = PipelineConfig {
            publish: PublishPolicy::require_acks(1),
            parallelism: ParallelismConfig { merkle_threads },
            ..PipelineConfig::default()
        };
        let pipeline = CertPipeline::spawn(ci, config, ci_archive.clone() as Arc<dyn Transport>);
        for block in block_rx {
            let height = block.header.height;
            pipeline.submit(CertJob::Block(block)).expect("accepts");
            println!("[  CI  ] block {height:>3} queued");
        }
        let (_ci, report) = pipeline.shutdown();
        println!(
            "[  CI  ] pipeline drained: {} jobs, {} certificates, {} errors, \
             {} dead letters, {:>8.2?} total construction",
            report.jobs,
            report.block_certs + report.index_certs,
            report.errors.len(),
            report.dead_letters.len(),
            report.total_construction()
        );
        // The chain is fully certified; the faults have done their
        // damage. Heal the network and serve resyncs until the client
        // has caught up.
        ci_net.heal();
        while !ci_done.load(Ordering::SeqCst) {
            match ci_rx.recv_timeout(Duration::from_millis(20)) {
                Ok(NetMessage::CertRequest { from, to }) => {
                    let served = ci_archive.republish(from, to);
                    println!("[  CI  ] resync {from}..={to}: republished {served}");
                }
                Ok(_) => {}
                Err(_) => {}
            }
        }
    });

    // Superlight client: follows the certificate stream only, detecting
    // and repairing gaps the faulty network leaves.
    let client_done = done.clone();
    let client_net = net.clone();
    let client_thread = thread::spawn(move || {
        let mut client = SuperlightClient::new(ias_key, expected_measurement());
        while client.height() != Some(BLOCKS) {
            match client_rx.recv_timeout(Duration::from_millis(50)) {
                Ok(msg) => match client.on_message(&msg) {
                    SyncOutcome::Adopted => println!(
                        "[client] chain height {:>3} validated ({} bytes stored)",
                        client.height().unwrap(),
                        client.storage_bytes()
                    ),
                    SyncOutcome::Rejected(e) => println!("[client] rejected a certificate: {e}"),
                    _ => {}
                },
                Err(_) => {
                    // Quiet network but not caught up: ask for everything
                    // missed (`u64::MAX` = "and anything newer" — the CI
                    // serves whatever its archive holds in the range).
                    let from = client.height().unwrap_or(0) + 1;
                    println!("[client] gap detected, requesting {from}..");
                    client_net.publish(NetMessage::CertRequest { from, to: u64::MAX });
                }
            }
        }
        client_done.store(true, Ordering::SeqCst);
        client
    });

    miner_thread.join().unwrap();
    let client = client_thread.join().unwrap();
    ci_thread.join().unwrap();
    let stats = net.stats();
    println!(
        "\nnetwork: {} published, {} delivered, {} dropped, {} delayed, {} partitioned",
        stats.published, stats.delivered, stats.dropped, stats.delayed, stats.partitioned
    );
    println!(
        "final client state: height {} with {} bytes of storage — the whole \
         {BLOCKS}-block chain, validated without downloading a single block.",
        client.height().unwrap(),
        client.storage_bytes()
    );
    Ok(())
}
