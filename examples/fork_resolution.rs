//! Fork resolution with certified branches.
//!
//! Two miners race and produce competing branches; two Certificate Issuers
//! certify both. The example shows how (a) a fork-aware header store picks
//! the longest branch, and (b) a superlight client enforces the
//! chain-selection rule of Algorithm 3 — it follows height, never rolls
//! back, and rejects stale certified blocks.
//!
//! Run with: `cargo run --example fork_resolution`

use std::sync::Arc;

use dcert::chain::{ChainStore, FullNode, GenesisBuilder, ProofOfWork};
use dcert::core::{expected_measurement, CertificateIssuer, SuperlightClient};
use dcert::primitives::hash::Address;
use dcert::sgx::{AttestationService, CostModel};
use dcert::vm::Executor;
use dcert::workloads::{blockbench_registry, Workload, WorkloadGen};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let executor = Executor::new(Arc::new(blockbench_registry()));
    let engine = Arc::new(ProofOfWork::new(8));
    let (genesis, state) = GenesisBuilder::new().build();
    let mut ias = AttestationService::with_seed([42; 32]);

    // Two rival miners, each with their own CI, from the same genesis.
    let mut make_side =
        |seed: u64| -> Result<(FullNode, CertificateIssuer), Box<dyn std::error::Error>> {
            let miner = FullNode::new(
                &genesis,
                state.clone(),
                executor.clone(),
                engine.clone(),
                Address::from_seed(seed),
            );
            let ci = CertificateIssuer::new(
                &genesis,
                state.clone(),
                executor.clone(),
                engine.clone(),
                Vec::new(),
                &mut ias,
                CostModel::zero(),
            )?;
            Ok((miner, ci))
        };
    let (mut miner_a, mut ci_a) = make_side(0xA)?;
    let (mut miner_b, mut ci_b) = make_side(0xB)?;

    let mut gen_a = WorkloadGen::new(Workload::KvStore { keyspace: 16 }, 4, 1);
    let mut gen_b = WorkloadGen::new(Workload::KvStore { keyspace: 16 }, 4, 2);

    // Branch A mines 2 blocks; branch B mines 3.
    let mut store = ChainStore::new(genesis.header.clone())?;
    let mut certified_a = Vec::new();
    for h in 1..=2u64 {
        let block = miner_a.mine(gen_a.next_block(2), h)?;
        let (cert, _) = ci_a.certify_block(&block)?;
        store.insert(block.header.clone())?;
        certified_a.push((block, cert));
    }
    let mut certified_b = Vec::new();
    for h in 1..=3u64 {
        let block = miner_b.mine(gen_b.next_block(2), h)?;
        let (cert, _) = ci_b.certify_block(&block)?;
        store.insert(block.header.clone())?;
        certified_b.push((block, cert));
    }

    println!("fork-aware store view:");
    println!("  branch A tip height 2: {}", certified_a[1].0.hash());
    println!("  branch B tip height 3: {}", certified_b[2].0.hash());
    println!(
        "  canonical tip:         {} (height {})",
        store.best_hash(),
        store.best_header().height
    );
    assert_eq!(store.best_hash(), certified_b[2].0.hash());

    // The superlight client first hears about branch A...
    let mut client = SuperlightClient::new(ias.public_key(), expected_measurement());
    let (a2, ca2) = &certified_a[1];
    client.validate_chain(&a2.header, ca2)?;
    println!(
        "\nclient adopted branch A at height {}",
        client.height().unwrap()
    );

    // ...then branch B's longer tip arrives: adopted.
    let (b3, cb3) = &certified_b[2];
    client.validate_chain(&b3.header, cb3)?;
    println!(
        "client switched to branch B at height {}",
        client.height().unwrap()
    );

    // A replay of branch A's certified tip is refused (chain selection).
    match client.validate_chain(&a2.header, ca2) {
        Err(e) => println!("stale branch A replay refused: {e}"),
        Ok(()) => unreachable!("chain selection must refuse rollbacks"),
    }
    Ok(())
}
