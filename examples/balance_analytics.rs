//! Verifiable balance analytics with O(log n) aggregation proofs.
//!
//! An analyst asks an untrusted query provider for statistics over an
//! account's balance history — count, sum, mean, min, max across a block
//! window. With DCert's aggregate index (an annotation-carrying Merkle
//! B-tree certified by the enclave), the answer verifies against the
//! certified index digest with a proof that does **not** grow with the
//! window: the provider cannot inflate a single satoshi.
//!
//! Run with: `cargo run --release --example balance_analytics`

use std::sync::Arc;

use dcert::chain::{FullNode, GenesisBuilder, ProofOfWork, Transaction};
use dcert::core::{expected_measurement, CertificateIssuer, SuperlightClient};
use dcert::primitives::codec::Encode;
use dcert::primitives::hash::Address;
use dcert::primitives::keys::Keypair;
use dcert::query::aggregate::verify_aggregate;
use dcert::query::sp::IndexKind;
use dcert::query::ServiceProvider;
use dcert::sgx::{AttestationService, CostModel};
use dcert::vm::{Executor, StateKey};
use dcert::workloads::blockbench_registry;
use dcert::workloads::smallbank::BankCall;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let executor = Executor::new(Arc::new(blockbench_registry()));
    let engine = Arc::new(ProofOfWork::new(6));
    let (genesis, state) = GenesisBuilder::new().build();

    let mut miner = FullNode::new(
        &genesis,
        state.clone(),
        executor.clone(),
        engine.clone(),
        Address::from_seed(1),
    );
    let mut sp = ServiceProvider::new(&genesis, state.clone(), executor.clone(), engine.clone());
    sp.add_index(IndexKind::Aggregate, "balances");

    let mut ias = AttestationService::with_seed([42; 32]);
    let mut ci = CertificateIssuer::new(
        &genesis,
        state,
        executor,
        engine,
        sp.verifiers(),
        &mut ias,
        CostModel::calibrated(),
    )?;
    let mut client = SuperlightClient::new(ias.public_key(), expected_measurement());

    // 60 blocks of banking activity on customer 7's checking account.
    println!("certifying 60 blocks of SmallBank activity...");
    let sender = Keypair::from_seed([9; 32]);
    for height in 1..=60u64 {
        let call = if height % 4 == 0 {
            BankCall::WriteCheck {
                customer: 7,
                amount: height,
            }
        } else {
            BankCall::DepositChecking {
                customer: 7,
                amount: height * 2,
            }
        };
        let tx = Transaction::sign(&sender, height, "smallbank", call.to_encoded_bytes());
        let block = miner.mine(vec![tx], height)?;
        let inputs = sp.stage_block(&block)?;
        let (block_cert, idx_certs, _) = ci.certify_hierarchical(&block, &inputs)?;
        sp.record_certs(&idx_certs);
        client.validate_chain(&block.header, &block_cert)?;
        client.validate_index("balances", inputs[0].new_digest, &idx_certs[0])?;
    }

    // The analytics query: balance statistics over blocks [20, 50].
    let mut field = b"chk-".to_vec();
    field.extend_from_slice(&7u64.to_be_bytes());
    let account = StateKey::new("smallbank", &field);
    let (t1, t2) = (20u64, 50u64);

    let started = std::time::Instant::now();
    let (agg, proof) = sp.aggregate("balances").unwrap().query(&account, t1, t2);
    let query_time = started.elapsed();

    let digest = client.index_digest("balances").unwrap();
    let started = std::time::Instant::now();
    verify_aggregate(&digest, &account, t1, t2, &agg, &proof)?;
    let verify_time = started.elapsed();

    println!("\nbalance statistics of customer 7 over blocks [{t1}, {t2}]:");
    println!("  versions   {}", agg.count);
    println!("  sum        {}", agg.sum);
    println!("  mean       {:.2}", agg.mean().unwrap());
    println!("  min / max  {} / {}", agg.min, agg.max);
    println!("\nquery   {query_time:?}");
    println!("verify  {verify_time:?}  (against the enclave-certified digest)");
    println!(
        "proof   {} bytes — independent of the window size",
        proof.size_bytes()
    );

    // Fraud demo: the provider understates the minimum balance.
    let mut doctored = agg;
    doctored.min = 1;
    match verify_aggregate(&digest, &account, t1, t2, &doctored, &proof) {
        Err(e) => println!("\nunderstated-minimum attack detected as expected: {e}"),
        Ok(()) => unreachable!("tampering must be caught"),
    }
    Ok(())
}
